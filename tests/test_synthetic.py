"""Tests for the million-user synthetic population and streaming loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from repro.datasets.synthetic import (
    StreamingLoader,
    SyntheticSpec,
    generate_synthetic,
    zipf_cdf,
)

SMALL = SyntheticSpec(
    num_users=400, catalog=150, total_writes=4000, seed=11
)


def _concat_stream(spec: SyntheticSpec, chunk_size: int):
    chunks = list(StreamingLoader(spec, chunk_size).chunks())
    return [
        np.concatenate([chunk[i] for chunk in chunks]) for i in range(4)
    ]


class TestZipfCdf:
    def test_shape_and_normalization(self):
        cdf = zipf_cdf(100, 1.1)
        assert cdf.size == 100
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) > 0)

    def test_uniform_at_zero_exponent(self):
        cdf = zipf_cdf(4, 0.0)
        assert np.allclose(cdf, [0.25, 0.5, 0.75, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_cdf(10, -0.1)


class TestSyntheticSpec:
    def test_validation(self):
        for bad in (
            dict(num_users=0),
            dict(catalog=0),
            dict(total_writes=0),
            dict(user_exponent=-1.0),
            dict(like_rate=1.5),
        ):
            with pytest.raises(ValueError):
                SyntheticSpec(**bad)

    def test_scaled(self):
        spec = SyntheticSpec(
            num_users=1000, catalog=500, total_writes=10_000
        ).scaled(0.1)
        assert (spec.num_users, spec.catalog, spec.total_writes) == (
            100,
            50,
            1000,
        )
        with pytest.raises(ValueError):
            SMALL.scaled(0.0)


class TestStream:
    def test_deterministic_across_loaders(self):
        first = _concat_stream(SMALL, 512)
        second = _concat_stream(SMALL, 512)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_chunk_size_never_changes_the_stream(self):
        reference = _concat_stream(SMALL, 4096)
        for chunk_size in (1, 7, 333, 5000):
            got = _concat_stream(SMALL, chunk_size)
            assert all(
                np.array_equal(a, b) for a, b in zip(reference, got)
            ), f"chunk_size={chunk_size} altered the stream"

    def test_different_seeds_differ(self):
        a = _concat_stream(SMALL, 1024)
        b = _concat_stream(
            SyntheticSpec(
                num_users=400, catalog=150, total_writes=4000, seed=12
            ),
            1024,
        )
        assert not np.array_equal(a[0], b[0])

    def test_ids_in_range_and_timestamps_sequential(self):
        users, items, values, timestamps = _concat_stream(SMALL, 600)
        assert users.min() >= 0 and users.max() < SMALL.num_users
        assert items.min() >= 0 and items.max() < SMALL.catalog
        assert set(np.unique(values)) <= {0.0, 1.0}
        assert np.array_equal(
            timestamps, np.arange(SMALL.total_writes, dtype=np.float64)
        )

    def test_zipf_skew_concentrates_activity(self):
        skewed = SyntheticSpec(
            num_users=2000, catalog=100, total_writes=20_000,
            user_exponent=1.1, seed=5,
        )
        flat = SyntheticSpec(
            num_users=2000, catalog=100, total_writes=20_000,
            user_exponent=0.0, seed=5,
        )

        def top_share(spec):
            users = _concat_stream(spec, 8192)[0]
            counts = np.sort(np.bincount(users, minlength=spec.num_users))
            return counts[-20:].sum() / spec.total_writes

        assert top_share(skewed) > 5 * top_share(flat)

    def test_like_rate_respected(self):
        values = _concat_stream(SMALL, 2048)[2]
        assert abs(values.mean() - SMALL.like_rate) < 0.05

    def test_activity_decorrelated_from_id_order(self):
        # The rank->id permutation: the most active users must not
        # simply be the lowest ids.
        users = _concat_stream(SMALL, 2048)[0]
        counts = np.bincount(users, minlength=SMALL.num_users)
        low_half = counts[: SMALL.num_users // 2].sum()
        assert 0.25 < low_half / SMALL.total_writes < 0.75


class TestLoading:
    def test_generate_matches_stream(self):
        users, items, values, timestamps = _concat_stream(SMALL, 1024)
        trace = generate_synthetic(SMALL)
        assert len(trace) == SMALL.total_writes
        got = np.array([[r.timestamp, r.user, r.item, r.value] for r in trace])
        assert np.array_equal(got[:, 0], timestamps)
        assert np.array_equal(got[:, 1], users)
        assert np.array_equal(got[:, 2], items)
        assert np.array_equal(got[:, 3], values)

    def test_materialize_ceiling(self):
        huge = SyntheticSpec(
            num_users=10, catalog=10, total_writes=3_000_000
        )
        with pytest.raises(ValueError, match="StreamingLoader"):
            generate_synthetic(huge)

    def test_load_into_profile_table(self):
        table = ProfileTable()
        written = StreamingLoader(SMALL, chunk_size=700).load_into(table)
        assert written == SMALL.total_writes
        users, _, values, _ = _concat_stream(SMALL, 700)
        liked = table.liked_sets()
        assert set(liked) == set(np.unique(users).tolist())
        # Spot-check one user's final liked set against the stream.
        uid = int(users[0])
        mask = users == uid
        items = _concat_stream(SMALL, 700)[1]
        expected = set()
        for item, value in zip(items[mask].tolist(), values[mask].tolist()):
            (expected.add if value == 1.0 else expected.discard)(item)
        assert set(liked[uid]) == expected

    def test_server_sink_agrees_with_table_sink(self):
        table = ProfileTable()
        StreamingLoader(SMALL, chunk_size=512).load_into(table)
        system = HyRecSystem(HyRecConfig(engine="vectorized"), seed=1)
        StreamingLoader(SMALL, chunk_size=2048).load_into(system)
        assert system.server.profiles.liked_sets() == table.liked_sets()
        system.close()

    def test_rejects_sink_without_record_surface(self):
        with pytest.raises(TypeError, match="record"):
            StreamingLoader(SMALL).load_into(object())
