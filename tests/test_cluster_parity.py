"""Sharded-engine parity: bit-for-bit equal to python and vectorized.

The contract of ``HyRecConfig(engine="sharded")`` extends the PR-1
engine contract: for *any* shard count and *any* executor -- serial,
thread pool, or worker processes fed by the serialized shard protocol
-- the sharded engine must produce the same neighbors (same order,
same tie-breaks), bitwise-identical float64 scores, the same
recommendations, and byte-identical wire metering as both the
``"python"`` and ``"vectorized"`` engines.  Checked here at the widget
level (randomized engine jobs against a shared profile table) and at
the replay level (full systems on a random trace).
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ProcessExecutor,
    ThreadPoolExecutor,
)
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from repro.datasets.schema import Rating, Trace
from repro.engine import LikedMatrix, VectorizedWidget
from parity import (
    assert_scores_bitwise,
    random_job as _random_job,
    random_table as _random_table,
    random_trace,
    replay_digest,
)

SHARD_COUNTS = (1, 2, 4, 8)


class TestWidgetLevelParity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("metric", ["cosine", "jaccard", "overlap"])
    def test_randomized_jobs_match_single_matrix(self, metric, num_shards):
        rng = random.Random((hash(metric) & 0xFFFF) + num_shards)
        users = 40
        table = _random_table(rng, users=users, items=150)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(table, num_shards)
        for trial in range(40):
            job = _random_job(rng, users, metric)
            expected = widget.process_engine_job(job, matrix)
            got = coordinator.process_engine_job(job)
            assert got == expected, f"trial {trial} diverged"
            # Scores are not approximately equal -- they are the same
            # float64 bit patterns.
            assert_scores_bitwise(expected.neighbor_scores, got.neighbor_scores)

    def test_batched_jobs_match_single_matrix(self):
        rng = random.Random(91)
        users = 30
        table = _random_table(rng, users=users, items=100)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(table, num_shards=4)
        jobs = [_random_job(rng, users, "cosine") for _ in range(25)]
        expected = [widget.process_engine_job(job, matrix) for job in jobs]
        assert coordinator.process_batch(jobs) == expected

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_process_executor_jobs_match_single_matrix(self, num_shards):
        # Same contract as above, with the shards living in worker
        # processes behind the serialized transport: scores must still
        # be the same float64 bit patterns.
        rng = random.Random(1000 + num_shards)
        users = 35
        table = _random_table(rng, users=users, items=120)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(
            table, num_shards, executor=ProcessExecutor()
        )
        try:
            for trial in range(15):
                job = _random_job(
                    rng, users, rng.choice(["cosine", "jaccard", "overlap"])
                )
                expected = widget.process_engine_job(job, matrix)
                got = coordinator.process_engine_job(job)
                assert got == expected, f"trial {trial} diverged"
                assert_scores_bitwise(
                    expected.neighbor_scores, got.neighbor_scores
                )
        finally:
            coordinator.close()

    def test_interleaved_writes_stay_in_sync(self):
        # Incremental writes route through the placement map; results
        # must track the table exactly, like the single matrix does.
        rng = random.Random(17)
        users = 25
        table = _random_table(rng, users=users, items=80)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(table, num_shards=4)
        for _ in range(60):
            uid = rng.randrange(users)
            table.record(uid, rng.randrange(80), float(rng.random() < 0.6))
            job = _random_job(rng, users, "cosine")
            assert coordinator.process_engine_job(job) == widget.process_engine_job(
                job, matrix
            )


class TestReplayLevelParity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_replay_identical_across_engines(self, num_shards):
        trace = random_trace(random.Random(29), users=30, items=90, n=350, name="cluster-parity")
        reference: dict | None = None
        for engine in ("python", "vectorized", "sharded"):
            system = HyRecSystem(
                HyRecConfig(
                    k=5, r=6, engine=engine, num_shards=num_shards
                ),
                seed=23,
            )
            digest = replay_digest(system, trace)
            if reference is None:
                reference = digest
            else:
                assert digest == reference, f"{engine} @ {num_shards} diverged"

    def test_thread_executor_replay_matches_serial(self):
        trace = random_trace(random.Random(31), users=25, items=70, n=250, name="cluster-parity")
        digests = []
        for executor in ("serial", "thread"):
            system = HyRecSystem(
                HyRecConfig(
                    k=4, r=5, engine="sharded", num_shards=8, executor=executor
                ),
                seed=5,
            )
            outcomes: list = []
            system.replay(trace, on_request=outcomes.append)
            digests.append(
                (
                    [(o.result, tuple(o.recommendations)) for o in outcomes],
                    system.server.knn_table.as_dict(),
                )
            )
            system.close()
        assert digests[0] == digests[1]

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_process_executor_replay_matches_serial(self, num_shards):
        # The acceptance bar for the cross-process transport: full
        # replays (results, KNN table, *and* wire metering) identical
        # to the serial executor at every shard count.
        trace = random_trace(random.Random(37), users=25, items=70, n=250, name="cluster-parity")
        digests = []
        for executor in ("serial", "process"):
            system = HyRecSystem(
                HyRecConfig(
                    k=4,
                    r=5,
                    engine="sharded",
                    num_shards=num_shards,
                    executor=executor,
                ),
                seed=5,
            )
            outcomes: list = []
            system.replay(trace, on_request=outcomes.append)
            digests.append(
                (
                    [(o.result, tuple(o.recommendations)) for o in outcomes],
                    system.server.knn_table.as_dict(),
                    {
                        channel: system.server.meter.reading(channel)
                        for channel in ("server->client", "client->server")
                    },
                )
            )
            system.close()
        assert digests[0] == digests[1], f"process @ {num_shards} diverged"

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_request_batch_identical_across_engines(self, num_shards, toy_trace):
        reference = None
        for engine, executor in (
            ("python", "serial"),
            ("vectorized", "serial"),
            ("sharded", "serial"),
            # Multi-job windows over the wire: whole batches travel as
            # one JobSlices frame per shard under the process executor.
            ("sharded", "process"),
        ):
            system = HyRecSystem(
                HyRecConfig(
                    k=2,
                    r=3,
                    engine=engine,
                    num_shards=num_shards,
                    executor=executor,
                    batch_window=3,
                ),
                seed=11,
            )
            for rating in toy_trace:
                system.record_rating(
                    rating.user, rating.item, rating.value, rating.timestamp
                )
            waves = [
                system.request_batch([0, 1, 2, 3], now=float(wave))
                for wave in range(3)
            ]
            digest = [
                (o.result, tuple(o.recommendations))
                for wave in waves
                for o in wave
            ]
            system.close()
            if reference is None:
                reference = digest
            else:
                assert digest == reference, f"{engine}/{executor} diverged"

    def test_sharded_replay_reports_shard_stats(self, toy_trace):
        system = HyRecSystem(
            HyRecConfig(k=2, engine="sharded", num_shards=4), seed=1
        )
        system.replay(toy_trace)
        stats = system.server.stats
        assert len(stats.shards) == 4
        assert sum(stat.writes for stat in stats.shards) == len(toy_trace)
        assert sum(stat.users for stat in stats.shards) > 0

    def test_item_anonymization_falls_back_to_wire_path(self, toy_trace):
        from repro.core.jobs import PersonalizationJob

        system = HyRecSystem(
            HyRecConfig(
                k=2, r=3, anonymize_items=True, engine="sharded", num_shards=2
            ),
            seed=1,
        )
        outcomes: list = []
        system.replay(toy_trace, on_request=outcomes.append)
        assert outcomes
        assert all(isinstance(o.job, PersonalizationJob) for o in outcomes)


class TestShardedConfig:
    def test_sharded_engine_builds_cluster(self):
        system = HyRecSystem(
            HyRecConfig(engine="sharded", num_shards=3), seed=0
        )
        assert system.server.cluster is not None
        assert system.server.cluster.num_shards == 3
        assert system.scheduler is not None
        assert system.server.liked_matrix is None

    def test_other_engines_have_no_cluster(self):
        for engine in ("python", "vectorized"):
            system = HyRecSystem(HyRecConfig(engine=engine), seed=0)
            assert system.server.cluster is None
            assert system.scheduler is None

    def test_thread_executor_is_wired(self):
        system = HyRecSystem(
            HyRecConfig(engine="sharded", executor="thread"), seed=0
        )
        assert system.server.cluster is not None
        assert isinstance(system.server.cluster.executor, ThreadPoolExecutor)
        system.close()

    def test_process_executor_is_wired(self):
        system = HyRecSystem(
            HyRecConfig(
                engine="sharded",
                num_shards=2,
                executor="process",
                truncate_partials=False,
                ipc_write_batch=64,
            ),
            seed=0,
        )
        cluster = system.server.cluster
        assert cluster is not None
        assert isinstance(cluster.executor, ProcessExecutor)
        assert cluster.matrix is None  # shard state lives in the workers
        assert cluster.executor.truncate_partials is False
        assert cluster.executor.ipc_write_batch == 64
        system.close()

    def test_process_shard_stats_report_worker_pids(self, toy_trace):
        import os

        system = HyRecSystem(
            HyRecConfig(
                k=2, engine="sharded", num_shards=4, executor="process"
            ),
            seed=1,
        )
        system.replay(toy_trace)
        stats = system.server.stats
        assert len(stats.shards) == 4
        assert sum(stat.writes for stat in stats.shards) == len(toy_trace)
        pids = {stat.pid for stat in stats.shards}
        assert len(pids) == 4 and os.getpid() not in pids
        system.close()
