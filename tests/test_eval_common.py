"""Tests for the eval harness utilities and the CLI runner."""

from __future__ import annotations

import pytest

from repro.datasets.schema import Rating, Trace
from repro.eval.common import format_rows, liked_sets_of_trace, series_to_rows
from repro.eval.runner import EXPERIMENTS, main


class TestLikedSets:
    def test_collects_final_liked_state(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=10, value=1.0),
                Rating(timestamp=1.0, user=1, item=11, value=0.0),
                Rating(timestamp=2.0, user=2, item=10, value=1.0),
            ],
        )
        assert liked_sets_of_trace(trace) == {
            1: frozenset({10}),
            2: frozenset({10}),
        }

    def test_last_write_wins(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=10, value=1.0),
                Rating(timestamp=5.0, user=1, item=10, value=0.0),
            ],
        )
        assert liked_sets_of_trace(trace) == {1: frozenset()}


class TestFormatting:
    def test_format_rows_aligns_columns(self):
        table = format_rows(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        # Separator matches the widest cell of each column.
        assert lines[2].startswith("---")

    def test_series_to_rows_aligns_on_union(self):
        series = {
            "x": [(1.0, 0.5), (2.0, 0.6)],
            "y": [(2.0, 0.7)],
        }
        headers, rows = series_to_rows(series, "t")
        assert headers == ["t", "x", "y"]
        assert rows[0][2] == "-"  # y missing at t=1
        assert rows[1][1] == "0.6000"


class TestRunnerCli:
    def test_all_experiments_registered(self):
        expected = {
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "p2p",
            "ablation-sampler",
            "ablation-similarity",
            "ablation-churn",
            "tivo",
            "privacy",
        }
        assert expected == set(EXPERIMENTS)

    def test_run_cheap_experiment(self, capsys):
        exit_code = main(["fig12"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 12" in captured.out
        assert "completed in" in captured.out

    def test_scale_forwarded(self, capsys):
        exit_code = main(["table2", "--scale", "0.02", "--seed", "3"])
        assert exit_code == 0
        assert "scale=0.02" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
