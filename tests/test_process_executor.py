"""Process-executor unit tests: lifecycle, protocol state, truncation.

Cross-executor *parity* lives in ``tests/test_cluster_parity.py``
(the process executor is one more axis there); this file covers what
is specific to the out-of-process deployment: worker spawn/handshake/
shutdown, warm-start replay of pre-populated tables, the vocabulary
replication discipline, per-worker stats over the wire, and the
exactness proof obligations of shard-local top-K truncation.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    ProcessExecutor,
    make_executor,
    merge_topk,
)
from repro.cluster.scoring import (
    ShardSlice,
    merge_popularity_sparse,
    to_wire_partial,
    truncate_topk,
    ShardPartial,
)
from repro.cluster.transport import (
    HandoffData,
    HandoffRequest,
    Hello,
    JobSlices,
    MapUpdate,
    Ready,
    Shutdown,
    StatsRequest,
    TransportError,
    VocabDelta,
    WriteBatch,
)
from repro.cluster.worker import ShardHost
from repro.core.tables import ProfileTable
from repro.engine import LikedMatrix, VectorizedWidget
from repro.engine.jobs import EngineJob


def _populate(rng: random.Random, table: ProfileTable, users: int, items: int):
    for uid in range(users):
        table.get_or_create(uid)
        for item in rng.sample(range(items), rng.randrange(0, 20)):
            table.record(uid, item, 1.0 if rng.random() < 0.7 else 0.0)


def _job(rng: random.Random, users: int, metric: str = "cosine") -> EngineJob:
    user_id = rng.randrange(users)
    population = [uid for uid in range(users) if uid != user_id]
    candidates = rng.sample(population, rng.randrange(0, len(population)))
    pairs = sorted((f"u0_{uid:04x}", uid) for uid in candidates)
    return EngineJob(
        user_id=user_id,
        user_token=f"u0_{user_id:04x}",
        candidate_ids=tuple(uid for _, uid in pairs),
        candidate_tokens=tuple(token for token, _ in pairs),
        k=rng.choice([1, 3, 10]),
        r=rng.choice([1, 5]),
        metric=metric,
    )


class TestLifecycle:
    def test_make_executor_builds_process_executor(self):
        executor = make_executor("process")
        assert isinstance(executor, ProcessExecutor)
        executor.close()  # close before attach is a safe no-op

    def test_workers_spawn_reply_and_shut_down(self):
        table = ProfileTable()
        executor = ProcessExecutor()
        executor.attach(table, num_shards=3)
        stats = executor.stats()
        pids = {stat.pid for stat in stats}
        assert len(pids) == 3  # one live process per shard
        assert os.getpid() not in pids  # and none of them is us
        procs = list(executor._procs)
        assert all(proc.is_alive() for proc in procs)
        executor.close()
        assert all(not proc.is_alive() for proc in procs)
        executor.close()  # idempotent

    def test_mismatched_placement_leaves_executor_attachable(self):
        from repro.cluster import ShardPlacement

        executor = ProcessExecutor()
        with pytest.raises(ValueError, match="disagree"):
            executor.attach(
                ProfileTable(), num_shards=4, placement=ShardPlacement(2)
            )
        # The failed attach mutated nothing: a corrected one succeeds.
        executor.attach(ProfileTable(), num_shards=2)
        try:
            assert executor.num_shards == 2
        finally:
            executor.close()

    def test_double_attach_rejected(self):
        executor = ProcessExecutor()
        executor.attach(ProfileTable(), num_shards=2)
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                executor.attach(ProfileTable(), num_shards=2)
        finally:
            executor.close()

    def test_closed_executor_rejects_work(self):
        executor = ProcessExecutor()
        executor.attach(ProfileTable(), num_shards=2)
        executor.close()
        with pytest.raises(RuntimeError, match="not running"):
            executor.run_slices([[], []])
        with pytest.raises(RuntimeError, match="not running"):
            executor.stats()

    def test_run_closures_unsupported(self):
        executor = ProcessExecutor()
        with pytest.raises(TypeError, match="serialized job slices"):
            executor.run([lambda: 1])
        executor.close()

    def test_invalid_write_batch_knob(self):
        with pytest.raises(ValueError, match="ipc_write_batch"):
            ProcessExecutor(ipc_write_batch=0)

    def test_writes_after_close_are_ignored(self):
        # close() must detach the write router: a rating recorded
        # afterwards (sweeps reuse tables) cannot buffer into -- or
        # index -- the torn-down channels.
        table = ProfileTable()
        executor = ProcessExecutor(ipc_write_batch=1)  # flush every write
        ClusterCoordinator(table, num_shards=2, executor=executor)
        table.record(1, 10, 1.0)
        executor.close()
        for uid in range(5):
            table.record(uid, uid, 1.0)  # must not raise
        assert all(not users for users, _, _ in executor._write_buffers)

    def test_workers_exit_on_parent_eof(self):
        # An abandoned parent (no Shutdown frame, sockets just die)
        # must still release the workers: they may not inherit their
        # own parent-side socket ends across the fork.
        executor = ProcessExecutor()
        executor.attach(ProfileTable(), num_shards=3)
        procs = list(executor._procs)
        for channel in executor._channels:
            channel.close()
        for proc in procs:
            proc.join(timeout=5)
        assert all(not proc.is_alive() for proc in procs)
        executor._channels = []  # already dead; skip Shutdown frames
        executor.close()


class TestWarmStartAndWrites:
    def test_prepopulated_table_replays_to_workers(self):
        rng = random.Random(3)
        table = ProfileTable()
        _populate(rng, table, users=30, items=100)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(
            table, num_shards=4, executor=ProcessExecutor()
        )
        try:
            for _ in range(15):
                job = _job(rng, 30)
                assert coordinator.process_engine_job(
                    job
                ) == widget.process_engine_job(job, matrix)
        finally:
            coordinator.close()

    def test_writes_flush_before_stats(self):
        # Stats must never lag the table: buffered writes flush first.
        table = ProfileTable()
        executor = ProcessExecutor(ipc_write_batch=10_000)  # never auto-flush
        coordinator = ClusterCoordinator(table, num_shards=2, executor=executor)
        try:
            for uid in range(20):
                table.record(uid, uid % 7, 1.0)
            stats = coordinator.shard_stats()
            assert sum(stat.writes for stat in stats) == 20
            # Rows materialize lazily on first read, exactly like the
            # in-process shards: scoring a job makes them visible.
            coordinator.process_engine_job(_job(random.Random(0), 20))
            assert sum(stat.users for stat in coordinator.shard_stats()) > 0
        finally:
            coordinator.close()

    def test_unrated_users_are_legal_candidates(self):
        # Registered-but-silent profiles exist only in the parent
        # table; workers must treat them as empty rows.
        table = ProfileTable()
        for uid in range(8):
            table.get_or_create(uid)
        table.record(0, 1, 1.0)
        coordinator = ClusterCoordinator(
            table, num_shards=4, executor=ProcessExecutor()
        )
        try:
            job = _job(random.Random(1), 8)
            reference = VectorizedWidget().process_engine_job(
                job, LikedMatrix(table)
            )
            assert coordinator.process_engine_job(job) == reference
        finally:
            coordinator.close()


class TestShardHostProtocol:
    """Frame-level state discipline, without spawning processes."""

    def test_handshake_pins_the_shard(self):
        host = ShardHost(2)
        reply = host.handle(Hello(shard=2, num_shards=4))
        assert isinstance(reply, Ready) and reply.shard == 2
        with pytest.raises(TransportError, match="reached shard"):
            host.handle(Hello(shard=0, num_shards=4))

    def test_duplicate_hello_cannot_reset_the_epoch(self):
        # Routing state advances only through validated frames: a
        # replayed Hello would silently regress the epoch MapUpdate
        # guards with a loud error.
        host = ShardHost(1)
        host.handle(Hello(shard=1, num_shards=2, num_buckets=8, map_version=0))
        host.handle(MapUpdate(version=4))
        with pytest.raises(TransportError, match="duplicate hello"):
            host.handle(
                Hello(shard=1, num_shards=2, num_buckets=8, map_version=0)
            )
        assert host.map_version == 4

    def test_vocab_deltas_must_be_contiguous(self):
        host = ShardHost(0)
        host.handle(VocabDelta(base=0, items=np.asarray([5, 9], dtype=np.int64)))
        assert len(host.vocab) == 2
        with pytest.raises(TransportError, match="vocab delta base"):
            host.handle(
                VocabDelta(base=5, items=np.asarray([7], dtype=np.int64))
            )

    def test_duplicate_vocab_item_rejected(self):
        host = ShardHost(0)
        host.handle(VocabDelta(base=0, items=np.asarray([5], dtype=np.int64)))
        with pytest.raises(TransportError, match="already interned"):
            host.handle(
                VocabDelta(base=1, items=np.asarray([5], dtype=np.int64))
            )

    def test_write_replay_reconstructs_unlikes(self):
        host = ShardHost(0)
        host.handle(VocabDelta(base=0, items=np.asarray([3, 4], dtype=np.int64)))
        host.handle(
            WriteBatch(
                user_ids=np.asarray([1, 1, 1], dtype=np.int64),
                items=np.asarray([3, 4, 3], dtype=np.int64),
                values=np.asarray([1.0, 1.0, 0.0], dtype=np.float64),
            )
        )
        # Item 3 was liked then un-liked; only item 4's column remains.
        assert host.matrix.liked_row(1).tolist() == [1]
        stats = host.handle(StatsRequest())
        assert stats.writes == 3

    def test_unexpected_frame_rejected(self):
        host = ShardHost(0)
        with pytest.raises(TransportError, match="unexpected frame"):
            host.handle(Ready(shard=0, pid=1))

    def test_shutdown_has_no_reply(self):
        assert ShardHost(0).handle(Shutdown()) is None


class TestHandoffFaultInjection:
    """Epoch discipline and handoff state transitions, frame by frame."""

    def _host(self, shard: int = 0, num_buckets: int = 8) -> ShardHost:
        host = ShardHost(shard)
        host.handle(
            Hello(
                shard=shard, num_shards=2, num_buckets=num_buckets,
                map_version=0,
            )
        )
        return host

    def _bucket_user(self, host: ShardHost, bucket: int) -> int:
        from repro.cluster.placement import bucket_of_id

        return next(
            uid
            for uid in range(10_000)
            if bucket_of_id(uid, host.num_buckets) == bucket
        )

    def test_stale_job_version_rejected(self):
        host = self._host()
        host.handle(MapUpdate(version=3))
        stale = JobSlices(batch_id=0, truncate=True, slices=(), map_version=2)
        with pytest.raises(TransportError, match="stale map version"):
            host.handle(stale)
        # The current epoch's frames still flow: the host is left in a
        # consistent, routable state.
        reply = host.handle(
            JobSlices(batch_id=1, truncate=True, slices=(), map_version=3)
        )
        assert reply.batch_id == 1

    def test_map_update_regression_rejected(self):
        host = self._host()
        host.handle(MapUpdate(version=5))
        host.handle(MapUpdate(version=5))  # idempotent re-broadcast is fine
        with pytest.raises(TransportError, match="regresses"):
            host.handle(MapUpdate(version=4))
        assert host.map_version == 5

    def test_handoff_must_advance_epoch_by_one(self):
        host = self._host()
        with pytest.raises(TransportError, match="advance"):
            host.handle(HandoffRequest(bucket=1, version=3))  # skipped epochs
        with pytest.raises(TransportError, match="advance"):
            host.handle(HandoffRequest(bucket=1, version=0))  # replayed epoch
        assert host.map_version == 0  # rejected handoffs change nothing
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(TransportError, match="advance"):
            host.handle(
                HandoffData(
                    bucket=1,
                    version=2,
                    user_ids=empty,
                    items=empty,
                    values=empty.astype(np.float64),
                )
            )

    def test_handoff_before_handshake_rejected(self):
        host = ShardHost(0)  # no Hello: num_buckets unknown
        with pytest.raises(TransportError, match="before the Hello"):
            host.handle(HandoffRequest(bucket=0, version=1))

    def test_handoff_bucket_out_of_range_rejected(self):
        host = self._host(num_buckets=8)
        with pytest.raises(TransportError, match="out of range"):
            host.handle(HandoffRequest(bucket=8, version=1))

    def test_extract_replays_and_evicts_the_bucket(self):
        host = self._host()
        moving = self._bucket_user(host, bucket=2)
        staying = self._bucket_user(host, bucket=3)
        host.handle(VocabDelta(base=0, items=np.asarray([7, 9], dtype=np.int64)))
        host.handle(
            WriteBatch(
                user_ids=np.asarray([moving, moving, staying], dtype=np.int64),
                items=np.asarray([7, 9, 7], dtype=np.int64),
                values=np.asarray([1.0, 0.0, 1.0], dtype=np.float64),
            )
        )
        reply = host.handle(HandoffRequest(bucket=2, version=1))
        assert isinstance(reply, HandoffData)
        assert reply.bucket == 2 and reply.version == 1
        assert set(reply.user_ids.tolist()) == {moving}
        assert sorted(
            zip(reply.items.tolist(), reply.values.tolist())
        ) == [(7, 1.0), (9, 0.0)]  # current value per rated item
        assert host.map_version == 1
        assert moving not in host.table  # evicted outright
        assert staying in host.table
        assert host.matrix.liked_row(staying).tolist() == [0]

    def test_absorb_applies_the_replay(self):
        source = self._host(shard=0)
        dest = self._host(shard=1)
        moving = self._bucket_user(source, bucket=2)
        vocab = VocabDelta(base=0, items=np.asarray([7, 9], dtype=np.int64))
        source.handle(vocab)
        dest.handle(vocab)
        source.handle(
            WriteBatch(
                user_ids=np.asarray([moving, moving], dtype=np.int64),
                items=np.asarray([7, 9], dtype=np.int64),
                values=np.asarray([1.0, 1.0], dtype=np.float64),
            )
        )
        data = source.handle(HandoffRequest(bucket=2, version=1))
        dest.handle(data)
        assert dest.map_version == 1
        assert sorted(dest.matrix.liked_row(moving).tolist()) == [0, 1]

    def test_absorb_rejects_foreign_users(self):
        host = self._host()
        foreign = self._bucket_user(host, bucket=5)
        with pytest.raises(TransportError, match="carries user"):
            host.handle(
                HandoffData(
                    bucket=2,
                    version=1,
                    user_ids=np.asarray([foreign], dtype=np.int64),
                    items=np.asarray([7], dtype=np.int64),
                    values=np.asarray([1.0], dtype=np.float64),
                )
            )
        assert host.map_version == 0  # nothing applied


class TestLiveMigrationFaults:
    """Fault injection against real worker processes."""

    def test_worker_death_mid_handoff_fails_loudly_and_keeps_routing(self):
        table = ProfileTable()
        executor = ProcessExecutor()
        ClusterCoordinator(table, num_shards=3, executor=executor)
        for uid in range(12):
            table.record(uid, uid % 5, 1.0)
        placement = executor.placement
        bucket = placement.bucket_of(0)
        old_owner = placement.owner_of(bucket)
        version_before = placement.version
        try:
            # Kill the bucket's owner, then attempt the migration: the
            # handoff must surface a typed transport error...
            victim = executor._procs[old_owner]
            victim.terminate()
            victim.join(timeout=5)
            with pytest.raises((TransportError, OSError)):
                executor.migrate_bucket(bucket, (old_owner + 1) % 3)
            # ...and leave routing untouched: same owner, same epoch.
            assert placement.version == version_before
            assert placement.owner_of(bucket) == old_owner
        finally:
            executor.close()  # tolerates the already-dead worker

    def test_migrate_validation_errors(self):
        table = ProfileTable()
        executor = ProcessExecutor()
        coordinator = ClusterCoordinator(table, num_shards=2, executor=executor)
        placement = executor.placement
        bucket = 0
        owner = placement.owner_of(bucket)
        try:
            with pytest.raises(ValueError, match="already lives"):
                coordinator.migrate_bucket(bucket, owner)
            with pytest.raises(ValueError, match="out of range"):
                coordinator.migrate_bucket(bucket, 2)
            assert placement.version == 0
        finally:
            coordinator.close()
        with pytest.raises(RuntimeError, match="not running"):
            executor.migrate_bucket(bucket, (owner + 1) % 2)

    def test_migration_survives_round_trips_and_new_writes(self):
        # A full migrate -> write -> score -> stats cycle on live
        # workers: the moved users answer from their new owner with
        # the same bits the single matrix produces.
        rng = random.Random(77)
        table = ProfileTable()
        _populate(rng, table, users=24, items=60)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        coordinator = ClusterCoordinator(
            table, num_shards=3, executor=ProcessExecutor(ipc_write_batch=4)
        )
        placement = coordinator.placement
        try:
            for round_index in range(4):
                bucket = placement.bucket_of(round_index)
                owner = placement.owner_of(bucket)
                coordinator.migrate_bucket(bucket, (owner + 1) % 3)
                table.record(
                    rng.randrange(24), rng.randrange(60), float(rng.random() < 0.5)
                )
                job = _job(rng, 24)
                assert coordinator.process_engine_job(
                    job
                ) == widget.process_engine_job(job, matrix)
            assert placement.version == 4
            stats = coordinator.shard_stats()
            assert len(stats) == 3  # every worker still answers
        finally:
            coordinator.close()


class TestTruncationExactness:
    def test_truncate_topk_never_evicts_global_winners(self):
        # Randomized cross-check: merging shard-local top-k partials
        # equals merging the full partials, for every k.
        rng = np.random.default_rng(11)
        for _ in range(50):
            num_shards = int(rng.integers(1, 5))
            k = int(rng.integers(1, 8))
            score_parts, position_parts = [], []
            next_position = 0
            for _ in range(num_shards):
                count = int(rng.integers(0, 12))
                # Coarse scores force heavy cross-shard ties.
                scores = rng.integers(0, 4, count) / 2.0
                positions = np.arange(
                    next_position, next_position + count, dtype=np.int64
                )
                next_position += count
                score_parts.append(scores.astype(np.float64))
                position_parts.append(positions)
            full = merge_topk(score_parts, position_parts, k)
            truncated = [
                truncate_topk(positions, scores, k)
                for scores, positions in zip(score_parts, position_parts)
            ]
            cut = merge_topk(
                [scores for _, scores in truncated],
                [positions for positions, _ in truncated],
                k,
            )
            assert full[0].tolist() == cut[0].tolist()
            assert full[1].tolist() == cut[1].tolist()

    def test_truncation_ranks_by_score_then_position(self):
        positions = np.asarray([7, 3, 5], dtype=np.int64)
        scores = np.asarray([0.5, 0.9, 0.5], dtype=np.float64)
        kept_positions, kept_scores = truncate_topk(positions, scores, 2)
        assert kept_positions.tolist() == [3, 5]  # 0.9 first, then tie@0.5
        assert kept_scores.tolist() == [0.9, 0.5]

    def test_wire_partial_histogram_matches_bincount(self):
        liked_cols = np.asarray([4, 1, 4, 4, 0, 1], dtype=np.int64)
        partial = ShardPartial(
            positions=np.asarray([0], dtype=np.int64),
            scores=np.asarray([1.0]),
            liked_cols=liked_cols,
        )
        wire = to_wire_partial(0, partial, k=1, truncate=True)
        assert wire.pop_cols.tolist() == [0, 1, 4]
        assert wire.pop_counts.tolist() == [1, 2, 3]
        merged = merge_popularity_sparse([(wire.pop_cols, wire.pop_counts)])
        assert merged.tolist() == np.bincount(liked_cols).tolist()

    def test_sparse_merge_equals_concatenated_bincount(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            segments = [
                rng.integers(0, 30, rng.integers(0, 40)).astype(np.int64)
                for _ in range(int(rng.integers(1, 5)))
            ]
            parts = []
            for segment in segments:
                if segment.size:
                    histogram = np.bincount(segment)
                    cols = np.nonzero(histogram)[0]
                    parts.append((cols, histogram[cols]))
                else:
                    empty = np.zeros(0, dtype=np.int64)
                    parts.append((empty, empty))
            reference = (
                np.bincount(np.concatenate(segments))
                if sum(s.size for s in segments)
                else np.zeros(0, dtype=np.int64)
            )
            merged = merge_popularity_sparse(parts)
            assert merged.tolist() == reference.tolist()

    def test_truncated_and_full_partials_agree_end_to_end(self):
        rng = random.Random(23)
        table = ProfileTable()
        _populate(rng, table, users=25, items=60)
        coordinators = [
            ClusterCoordinator(
                table,
                num_shards=4,
                executor=ProcessExecutor(truncate_partials=flag),
            )
            for flag in (True, False)
        ]
        try:
            for _ in range(10):
                job = _job(rng, 25, metric=rng.choice(["cosine", "jaccard"]))
                results = [c.process_engine_job(job) for c in coordinators]
                assert results[0] == results[1]
        finally:
            for coordinator in coordinators:
                coordinator.close()


def _no_shard_children() -> bool:
    """No live (or zombie) shard workers remain under this process."""
    # active_children() also joins finished children, so a True here
    # means reaped, not merely dead.
    return not [
        proc
        for proc in multiprocessing.active_children()
        if proc.name.startswith("hyrec-shard")
    ]


class TestTeardownHardening:
    """close() and attach() reap every worker on every path."""

    def test_close_escalates_to_kill_for_wedged_workers(self):
        executor = ProcessExecutor(worker_timeout=0.2)
        executor.attach(ProfileTable(), num_shards=3)
        procs = list(executor._procs)
        # A stopped process ignores the Shutdown frame and leaves
        # SIGTERM pending forever -- only the SIGKILL stage reaps it.
        os.kill(procs[1].pid, signal.SIGSTOP)
        executor.close()
        assert all(proc.exitcode is not None for proc in procs)
        assert _no_shard_children()
        executor.close()  # idempotent after the escalated teardown

    def test_attach_failure_mid_replay_names_shard_and_reaps_all(
        self, monkeypatch
    ):
        from repro.cluster.transport import Channel

        rng = random.Random(13)
        table = ProfileTable()
        _populate(rng, table, users=20, items=50)
        original_send = Channel.send

        def failing_send(self, msg):
            if isinstance(msg, WriteBatch):
                raise OSError("injected wire fault")
            return original_send(self, msg)

        monkeypatch.setattr(Channel, "send", failing_send)
        executor = ProcessExecutor(ipc_write_batch=4, worker_timeout=0.5)
        # The warm-start replay is the first WriteBatch each worker
        # sees, so attach must fail loudly -- naming the shard whose
        # replay broke -- and reap every worker it already spawned.
        with pytest.raises(TransportError, match=r"worker \d+"):
            executor.attach(table, num_shards=3)
        assert _no_shard_children()
        # the failed attach tore the executor down, not half-built
        assert executor._procs == [] and executor._channels == []
