"""Tests for the server's Profile and KNN tables."""

from __future__ import annotations

import pytest

from repro.core.tables import KnnTable, ProfileTable


class TestProfileTable:
    def test_get_or_create_registers(self):
        table = ProfileTable()
        profile = table.get_or_create(5)
        assert 5 in table
        assert table.get(5) is profile

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            ProfileTable().get(1)

    def test_record_creates_user(self):
        table = ProfileTable()
        table.record(1, 10, 1.0, timestamp=2.0)
        assert table.get(1).liked_items() == {10}

    def test_liked_sets_snapshot(self):
        table = ProfileTable()
        table.record(1, 10, 1.0)
        table.record(1, 11, 0.0)
        table.record(2, 12, 1.0)
        assert table.liked_sets() == {1: frozenset({10}), 2: frozenset({12})}

    def test_snapshot_is_deep(self):
        table = ProfileTable()
        table.record(1, 10, 1.0)
        snapshot = table.snapshot()
        table.record(1, 11, 1.0)
        assert snapshot.get(1).liked_items() == {10}
        assert table.get(1).liked_items() == {10, 11}

    def test_users_and_len(self):
        table = ProfileTable()
        table.record(3, 1, 1.0)
        table.record(7, 1, 1.0)
        assert len(table) == 2
        assert sorted(table.users()) == [3, 7]
        assert sorted(table) == [3, 7]


class TestKnnTable:
    def test_update_and_read(self):
        table = KnnTable()
        table.update(1, [2, 3, 4])
        assert table.neighbors_of(1) == [2, 3, 4]

    def test_unknown_user_empty(self):
        assert KnnTable().neighbors_of(9) == []

    def test_self_loop_rejected(self):
        table = KnnTable()
        with pytest.raises(ValueError, match="own neighbor"):
            table.update(1, [2, 1])

    def test_duplicates_removed_preserving_order(self):
        table = KnnTable()
        table.update(1, [5, 3, 5, 3, 7])
        assert table.neighbors_of(1) == [5, 3, 7]

    def test_update_replaces(self):
        table = KnnTable()
        table.update(1, [2, 3])
        table.update(1, [4])
        assert table.neighbors_of(1) == [4]

    def test_neighbors_of_returns_copy(self):
        table = KnnTable()
        table.update(1, [2, 3])
        neighbors = table.neighbors_of(1)
        neighbors.append(99)
        assert table.neighbors_of(1) == [2, 3]

    def test_as_dict_is_copy(self):
        table = KnnTable()
        table.update(1, [2])
        snapshot = table.as_dict()
        snapshot[1].append(99)
        assert table.neighbors_of(1) == [2]

    def test_users_and_contains(self):
        table = KnnTable()
        table.update(1, [2])
        assert 1 in table
        assert 2 not in table
        assert table.users() == [1]
        assert len(table) == 1
