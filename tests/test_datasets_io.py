"""Tests for trace persistence."""

from __future__ import annotations

import pytest

from repro.datasets import load_trace, save_trace
from repro.datasets.schema import Rating, Trace


@pytest.fixture()
def small_trace() -> Trace:
    return Trace(
        "toy",
        [
            Rating(timestamp=1.5, user=1, item=10, value=1.0),
            Rating(timestamp=2.25, user=2, item=11, value=0.0),
            Rating(timestamp=3.0, user=1, item=12, value=1.0),
        ],
    )


class TestTraceIo:
    def test_round_trip_plain(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        count = save_trace(small_trace, path)
        assert count == 3
        loaded = load_trace(path)
        assert loaded.ratings == small_trace.ratings
        assert loaded.name == "trace"

    def test_round_trip_gzip(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv.gz"
        save_trace(small_trace, path)
        loaded = load_trace(path, name="renamed")
        assert loaded.ratings == small_trace.ratings
        assert loaded.name == "renamed"
        # It really is gzip on disk.
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_gzip_smaller_for_real_traces(self, tmp_path, ml1_small):
        plain = tmp_path / "t.csv"
        packed = tmp_path / "t.csv.gz"
        save_trace(ml1_small, plain)
        save_trace(ml1_small, packed)
        assert packed.stat().st_size < plain.stat().st_size / 2

    def test_timestamps_preserved_exactly(self, tmp_path):
        trace = Trace(
            "precise", [Rating(timestamp=0.1234567890123, user=1, item=1, value=1.0)]
        )
        path = tmp_path / "p.csv"
        save_trace(trace, path)
        assert load_trace(path).ratings[0].timestamp == 0.1234567890123

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="unexpected header"):
            load_trace(path)

    def test_generator_round_trip(self, tmp_path, digg_small):
        path = tmp_path / "digg.csv.gz"
        save_trace(digg_small, path)
        loaded = load_trace(path)
        assert loaded.stats().num_ratings == digg_small.stats().num_ratings
        assert loaded.users == digg_small.users
