"""Model-based arena accounting test (hypothesis).

Drives a :class:`~repro.engine.liked_matrix.LikedMatrix` through
random interleavings of writes, un-likes, reads, gathers, TTL clock
jumps and explicit compactions -- under an eviction policy -- and
checks it against a dict-of-sets oracle after *every* step:

* ``arena_live`` equals the oracle mass of the resident rows exactly
  (not approximately: every superseded segment must be accounted as
  garbage, every eviction must return its cells).
* ``arena_garbage``/``arena_entries``/``arena_capacity`` stay
  consistent, and an explicit compaction drops garbage to zero.
* Rows and rated rows read back exactly the oracle state, including
  rows rebuilt after an eviction.
* The resident-row cap holds whenever eviction is enabled.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import LikedMatrix, MemoryPolicy


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


USERS = st.integers(0, 7)
ITEMS = st.integers(0, 15)

OPS = st.one_of(
    st.tuples(st.just("like"), USERS, ITEMS),
    st.tuples(st.just("unlike"), USERS, ITEMS),
    st.tuples(st.just("read"), USERS),
    st.tuples(st.just("rated"), USERS),
    st.tuples(st.just("gather"), st.lists(USERS, max_size=5)),
    st.tuples(st.just("advance"), st.integers(1, 20)),
    st.tuples(st.just("compact")),
)


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(OPS, max_size=60),
    cap=st.integers(0, 4),
    ttl=st.sampled_from([0.0, 12.0]),
    narrow=st.booleans(),
)
def test_arena_accounting_matches_oracle(ops, cap, ttl, narrow):
    clock = FakeClock()
    policy = MemoryPolicy(
        max_resident_rows=cap, ttl_seconds=ttl, narrow_dtypes=narrow
    )
    table = ProfileTable()
    matrix = LikedMatrix(
        table,
        memory=policy if (policy.evicts or narrow) else None,
        clock=clock,
    )
    liked: dict[int, set[int]] = {}
    rated: dict[int, set[int]] = {}

    def items_of(row) -> list[int]:
        cols = np.asarray(row, dtype=np.int64)
        return sorted(matrix.item_array()[cols].tolist())

    for op in ops:
        kind = op[0]
        if kind == "like":
            _, uid, item = op
            table.record(uid, item, 1.0)
            liked.setdefault(uid, set()).add(item)
            rated.setdefault(uid, set()).add(item)
        elif kind == "unlike":
            _, uid, item = op
            table.record(uid, item, 0.0)
            liked.setdefault(uid, set()).discard(item)
            rated.setdefault(uid, set()).add(item)
        elif kind == "read":
            _, uid = op
            table.get_or_create(uid)
            assert items_of(matrix.liked_row(uid)) == sorted(
                liked.get(uid, set())
            )
        elif kind == "rated":
            _, uid = op
            table.get_or_create(uid)
            assert items_of(matrix.rated_row(uid)) == sorted(
                rated.get(uid, set())
            )
        elif kind == "gather":
            _, uids = op
            for uid in uids:
                table.get_or_create(uid)
            indices, indptr, sizes = matrix.gather_liked(uids)
            for i, uid in enumerate(uids):
                segment = indices[indptr[i] : indptr[i + 1]]
                assert items_of(segment) == sorted(liked.get(uid, set()))
                assert sizes[i] == len(liked.get(uid, set()))
        elif kind == "advance":
            clock.now += op[1]
        elif kind == "compact":
            matrix._compact(0)
            assert matrix.arena_garbage == 0

        # --- invariants, after every single step -----------------------------
        stats = matrix.memory_stats()
        resident = list(matrix._start)
        expected_live = sum(len(liked.get(uid, set())) for uid in resident)
        assert stats["arena_live"] == expected_live
        assert stats["arena_garbage"] >= 0
        assert (
            stats["arena_entries"]
            == stats["arena_live"] + stats["arena_garbage"]
        )
        assert stats["arena_capacity"] >= stats["arena_entries"]
        if policy.evicts and cap > 0:
            assert stats["rows_resident"] <= cap

    # Final read-back: every user the oracle knows, including all the
    # evicted-and-rebuilt ones, must report exact state.
    for uid in sorted(set(liked) | set(rated)):
        assert items_of(matrix.liked_row(uid)) == sorted(liked.get(uid, set()))
        assert items_of(matrix.rated_row(uid)) == sorted(rated.get(uid, set()))
