"""Round-trip and rejection tests for the serialized shard protocol.

The wire contract: every message encodes to one versioned,
length-prefixed frame that decodes back to an equal message
(bit-identical arrays, float64 payloads included), and every malformed
input -- truncated frames, corrupt magic, foreign protocol versions,
unknown frame types, lying length fields -- is rejected with a typed
:class:`~repro.cluster.transport.TransportError` instead of garbage
state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scoring import ShardSlice, WirePartial
from repro.cluster.transport import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    FrameType,
    HandoffData,
    HandoffRequest,
    Hello,
    JobSlices,
    MapUpdate,
    MetricsRequest,
    MetricsSnapshot,
    Partials,
    Ping,
    Pong,
    Ready,
    Shutdown,
    StatsReply,
    StatsRequest,
    TransportError,
    TruncatedFrameError,
    VersionMismatchError,
    VocabDelta,
    WireSample,
    WireSpan,
    WriteBatch,
    decode_message,
    encode_message,
)

# --- strategies -------------------------------------------------------------

ids64 = st.integers(min_value=0, max_value=2**53)
small_int = st.integers(min_value=0, max_value=1_000_000)


def int_arrays(max_size: int = 50):
    return st.lists(ids64, max_size=max_size).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    )


def float_arrays(max_size: int = 50):
    # Scores are arbitrary float64 bit patterns as far as the wire is
    # concerned; NaN round-trips bit-exactly through the raw dump.
    return st.lists(
        st.floats(allow_nan=True, width=64), max_size=max_size
    ).map(lambda xs: np.asarray(xs, dtype=np.float64))


def slices():
    return st.builds(
        lambda job_index, k, liked, metric, cols, pairs: ShardSlice(
            job_index=job_index,
            candidate_ids=np.asarray([p[0] for p in pairs], dtype=np.int64),
            positions=np.asarray([p[1] for p in pairs], dtype=np.int64),
            query_cols=cols,
            liked_count=liked,
            metric=metric,
            k=k,
        ),
        job_index=small_int,
        k=st.integers(min_value=1, max_value=500),
        liked=small_int,
        metric=st.sampled_from(["cosine", "jaccard", "overlap", "söme-metric"]),
        cols=int_arrays(20),
        pairs=st.lists(st.tuples(ids64, ids64), max_size=20),
    )


def partials():
    return st.builds(
        lambda job_index, scored, pop: WirePartial(
            job_index=job_index,
            positions=np.asarray([p[0] for p in scored], dtype=np.int64),
            scores=np.asarray([p[1] for p in scored], dtype=np.float64),
            pop_cols=np.asarray([p[0] for p in pop], dtype=np.int64),
            pop_counts=np.asarray([p[1] for p in pop], dtype=np.int64),
        ),
        job_index=small_int,
        scored=st.lists(
            st.tuples(ids64, st.floats(allow_nan=True, width=64)), max_size=20
        ),
        pop=st.lists(st.tuples(ids64, ids64), max_size=20),
    )


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-level equality (NaN == NaN, -0.0 != 0.0 distinctions kept)."""
    return a.dtype == b.dtype and a.tobytes() == b.tobytes()


def _slices_equal(a: ShardSlice, b: ShardSlice) -> bool:
    return (
        a.job_index == b.job_index
        and a.k == b.k
        and a.liked_count == b.liked_count
        and a.metric == b.metric
        and _arrays_equal(a.query_cols, b.query_cols)
        and _arrays_equal(a.candidate_ids, b.candidate_ids)
        and _arrays_equal(a.positions, b.positions)
    )


def _partials_equal(a: WirePartial, b: WirePartial) -> bool:
    return (
        a.job_index == b.job_index
        and _arrays_equal(a.positions, b.positions)
        and _arrays_equal(a.scores, b.scores)
        and _arrays_equal(a.pop_cols, b.pop_cols)
        and _arrays_equal(a.pop_counts, b.pop_counts)
    )


def _roundtrip(msg):
    frame = encode_message(msg)
    decoded, consumed = decode_message(frame)
    assert consumed == len(frame)
    assert type(decoded) is type(msg)
    return decoded


# --- round trips ------------------------------------------------------------


class TestRoundTrips:
    @given(
        shard=small_int,
        num_shards=st.integers(1, 4096),
        num_buckets=small_int,
        map_version=small_int,
        evict_max_rows=small_int,
        evict_ttl_ms=small_int,
    )
    def test_hello(
        self, shard, num_shards, num_buckets, map_version,
        evict_max_rows, evict_ttl_ms,
    ):
        decoded = _roundtrip(
            Hello(
                shard=shard,
                num_shards=num_shards,
                num_buckets=num_buckets,
                map_version=map_version,
                evict_max_rows=evict_max_rows,
                evict_ttl_ms=evict_ttl_ms,
            )
        )
        assert decoded.shard == shard and decoded.num_shards == num_shards
        assert decoded.num_buckets == num_buckets
        assert decoded.map_version == map_version
        assert decoded.evict_max_rows == evict_max_rows
        assert decoded.evict_ttl_ms == evict_ttl_ms

    @given(shard=small_int, pid=small_int)
    def test_ready(self, shard, pid):
        decoded = _roundtrip(Ready(shard=shard, pid=pid))
        assert decoded.shard == shard and decoded.pid == pid

    @given(base=small_int, items=int_arrays())
    def test_vocab_delta(self, base, items):
        decoded = _roundtrip(VocabDelta(base=base, items=items))
        assert decoded.base == base
        assert _arrays_equal(decoded.items, items)

    @given(n=st.integers(0, 40), users=int_arrays(40), items=int_arrays(40),
           values=float_arrays(40))
    def test_write_batch(self, n, users, items, values):
        n = min(n, users.size, items.size, values.size)
        batch = WriteBatch(
            user_ids=users[:n], items=items[:n], values=values[:n]
        )
        decoded = _roundtrip(batch)
        assert _arrays_equal(decoded.user_ids, batch.user_ids)
        assert _arrays_equal(decoded.items, batch.items)
        assert _arrays_equal(decoded.values, batch.values)

    @settings(max_examples=50)
    @given(batch_id=small_int, truncate=st.booleans(),
           pieces=st.lists(slices(), max_size=6), map_version=small_int)
    def test_job_slices(self, batch_id, truncate, pieces, map_version):
        msg = JobSlices(
            batch_id=batch_id,
            truncate=truncate,
            slices=tuple(pieces),
            map_version=map_version,
        )
        decoded = _roundtrip(msg)
        assert decoded.batch_id == batch_id
        assert decoded.truncate == truncate
        assert decoded.map_version == map_version
        assert len(decoded.slices) == len(pieces)
        for got, sent in zip(decoded.slices, pieces):
            assert _slices_equal(got, sent)

    @given(version=small_int)
    def test_map_update(self, version):
        assert _roundtrip(MapUpdate(version=version)).version == version

    @given(bucket=small_int, version=small_int)
    def test_handoff_request(self, bucket, version):
        decoded = _roundtrip(HandoffRequest(bucket=bucket, version=version))
        assert decoded.bucket == bucket and decoded.version == version

    @given(bucket=small_int, version=small_int, n=st.integers(0, 40),
           users=int_arrays(40), items=int_arrays(40), values=float_arrays(40))
    def test_handoff_data(self, bucket, version, n, users, items, values):
        n = min(n, users.size, items.size, values.size)
        msg = HandoffData(
            bucket=bucket,
            version=version,
            user_ids=users[:n],
            items=items[:n],
            values=values[:n],
        )
        decoded = _roundtrip(msg)
        assert decoded.bucket == bucket and decoded.version == version
        assert _arrays_equal(decoded.user_ids, msg.user_ids)
        assert _arrays_equal(decoded.items, msg.items)
        assert _arrays_equal(decoded.values, msg.values)

    @settings(max_examples=50)
    @given(batch_id=small_int, parts=st.lists(partials(), max_size=6))
    def test_partials(self, batch_id, parts):
        msg = Partials(batch_id=batch_id, partials=tuple(parts))
        decoded = _roundtrip(msg)
        assert decoded.batch_id == batch_id
        assert len(decoded.partials) == len(parts)
        for got, sent in zip(decoded.partials, parts):
            assert _partials_equal(got, sent)

    @given(values=st.lists(small_int, min_size=8, max_size=8))
    def test_stats_reply(self, values):
        decoded = _roundtrip(StatsReply(*values))
        assert decoded == StatsReply(*values)

    def test_empty_payload_messages(self):
        assert isinstance(_roundtrip(StatsRequest()), StatsRequest)
        assert isinstance(_roundtrip(Shutdown()), Shutdown)

    def test_frames_concatenate_cleanly(self):
        stream = b"".join(
            encode_message(m)
            for m in (Hello(0, 2), StatsRequest(), Shutdown())
        )
        offset = 0
        decoded = []
        while offset < len(stream):
            msg, offset = decode_message(stream, offset)
            decoded.append(type(msg))
        assert decoded == [Hello, StatsRequest, Shutdown]


# --- rejection --------------------------------------------------------------


class TestRejection:
    @given(parts=st.lists(partials(), max_size=4))
    @settings(max_examples=25)
    def test_any_truncation_is_rejected(self, parts):
        # Cutting a frame anywhere (header or payload) must raise the
        # typed truncation error, never mis-parse.
        frame = encode_message(Partials(batch_id=7, partials=tuple(parts)))
        for cut in range(len(frame)):
            with pytest.raises(TruncatedFrameError):
                decode_message(frame[:cut])

    def test_bad_magic(self):
        frame = bytearray(encode_message(Shutdown()))
        frame[0:2] = b"XX"
        with pytest.raises(TransportError, match="magic"):
            decode_message(bytes(frame))

    def test_version_mismatch(self):
        frame = bytearray(encode_message(Shutdown()))
        assert frame[2] == PROTOCOL_VERSION
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(VersionMismatchError):
            decode_message(bytes(frame))

    def test_unknown_frame_type(self):
        frame = bytearray(encode_message(Shutdown()))
        frame[3] = 250  # not a FrameType
        with pytest.raises(TransportError, match="unknown frame type"):
            decode_message(bytes(frame))

    def test_length_field_overrunning_buffer(self):
        frame = bytearray(encode_message(Hello(1, 2)))
        frame[4:8] = (9999).to_bytes(4, "big")  # claims more than present
        with pytest.raises(TruncatedFrameError):
            decode_message(bytes(frame))

    def test_payload_underrun_is_rejected(self):
        # Declared length larger than the message's real payload, with
        # padding appended so the buffer is long enough: the parser
        # must notice the declared/parsed size mismatch.
        payload = Hello(1, 2)._pack() + b"\x00" * 4
        frame = (
            PROTOCOL_MAGIC
            + bytes([PROTOCOL_VERSION, int(FrameType.HELLO)])
            + len(payload).to_bytes(4, "big")
            + payload
        )
        with pytest.raises(TransportError, match="declared"):
            decode_message(frame)

    def test_truncated_handoff_frame_rejected_everywhere(self):
        # A handoff frame cut at any byte -- header or payload -- must
        # raise the typed truncation error, never half-apply a bucket.
        frame = encode_message(
            HandoffData(
                bucket=3,
                version=2,
                user_ids=np.arange(4, dtype=np.int64),
                items=np.arange(4, dtype=np.int64),
                values=np.ones(4, dtype=np.float64),
            )
        )
        for cut in range(len(frame)):
            with pytest.raises(TruncatedFrameError):
                decode_message(frame[:cut])

    def test_mismatched_handoff_arrays_rejected(self):
        msg = HandoffData(
            bucket=0,
            version=1,
            user_ids=np.arange(3, dtype=np.int64),
            items=np.arange(2, dtype=np.int64),
            values=np.zeros(3, dtype=np.float64),
        )
        with pytest.raises(TransportError, match="disagree"):
            decode_message(encode_message(msg))

    def test_mismatched_write_batch_arrays(self):
        batch = WriteBatch(
            user_ids=np.arange(3, dtype=np.int64),
            items=np.arange(2, dtype=np.int64),
            values=np.zeros(3, dtype=np.float64),
        )
        with pytest.raises(TransportError, match="disagree"):
            decode_message(encode_message(batch))

    def test_unknown_dtype_code_in_array(self):
        frame = bytearray(encode_message(VocabDelta(0, np.arange(3))))
        # The array header's dtype code sits right after the base
        # scalar inside the payload.
        header = 8  # frame header
        frame[header + 8] = ord("x")
        with pytest.raises(TransportError, match="dtype"):
            decode_message(bytes(frame))

    def test_non_message_rejected_at_encode(self):
        with pytest.raises(TransportError, match="not a protocol message"):
            encode_message(object())  # type: ignore[arg-type]

    def test_channel_fails_fast_on_desynced_stream(self):
        # A desynced-but-alive peer must produce a typed error, not a
        # blocking read of a garbage payload length.
        import socket

        from repro.cluster.transport import Channel

        left, right = socket.socketpair()
        try:
            left.sendall(b"GARBAGE-" * 2)  # 16 bytes: a full bogus header
            with pytest.raises(TransportError, match="magic"):
                Channel(right).recv()
        finally:
            left.close()
            right.close()

    def test_channel_rejects_foreign_version_before_payload_read(self):
        import socket

        from repro.cluster.transport import Channel

        frame = bytearray(encode_message(Hello(0, 1)))
        frame[2] = PROTOCOL_VERSION + 3
        left, right = socket.socketpair()
        try:
            left.sendall(bytes(frame))
            with pytest.raises(VersionMismatchError):
                Channel(right).recv()
        finally:
            left.close()
            right.close()


# --- v3 liveness probes -----------------------------------------------------


class TestLivenessFrames:
    """Ping/Pong (protocol v3): the supervisor's active health probe."""

    def test_protocol_version_is_6(self):
        # v3 added Ping/Pong; v4 added the observability frames; v5
        # added the bucket-space split; v6 widened Hello (memory
        # policy) and StatsReply (eviction counters).  A bump without
        # new frames/fields (or new fields without a bump) is a
        # protocol bug.
        assert PROTOCOL_VERSION == 6
        assert FrameType.PING in FrameType
        assert FrameType.PONG in FrameType
        assert FrameType.METRICS_REQUEST in FrameType
        assert FrameType.METRICS_SNAPSHOT in FrameType
        assert FrameType.SPLIT_BUCKETS in FrameType

    @given(nonce=ids64)
    def test_ping_round_trip(self, nonce):
        decoded = _roundtrip(Ping(nonce=nonce))
        assert decoded == Ping(nonce=nonce)

    @given(nonce=ids64, shard=small_int, pid=small_int)
    def test_pong_round_trip(self, nonce, shard, pid):
        decoded = _roundtrip(Pong(nonce=nonce, shard=shard, pid=pid))
        assert decoded.nonce == nonce
        assert decoded.shard == shard and decoded.pid == pid

    @given(nonce=ids64, shard=small_int, pid=small_int)
    @settings(max_examples=25)
    def test_any_probe_truncation_is_rejected(self, nonce, shard, pid):
        # Probe frames travel on the same stream as job frames, so a
        # cut probe must fail typed -- never desync the channel.
        for msg in (Ping(nonce=nonce), Pong(nonce=nonce, shard=shard, pid=pid)):
            frame = encode_message(msg)
            for cut in range(len(frame)):
                with pytest.raises(TruncatedFrameError):
                    decode_message(frame[:cut])

    def test_pong_payload_underrun_rejected(self):
        # A Pong lying about its length (claims more scalars than it
        # carries) is malformed, not a shorter Ping.
        payload = Ping(nonce=9)._pack()
        frame = (
            PROTOCOL_MAGIC
            + bytes([PROTOCOL_VERSION, FrameType.PONG])
            + len(payload).to_bytes(4, "big")
            + payload
        )
        with pytest.raises(TransportError):
            decode_message(frame)

    def test_host_answers_ping_before_handshake(self):
        # The probe must work on a worker that has not completed (or
        # has just restarted into) its handshake -- liveness checking
        # cannot depend on the state it is checking for.
        import os

        from repro.cluster.worker import ShardHost

        host = ShardHost(3)
        reply = host.handle(Ping(nonce=41))
        assert reply == Pong(nonce=41, shard=3, pid=os.getpid())

    def test_respawned_host_rejects_stale_epoch_jobs(self):
        # The recovery contract: a replacement worker handshakes at the
        # *current* epoch, so frames scattered under the old map (from
        # before the worker died) must be re-stamped by the retry path,
        # never replayed verbatim.
        from repro.cluster.worker import ShardHost

        host = ShardHost(0)
        host.handle(Hello(shard=0, num_shards=2, num_buckets=8, map_version=4))
        stale = JobSlices(batch_id=1, truncate=True, slices=(), map_version=3)
        with pytest.raises(TransportError, match="stale map version"):
            host.handle(stale)
        fresh = JobSlices(batch_id=1, truncate=True, slices=(), map_version=4)
        assert host.handle(fresh).batch_id == 1


# --- v4 observability frames -------------------------------------------------


class TestObservabilityFrames:
    """Hello flags, trace stamps, WireSpan/WireSample round trips (v4).

    Telemetry neutrality matters here: an untraced JobSlices and a
    metrics-off Hello must encode byte-identically to their v3-era
    defaults plus zeroed new fields, and Partials with no spans carry
    exactly one extra zero scalar -- no per-partial overhead.
    """

    @given(flags=st.integers(0, 2**16))
    def test_hello_flags_round_trip(self, flags):
        decoded = _roundtrip(Hello(shard=1, num_shards=4, flags=flags))
        assert decoded.flags == flags

    @given(trace_id=ids64, trace_parent=ids64)
    def test_job_slices_trace_stamp_round_trip(self, trace_id, trace_parent):
        msg = JobSlices(
            batch_id=3,
            truncate=True,
            slices=(),
            map_version=2,
            trace_id=trace_id,
            trace_parent=trace_parent,
        )
        decoded = _roundtrip(msg)
        assert decoded.trace_id == trace_id
        assert decoded.trace_parent == trace_parent

    @given(
        name=st.text(max_size=30),
        span_id=ids64,
        parent_id=ids64,
        start_us=ids64,
        dur_us=ids64,
        pid=small_int,
    )
    @settings(max_examples=50)
    def test_partials_spans_round_trip(
        self, name, span_id, parent_id, start_us, dur_us, pid
    ):
        span = WireSpan(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start_us=start_us,
            dur_us=dur_us,
            pid=pid,
        )
        decoded = _roundtrip(
            Partials(batch_id=9, partials=(), spans=(span, span))
        )
        assert decoded.spans == (span, span)

    def test_untraced_partials_carry_no_span_bytes(self):
        frame = encode_message(Partials(batch_id=1, partials=()))
        # batch_id + partial count + span count: three packed scalars.
        header = 8  # magic(2) + version + type + length(4)
        assert len(frame) == header + 3 * 8

    def test_metrics_request_round_trip(self):
        assert _roundtrip(MetricsRequest()) == MetricsRequest()

    @given(
        kind=st.integers(0, 2),
        name=st.text(max_size=30),
        labels=st.text(max_size=30),
        values=float_arrays(10),
        bounds=float_arrays(6),
    )
    @settings(max_examples=50)
    def test_metrics_snapshot_round_trip(
        self, kind, name, labels, values, bounds
    ):
        sample = WireSample(
            kind=kind, name=name, labels=labels, values=values, bounds=bounds
        )
        decoded = _roundtrip(MetricsSnapshot(shard=5, samples=(sample,)))
        assert decoded.shard == 5
        got = decoded.samples[0]
        assert got.kind == kind and got.name == name and got.labels == labels
        assert _arrays_equal(got.values, values)
        assert _arrays_equal(got.bounds, bounds)

    def test_unknown_sample_kind_rejected(self):
        with pytest.raises(TransportError, match="unknown metric kind"):
            WireSample(
                kind=3,
                name="x",
                labels="",
                values=np.zeros(1),
                bounds=np.zeros(0),
            )

    @settings(max_examples=20)
    @given(trace_id=ids64)
    def test_traced_frame_truncation_rejected(self, trace_id):
        span = WireSpan(
            name="shard0:score",
            span_id=7,
            parent_id=trace_id,
            start_us=1,
            dur_us=2,
            pid=3,
        )
        frame = encode_message(
            Partials(batch_id=1, partials=(), spans=(span,))
        )
        for cut in range(8, len(frame)):
            with pytest.raises(TransportError):
                decode_message(frame[:cut])
