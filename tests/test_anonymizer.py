"""Tests for the anonymous user/item mapping (privacy layer)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.anonymizer import AnonymousMapping, StaleTokenError


class TestTokens:
    def test_round_trip_user(self):
        mapping = AnonymousMapping(seed=1)
        token = mapping.token_for_user(42)
        assert mapping.resolve_user(token) == 42

    def test_round_trip_item(self):
        mapping = AnonymousMapping(seed=1)
        token = mapping.token_for_item(7)
        assert mapping.resolve_item(token) == 7

    def test_token_stable_within_epoch(self):
        mapping = AnonymousMapping(seed=1)
        assert mapping.token_for_user(1) == mapping.token_for_user(1)

    def test_distinct_users_distinct_tokens(self):
        mapping = AnonymousMapping(seed=1)
        tokens = {mapping.token_for_user(uid) for uid in range(500)}
        assert len(tokens) == 500

    def test_token_does_not_leak_id(self):
        """The numeric id must not be recoverable from the token text.

        Single digits collide with random hex by chance, so check
        longer ids whose decimal spelling appearing in a 12-hex-char
        body would be a real leak.
        """
        mapping = AnonymousMapping(seed=1)
        for uid in (12345, 999999, 1234567):
            token = mapping.token_for_user(uid)
            assert str(uid) not in token.split("_")[1]

    def test_user_and_item_namespaces_disjoint(self):
        mapping = AnonymousMapping(seed=1)
        user_token = mapping.token_for_user(1)
        item_token = mapping.token_for_item(1)
        assert user_token != item_token
        assert user_token.startswith("u")
        assert item_token.startswith("i")

    def test_unknown_token_raises_keyerror(self):
        mapping = AnonymousMapping(seed=1)
        with pytest.raises(KeyError):
            mapping.resolve_user("u0_doesnotexist")


class TestReshuffle:
    def test_reshuffle_changes_tokens(self):
        mapping = AnonymousMapping(seed=1)
        before = mapping.token_for_user(1)
        mapping.reshuffle()
        after = mapping.token_for_user(1)
        assert before != after

    def test_stale_token_raises_stale_error(self):
        mapping = AnonymousMapping(seed=1)
        old = mapping.token_for_user(1)
        mapping.reshuffle()
        with pytest.raises(StaleTokenError):
            mapping.resolve_user(old)

    def test_stale_item_token_raises(self):
        mapping = AnonymousMapping(seed=1)
        old = mapping.token_for_item(1)
        mapping.reshuffle()
        with pytest.raises(StaleTokenError):
            mapping.resolve_item(old)

    def test_epoch_counter_increments(self):
        mapping = AnonymousMapping(seed=1)
        assert mapping.epoch == 0
        mapping.reshuffle()
        mapping.reshuffle()
        assert mapping.epoch == 2

    def test_reshuffle_is_deterministic_per_seed(self):
        a = AnonymousMapping(seed=9)
        b = AnonymousMapping(seed=9)
        a.reshuffle()
        b.reshuffle()
        assert a.token_for_user(5) == b.token_for_user(5)

    def test_different_seeds_differ(self):
        a = AnonymousMapping(seed=1)
        b = AnonymousMapping(seed=2)
        assert a.token_for_user(5) != b.token_for_user(5)


class TestValidation:
    def test_tiny_token_bytes_rejected(self):
        with pytest.raises(ValueError, match="token_bytes"):
            AnonymousMapping(seed=0, token_bytes=1)


class TestAnonymizerProperties:
    @given(ids=st.lists(st.integers(0, 10_000), max_size=80, unique=True))
    def test_bijective_over_any_id_set(self, ids):
        mapping = AnonymousMapping(seed=3)
        tokens = [mapping.token_for_user(uid) for uid in ids]
        assert len(set(tokens)) == len(ids)
        for uid, token in zip(ids, tokens):
            assert mapping.resolve_user(token) == uid

    @given(epochs=st.integers(1, 5))
    def test_all_prior_epochs_invalidated(self, epochs):
        mapping = AnonymousMapping(seed=3)
        stale: list[str] = []
        for _ in range(epochs):
            stale.append(mapping.token_for_user(1))
            mapping.reshuffle()
        for token in stale:
            with pytest.raises(StaleTokenError):
                mapping.resolve_user(token)
