"""Tests for the centralized and decentralized baseline systems."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CentralizedOfflineSystem,
    CRecFrontend,
    OfflineCRecBackend,
    OfflineIdealBackend,
    OnlineIdealSystem,
    P2PRecommender,
    run_clus_mahout,
    run_crec_backend,
    run_exhaustive,
    run_mahout_single,
)
from repro.core.tables import ProfileTable
from repro.sim.clock import DAY, HOUR, WEEK


def fill_profiles(trace) -> ProfileTable:
    table = ProfileTable()
    for rating in trace:
        table.record(rating.user, rating.item, rating.value, rating.timestamp)
    return table


class TestOfflineIdealBackend:
    def test_periodic_schedule(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineIdealBackend(profiles, k=3, period_s=WEEK)
        assert backend.maybe_recompute(0.0) is True
        assert backend.maybe_recompute(DAY) is False
        assert backend.maybe_recompute(WEEK + 1) is True
        assert backend.runs == 2

    def test_catches_up_without_replaying_missed_periods(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineIdealBackend(profiles, k=3, period_s=WEEK)
        backend.maybe_recompute(0.0)
        # Twenty weeks of silence -> exactly one catch-up run.
        assert backend.maybe_recompute(20 * WEEK) is True
        assert backend.runs == 2

    def test_table_staleness_between_runs(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineIdealBackend(profiles, k=3, period_s=WEEK)
        backend.maybe_recompute(0.0)
        snapshot = dict(backend.knn_table)
        # New ratings arrive but no recompute is due: table unchanged.
        some_user = next(iter(profiles))
        profiles.record(some_user, 999_999, 1.0)
        backend.maybe_recompute(DAY)
        assert backend.knn_table == snapshot

    def test_invalid_period(self, ml1_small):
        with pytest.raises(ValueError):
            OfflineIdealBackend(fill_profiles(ml1_small), period_s=0)


class TestCentralizedOfflineSystem:
    def test_replay_counts_requests(self, toy_trace):
        system = CentralizedOfflineSystem(k=2, r=3, period_s=WEEK)
        served = system.replay(toy_trace)
        assert served == len(toy_trace)

    def test_recommendations_exclude_rated(self, toy_trace):
        system = CentralizedOfflineSystem(k=2, r=5, period_s=1.0)
        system.replay(toy_trace)
        outcome = system.request(0, now=100.0)
        rated = system.profiles.get(0).rated_items()
        assert all(item not in rated for item in outcome.recommendations)

    def test_fresh_backend_finds_similar_neighbors(self, toy_trace):
        system = CentralizedOfflineSystem(k=1, r=3, period_s=1.0)
        system.replay(toy_trace)
        outcome = system.request(0, now=1000.0)
        assert outcome.neighbors == [1]


class TestOnlineIdealSystem:
    def test_neighbors_always_fresh(self, toy_trace):
        system = OnlineIdealSystem(k=1, r=3)
        for rating in toy_trace:
            system.record_rating(rating.user, rating.item, rating.value)
        outcome = system.request(0)
        assert outcome.neighbors == [1]
        assert outcome.service_time_s > 0

    def test_replay(self, toy_trace):
        system = OnlineIdealSystem(k=2, r=3)
        assert system.replay(toy_trace) == len(toy_trace)


class TestOfflineCRec:
    def test_backend_produces_full_table(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineCRecBackend(profiles, k=5, iterations=3, seed=1)
        result = backend.recompute()
        assert len(backend.knn_table.users()) == len(profiles)
        assert result.wall_clock_s > 0
        assert backend.history[-1].users == len(profiles)

    def test_backend_periodic(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineCRecBackend(
            profiles, k=3, period_s=2 * DAY, iterations=1, seed=1
        )
        assert backend.maybe_recompute(0.0)
        assert not backend.maybe_recompute(HOUR)
        assert backend.maybe_recompute(2 * DAY + 1)

    def test_frontend_serves_real_recommendations(self, ml1_small):
        profiles = fill_profiles(ml1_small)
        backend = OfflineCRecBackend(profiles, k=5, iterations=3, seed=1)
        backend.recompute()
        frontend = CRecFrontend(profiles, backend.knn_table, k=5, r=5, seed=1)
        some_user = profiles.users()[0]
        response = frontend.serve(some_user)
        assert response.service_time_s > 0
        assert response.candidate_count > 0
        rated = profiles.get(some_user).rated_items()
        assert all(item not in rated for item in response.recommendations)

    def test_backend_quality_reasonable(self, ml1_small):
        from repro.metrics.view_similarity import (
            ideal_view_similarity,
            view_similarity_of_table,
        )

        profiles = fill_profiles(ml1_small)
        backend = OfflineCRecBackend(profiles, k=5, iterations=5, seed=1)
        backend.recompute()
        liked = profiles.liked_sets()
        achieved = view_similarity_of_table(liked, backend.knn_table.as_dict())
        ideal = ideal_view_similarity(liked, k=5)
        assert achieved >= 0.7 * ideal


class TestMahoutRunners:
    def test_all_four_backends_agree_on_scale(self, ml1_small):
        from repro.eval.common import liked_sets_of_trace

        liked = liked_sets_of_trace(ml1_small)
        _, exhaustive = run_exhaustive(liked, k=5)
        _, crec = run_crec_backend(liked, k=5, iterations=2)
        _, single = run_mahout_single(liked, k=5)
        _, clustered = run_clus_mahout(liked, k=5)
        for result in (exhaustive, crec, single, clustered):
            assert result.wall_clock_s > 0
        # The two Mahout deployments do identical work; the two-node
        # cluster must model at least some speedup on the compute side
        # while paying more for shuffle -- either way both terminate
        # with full tables.
        assert single.cpu_seconds == pytest.approx(
            clustered.cpu_seconds, rel=0.8
        )


class TestP2PRecommender:
    def build(self, trace, seed=0) -> P2PRecommender:
        p2p = P2PRecommender(k=4, r=5, seed=seed)
        for rating in trace:
            p2p.record_rating(rating.user, rating.item, rating.value)
        return p2p

    def test_nodes_join_on_first_rating(self, toy_trace):
        p2p = self.build(toy_trace)
        assert p2p.num_nodes == 4

    def test_cycles_generate_traffic(self, ml1_small):
        p2p = self.build(ml1_small)
        p2p.run_cycles(3)
        report = p2p.traffic_report(trace_duration_s=3 * 60.0)
        assert report.measured_total_bytes > 0
        assert report.bytes_per_node_per_cycle > 0

    def test_traffic_reset_and_extrapolation(self, ml1_small):
        p2p = self.build(ml1_small)
        p2p.run_cycles(2)
        p2p.reset_traffic()
        p2p.run_cycles(4)
        report = p2p.traffic_report(trace_duration_s=600.0)
        assert report.measured_cycles == 4
        assert report.target_cycles == 10
        assert report.extrapolated_total_bytes_per_node == pytest.approx(
            report.bytes_per_node_per_cycle * 10
        )

    def test_local_recommendation(self, toy_trace):
        p2p = self.build(toy_trace)
        p2p.run_cycles(8)
        recs = p2p.recommend(0, n=3)
        rated = p2p.profiles[0].rated_items()
        assert all(item not in rated for item in recs)

    def test_clustering_finds_similar_peers(self, ml1_small):
        from repro.metrics.view_similarity import (
            ideal_view_similarity,
            view_similarity_of_table,
        )

        p2p = self.build(ml1_small, seed=2)
        p2p.run_cycles(12)
        liked = {uid: p2p.profiles[uid].liked_items() for uid in p2p.profiles}
        achieved = view_similarity_of_table(liked, p2p.knn_table())
        ideal = ideal_view_similarity(liked, k=4)
        assert achieved >= 0.6 * ideal
