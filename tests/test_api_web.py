"""Tests for the web API facade and the real HTTP deployment."""

from __future__ import annotations

import pytest

from repro.core.api import WebApi, parse_neighbors_params
from repro.core.client import HyRecWidget
from repro.core.config import HyRecConfig
from repro.core.jobs import PersonalizationJob
from repro.core.server import HyRecServer
from repro.messages import decode_json, encode_json, gzip_compress
from repro.web import HttpWidgetClient, HyRecHttpServer


@pytest.fixture()
def api(loaded_server) -> WebApi:
    return WebApi(loaded_server)


class TestWebApi:
    def test_online_returns_gzipped_job(self, api):
        wire = api.online(0)
        assert wire[:2] == b"\x1f\x8b"  # gzip magic
        job = PersonalizationJob.from_payload(api.decode(wire))
        assert job.k == api.server.config.k

    def test_online_uncompressed_config(self, toy_trace):
        server = HyRecServer(HyRecConfig(k=2, compress=False), seed=1)
        for rating in toy_trace:
            server.record_rating(rating.user, rating.item, rating.value)
        wire = WebApi(server).online(0)
        assert wire[:2] != b"\x1f\x8b"
        decode_json(wire)  # plain JSON parses directly

    def test_neighbors_query_params(self, api):
        job = PersonalizationJob.from_payload(api.decode(api.online(0)))
        result = HyRecWidget().process_job(job)
        params = {
            f"id{i}": token for i, token in enumerate(result.neighbor_tokens)
        }
        response = api.decode(api.neighbors(0, params))
        assert response["ok"] is True
        assert api.server.knn_table.neighbors_of(0)

    def test_neighbors_from_json_body(self, api):
        job = PersonalizationJob.from_payload(api.decode(api.online(1)))
        result = HyRecWidget().process_job(job)
        body = encode_json(result.to_payload())
        response = api.decode(api.neighbors_from_body(1, body))
        assert response["ok"] is True

    def test_neighbors_from_gzipped_body(self, api):
        job = PersonalizationJob.from_payload(api.decode(api.online(2)))
        result = HyRecWidget().process_job(job)
        body = gzip_compress(encode_json(result.to_payload()))
        response = api.decode(api.neighbors_from_body(2, body))
        assert response["ok"] is True

    def test_parse_neighbors_params_ordering(self):
        params = {"id1": "b", "id0": "a", "rec0": "7", "uid": "3"}
        result = parse_neighbors_params("me", params)
        assert result.neighbor_tokens == ["a", "b"]
        assert result.recommended_items == ["7"]
        assert result.user_token == "me"

    def test_parse_neighbors_stops_at_gap(self):
        params = {"id0": "a", "id2": "c"}
        result = parse_neighbors_params("me", params)
        assert result.neighbor_tokens == ["a"]


class TestHttpDeployment:
    @pytest.fixture()
    def running(self, loaded_server):
        http_server = HyRecHttpServer(loaded_server)
        http_server.start()
        yield http_server
        http_server.stop()

    def test_full_round_trip_over_http(self, running):
        client = HttpWidgetClient(running.url)
        outcome = client.round_trip(0)
        assert outcome.result.neighbor_tokens
        assert running.hyrec.knn_table.neighbors_of(0)
        assert outcome.response_bytes > 0

    def test_round_trips_improve_neighborhoods(self, running):
        client = HttpWidgetClient(running.url)
        for _ in range(3):
            for uid in (0, 1, 2, 3):
                client.round_trip(uid)
        # Users 0/1 share a profile; gossip over HTTP must find it.
        assert 1 in running.hyrec.knn_table.neighbors_of(0)

    def test_stats_endpoint(self, running):
        client = HttpWidgetClient(running.url)
        client.round_trip(0)
        stats = client.stats()
        assert stats["users"] == 4
        assert stats["online_requests"] >= 1

    def test_unknown_path_404(self, running):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{running.url}/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_bad_uid_400(self, running):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{running.url}/online/?uid=notanumber", timeout=5
            )
        assert excinfo.value.code == 400

    def test_concurrent_clients(self, running):
        import threading

        errors: list[Exception] = []

        def worker(uid: int) -> None:
            try:
                client = HttpWidgetClient(running.url)
                for _ in range(3):
                    client.round_trip(uid)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(uid,)) for uid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert running.hyrec.stats.online_requests >= 12
