"""Tests for trace schema, generators, binarization and splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    DIGG,
    ML1,
    binarize_trace,
    binarize_value,
    dataset_names,
    generate_digg,
    generate_movielens,
    load_dataset,
    time_split,
    user_means,
)
from repro.datasets.schema import Rating, Trace
from repro.sim.clock import DAY


class TestTraceSchema:
    def test_ratings_sorted_by_time(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=5.0, user=1, item=1, value=1.0),
                Rating(timestamp=1.0, user=2, item=2, value=1.0),
            ],
        )
        assert [r.timestamp for r in trace] == [1.0, 5.0]

    def test_users_items_properties(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=1.0, user=1, item=10, value=1.0),
                Rating(timestamp=2.0, user=2, item=10, value=0.0),
            ],
        )
        assert trace.users == {1, 2}
        assert trace.items == {10}

    def test_stats_row(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=1, value=1.0),
                Rating(timestamp=DAY, user=1, item=2, value=1.0),
            ],
        )
        stats = trace.stats()
        assert stats.num_users == 1
        assert stats.num_ratings == 2
        assert stats.avg_ratings_per_user == 2.0
        assert stats.duration_days == pytest.approx(1.0)

    def test_ratings_by_user_preserves_order(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=2.0, user=1, item=2, value=1.0),
                Rating(timestamp=1.0, user=1, item=1, value=1.0),
            ],
        )
        grouped = trace.ratings_by_user()
        assert [r.item for r in grouped[1]] == [1, 2]

    def test_empty_trace(self):
        trace = Trace("empty", [])
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.stats().avg_ratings_per_user == 0.0


class TestBinarize:
    def test_above_mean_is_liked(self):
        assert binarize_value(5.0, 3.0) == 1.0

    def test_at_mean_is_disliked(self):
        """Strictly 'above the average' (Section 5.1)."""
        assert binarize_value(3.0, 3.0) == 0.0

    def test_user_means(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=1, value=2.0),
                Rating(timestamp=1.0, user=1, item=2, value=4.0),
            ],
        )
        assert user_means(trace) == {1: 3.0}

    def test_binarize_trace_values(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=1, value=2.0),
                Rating(timestamp=1.0, user=1, item=2, value=4.0),
                Rating(timestamp=2.0, user=1, item=3, value=3.0),
            ],
        )
        binary = binarize_trace(trace)
        values = {r.item: r.value for r in binary}
        assert values == {1: 0.0, 2: 1.0, 3: 0.0}

    def test_already_binary_passthrough(self):
        trace = Trace(
            "t",
            [
                Rating(timestamp=0.0, user=1, item=1, value=1.0),
                Rating(timestamp=1.0, user=1, item=2, value=0.0),
            ],
        )
        binary = binarize_trace(trace)
        assert {r.value for r in binary} == {0.0, 1.0}
        assert binary[0].value == 1.0  # not re-binarized against mean 0.5

    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=5.0), min_size=2, max_size=20
        )
    )
    def test_binarization_splits_around_mean(self, values):
        if set(values) <= {0.0, 1.0}:
            return  # already-binary traces pass through untouched
        trace = Trace(
            "t",
            [
                Rating(timestamp=float(i), user=0, item=i, value=v)
                for i, v in enumerate(values)
            ],
        )
        binary = binarize_trace(trace)
        mean = sum(values) / len(values)
        for raw, projected in zip(sorted(trace), sorted(binary)):
            assert projected.value == (1.0 if raw.value > mean else 0.0)


class TestGenerators:
    @settings(deadline=None, max_examples=5)
    @given(seed=st.integers(0, 100))
    def test_movielens_deterministic(self, seed):
        spec = ML1.scaled(0.02)
        a = generate_movielens(spec, seed=seed)
        b = generate_movielens(spec, seed=seed)
        assert a.ratings == b.ratings

    def test_movielens_counts_match_spec(self):
        spec = ML1.scaled(0.05)
        trace = generate_movielens(spec, seed=0)
        stats = trace.stats()
        assert stats.num_users == spec.num_users
        assert stats.num_ratings == pytest.approx(spec.num_ratings, rel=0.02)
        assert stats.num_items <= spec.num_items

    def test_movielens_values_are_stars(self):
        trace = generate_movielens(ML1.scaled(0.02), seed=1)
        assert {r.value for r in trace} <= {1.0, 2.0, 3.0, 4.0, 5.0}

    def test_movielens_within_duration(self):
        spec = ML1.scaled(0.02)
        trace = generate_movielens(spec, seed=1)
        assert trace.ratings[-1].timestamp <= spec.duration_days * DAY

    def test_movielens_no_duplicate_user_item(self):
        trace = generate_movielens(ML1.scaled(0.02), seed=2)
        pairs = [(r.user, r.item) for r in trace]
        assert len(pairs) == len(set(pairs))

    def test_digg_counts_and_small_profiles(self):
        spec = DIGG.scaled(0.004)
        trace = generate_digg(spec, seed=0)
        stats = trace.stats()
        assert stats.num_users == spec.num_users
        assert 8 <= stats.avg_ratings_per_user <= 20  # paper: 13

    def test_digg_mostly_likes(self):
        trace = generate_digg(DIGG.scaled(0.004), seed=0)
        likes = sum(1 for r in trace if r.value == 1.0)
        assert likes / len(trace) > 0.6

    def test_digg_deterministic(self):
        spec = DIGG.scaled(0.003)
        assert generate_digg(spec, seed=5).ratings == generate_digg(spec, seed=5).ratings

    def test_scaled_requires_positive(self):
        with pytest.raises(ValueError):
            ML1.scaled(0.0)
        with pytest.raises(ValueError):
            DIGG.scaled(-1.0)

    def test_scaled_identity(self):
        assert ML1.scaled(1.0) is ML1


class TestSplit:
    def test_split_sizes(self, ml1_small):
        train, test = time_split(ml1_small)
        assert len(train) == int(len(ml1_small) * 0.8)
        assert len(train) + len(test) == len(ml1_small)

    def test_split_respects_time(self, ml1_small):
        train, test = time_split(ml1_small)
        assert train.ratings[-1].timestamp <= test.ratings[0].timestamp

    def test_invalid_fraction(self, ml1_small):
        with pytest.raises(ValueError):
            time_split(ml1_small, train_fraction=1.0)
        with pytest.raises(ValueError):
            time_split(ml1_small, train_fraction=0.0)


class TestLoader:
    def test_registry_has_table2_names(self):
        assert dataset_names() == ["ML1", "ML2", "ML3", "Digg"]

    def test_load_binarized_by_default(self):
        trace = load_dataset("ML1", scale=0.02, seed=0)
        assert {r.value for r in trace} <= {0.0, 1.0}

    def test_load_raw(self):
        trace = load_dataset("ML1", scale=0.02, seed=0, binarize=False)
        assert max(r.value for r in trace) > 1.0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("Netflix")
