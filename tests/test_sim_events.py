"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None, "c")
        queue.push(1.0, lambda: None, "a")
        queue.push(2.0, lambda: None, "b")
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, "first")
        queue.push(1.0, lambda: None, "second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, "keep")
        drop = queue.push(0.5, lambda: None, "drop")
        queue.cancel(drop)
        assert queue.pop() is keep

    def test_len_accounts_for_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert len(queue) == 1
        queue.cancel(event)
        assert len(queue) == 0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None


class TestSimulator:
    def test_runs_actions_in_order(self):
        sim = Simulator()
        fired: list[str] = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]
        assert sim.clock.now == 5.0

    def test_at_absolute_time(self):
        sim = Simulator()
        fired: list[float] = []
        sim.at(3.0, lambda: fired.append(sim.clock.now))
        sim.run()
        assert fired == [3.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.clock.advance_to(10.0)
        with pytest.raises(ValueError, match="past"):
            sim.at(5.0, lambda: None)
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-1.0, lambda: None)

    def test_actions_can_schedule_more(self):
        sim = Simulator()
        fired: list[float] = []

        def chain() -> None:
            fired.append(sim.clock.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_every_repeats_until(self):
        sim = Simulator()
        fired: list[float] = []
        sim.every(2.0, lambda: fired.append(sim.clock.now), until=7.0)
        sim.run()
        assert fired == [2.0, 4.0, 6.0]

    def test_every_with_start(self):
        sim = Simulator()
        fired: list[float] = []
        sim.every(5.0, lambda: fired.append(sim.clock.now), start=1.0, until=11.0)
        sim.run()
        assert fired == [1.0, 6.0, 11.0]

    def test_every_invalid_period(self):
        with pytest.raises(ValueError, match="period"):
            Simulator().every(0.0, lambda: None)

    def test_run_until_stops_at_time(self):
        sim = Simulator()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.at(t, lambda t=t: fired.append(t))
        count = sim.run_until(2.5)
        assert count == 2
        assert fired == [1.0, 2.0]
        assert sim.clock.now == 2.5

    def test_run_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.events_processed == 2

    def test_deterministic_tie_order(self):
        sim = Simulator()
        fired: list[str] = []
        sim.at(1.0, lambda: fired.append("a"))
        sim.at(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]
