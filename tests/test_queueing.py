"""Tests for the queueing model, including closed-form validation."""

from __future__ import annotations

import pytest

from repro.sim.queueing import QueueingServer, RequestStats


class TestRequestStats:
    def test_empty_stats(self):
        stats = RequestStats()
        assert stats.mean == 0.0
        assert stats.p95 == 0.0
        assert stats.throughput == 0.0

    def test_mean_and_p95(self):
        stats = RequestStats(response_times=[1.0, 2.0, 3.0, 4.0], completed=4)
        assert stats.mean == pytest.approx(2.5)
        assert stats.p95 == 4.0

    def test_p95_nearest_rank_small_sample(self):
        # Regression: with 20 samples the p95 is the 19th value, not
        # the maximum (the old ``int(0.95 * n)`` index hit 19, one
        # past the nearest rank).
        stats = RequestStats(
            response_times=[float(v) for v in range(1, 21)], completed=20
        )
        assert stats.p95 == 19.0


class TestClosedLoop:
    def test_single_client_sees_service_time(self):
        server = QueueingServer(workers=4, service_time_fn=lambda _: 0.010)
        stats = server.run_closed_loop(concurrency=1, total_requests=50)
        assert stats.completed == 50
        assert stats.mean == pytest.approx(0.010)

    def test_below_saturation_no_queueing(self):
        """C <= W: every request is served immediately."""
        server = QueueingServer(workers=8, service_time_fn=lambda _: 0.010)
        stats = server.run_closed_loop(concurrency=8, total_requests=80)
        assert stats.mean == pytest.approx(0.010)

    def test_saturated_matches_closed_form(self):
        """C > W: steady-state response approximates C * s / W."""
        service = 0.010
        workers = 4
        concurrency = 40
        server = QueueingServer(workers=workers, service_time_fn=lambda _: service)
        stats = server.run_closed_loop(
            concurrency=concurrency, total_requests=800
        )
        expected = concurrency * service / workers
        assert stats.mean == pytest.approx(expected, rel=0.15)

    def test_throughput_capped_by_workers(self):
        service = 0.010
        workers = 4
        server = QueueingServer(workers=workers, service_time_fn=lambda _: service)
        stats = server.run_closed_loop(concurrency=100, total_requests=500)
        assert stats.throughput == pytest.approx(workers / service, rel=0.1)

    def test_completes_exactly_total_requests(self):
        server = QueueingServer(workers=2, service_time_fn=lambda _: 0.001)
        stats = server.run_closed_loop(concurrency=7, total_requests=33)
        assert stats.completed == 33
        assert len(stats.response_times) == 33

    def test_response_time_grows_with_concurrency(self):
        server = QueueingServer(workers=4, service_time_fn=lambda _: 0.010)
        low = server.run_closed_loop(concurrency=2, total_requests=100)
        high = server.run_closed_loop(concurrency=64, total_requests=100)
        assert high.mean > low.mean * 5

    def test_variable_service_times(self):
        times = [0.001, 0.005, 0.020]
        server = QueueingServer(
            workers=1, service_time_fn=lambda seq: times[seq % 3]
        )
        stats = server.run_closed_loop(concurrency=1, total_requests=30)
        assert stats.mean == pytest.approx(sum(times) / 3, rel=0.01)

    def test_negative_service_time_rejected(self):
        server = QueueingServer(workers=1, service_time_fn=lambda _: -1.0)
        with pytest.raises(ValueError, match="negative"):
            server.run_closed_loop(concurrency=1, total_requests=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueingServer(workers=0, service_time_fn=lambda _: 1.0)
        server = QueueingServer(workers=1, service_time_fn=lambda _: 1.0)
        with pytest.raises(ValueError):
            server.run_closed_loop(concurrency=0, total_requests=1)
        with pytest.raises(ValueError):
            server.run_closed_loop(concurrency=1, total_requests=0)
