"""Tests for the non-binary (weighted) similarity extension."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.client import HyRecWidget, make_job
from repro.core.similarity import cosine
from repro.core.weighted import (
    get_payload_metric,
    payload_cosine,
    payload_pearson,
)

payloads = st.dictionaries(
    keys=st.integers(0, 30).map(str),
    values=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    max_size=15,
)


class TestPayloadCosine:
    def test_identical_profiles_score_one(self):
        profile = {"1": 5.0, "2": 3.0}
        assert payload_cosine(profile, profile) == pytest.approx(1.0)

    def test_disjoint_profiles_score_zero(self):
        assert payload_cosine({"1": 5.0}, {"2": 5.0}) == 0.0

    def test_weights_matter(self):
        user = {"1": 5.0, "2": 5.0}
        # Candidate A agrees on the 5-star item; B on a 1-star one.
        strong = {"1": 5.0, "9": 1.0}
        weak = {"1": 1.0, "9": 5.0}
        assert payload_cosine(user, strong) > payload_cosine(user, weak)

    def test_reduces_to_set_cosine_on_binary(self):
        a = {"1": 1.0, "2": 1.0, "3": 0.0}
        b = {"2": 1.0, "4": 1.0}
        liked_a = frozenset(k for k, v in a.items() if v == 1.0)
        liked_b = frozenset(k for k, v in b.items() if v == 1.0)
        # Dislikes are zero-weight, so they vanish from the math.
        assert payload_cosine(a, b) == pytest.approx(cosine(liked_a, liked_b))

    def test_empty_profiles(self):
        assert payload_cosine({}, {"1": 1.0}) == 0.0

    @given(a=payloads, b=payloads)
    def test_symmetric_and_bounded(self, a, b):
        forward = payload_cosine(a, b)
        assert forward == pytest.approx(payload_cosine(b, a))
        assert 0.0 <= forward <= 1.0 + 1e-9


class TestPayloadPearson:
    def test_perfect_agreement(self):
        a = {"1": 1.0, "2": 3.0, "3": 5.0}
        b = {"1": 2.0, "2": 3.0, "3": 4.0}  # same ordering, linear
        assert payload_pearson(a, b) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = {"1": 1.0, "2": 5.0}
        b = {"1": 5.0, "2": 1.0}
        assert payload_pearson(a, b) == pytest.approx(0.0)  # r=-1 -> 0

    def test_single_corated_item_scores_zero(self):
        assert payload_pearson({"1": 5.0, "2": 1.0}, {"1": 5.0, "9": 3.0}) == 0.0

    def test_zero_variance_scores_zero(self):
        a = {"1": 3.0, "2": 3.0}
        b = {"1": 1.0, "2": 5.0}
        assert payload_pearson(a, b) == 0.0

    @given(a=payloads, b=payloads)
    def test_symmetric_and_bounded(self, a, b):
        forward = payload_pearson(a, b)
        assert forward == pytest.approx(payload_pearson(b, a))
        assert 0.0 <= forward <= 1.0 + 1e-9


class TestRegistry:
    def test_lookup(self):
        assert get_payload_metric("payload-cosine") is payload_cosine
        assert get_payload_metric("payload-pearson") is payload_pearson

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_payload_metric("manhattan")


class TestWeightedWidget:
    def test_payload_hook_changes_ranking(self):
        """Binary cosine ties the candidates; weights break the tie."""
        job = make_job(
            user_token="u",
            user_profile={"1": 1.0, "2": 1.0},
            candidates={
                # Same liked sets -> identical binary cosine...
                "strong": {"1": 1.0, "2": 1.0},
                "weak": {"1": 1.0, "2": 1.0},
            },
            k=2,
            r=1,
        )
        # ...but give 'weak' diluting extra mass via a modified copy.
        job = make_job(
            user_token="u",
            user_profile={"1": 5.0 / 5, "2": 5.0 / 5},
            candidates={
                "strong": {"1": 1.0, "2": 1.0},
                "weak": {"1": 1.0, "2": 1.0, "9": 1.0},
            },
            k=2,
            r=1,
        )
        widget = HyRecWidget(payload_similarity=payload_cosine)
        result = widget.process_job(job)
        assert result.neighbor_tokens[0] == "strong"

    def test_binary_jobs_still_work(self):
        job = make_job(
            user_token="u",
            user_profile={"1": 1.0},
            candidates={"a": {"1": 1.0}, "b": {"2": 1.0}},
            k=1,
            r=1,
        )
        widget = HyRecWidget(payload_similarity=payload_cosine)
        result = widget.process_job(job)
        assert result.neighbor_tokens == ["a"]

    def test_recommendations_unaffected_by_hook(self):
        job = make_job(
            user_token="u",
            user_profile={"1": 1.0},
            candidates={"a": {"1": 1.0, "7": 1.0}},
            k=1,
            r=3,
        )
        plain = HyRecWidget().process_job(job)
        weighted = HyRecWidget(payload_similarity=payload_cosine).process_job(job)
        assert plain.recommended_items == weighted.recommended_items
