"""Elastic topology: live grow/shrink, hot-bucket splits, chaos parity.

The acceptance bar for the elastic cluster: *no topology change may
ever change a result or lose a write*.  Three layers of evidence:

* A hypothesis-driven **stateful chaos machine** interleaving shard
  joins, retires, bucket splits, SIGKILLs, profile writes, and
  personalization requests against an unsharded vectorized oracle in
  RNG lockstep -- asserting bit-for-bit result parity, byte-exact
  wire metering, and zero lost writes after every step.
* A deterministic **2 -> 4 -> 8 grow and 8 -> 4 shrink** under live
  request waves (the ISSUE's acceptance scenario): every wave's
  outcomes equal the oracle's, zero requests dropped.
* Unit tests for the **watermark autoscaler** and **hot-bucket
  split** control loop (grow/shrink stepping, histogram re-tiling
  across splits, the viral-bucket trigger) and the new config knobs.
"""

from __future__ import annotations

import os
import random
import signal
import threading

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from parity import assert_scores_bitwise, random_trace, replay_digest
from repro.cluster import ClusterCoordinator, ShardRebalancer
from repro.cluster.placement import bucket_of_id
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable

USERS = 24
ITEMS = 40
MAX_SHARDS = 5
MAX_BUCKETS = 512  # chaos cap: keeps per-join migration loops short


def _sharded_config() -> HyRecConfig:
    return HyRecConfig(
        k=4,
        r=5,
        engine="sharded",
        num_shards=2,
        executor="process",
        ipc_write_batch=4,  # small: exercise buffering + eager flush
        worker_timeout=10.0,
        max_respawns=50,  # chaos kills the same shard repeatedly
        retry_backoff=0.01,
    )


def _oracle_config() -> HyRecConfig:
    return HyRecConfig(k=4, r=5, engine="vectorized")


def _outcome_digest(outcome) -> tuple:
    result = outcome.result
    return (
        result.neighbor_tokens,
        result.neighbor_scores,
        result.recommended_items,
        tuple(outcome.recommendations),
    )


def _wire_digest(system: HyRecSystem) -> dict:
    return {
        channel: system.server.meter.reading(channel)
        for channel in ("server->client", "client->server")
    }


class ElasticChaosMachine(RuleBasedStateMachine):
    """Random op interleavings; the oracle must never notice.

    Both systems share a seed, so their samplers run in RNG lockstep:
    identical write/request sequences produce identical outcomes on
    the unsharded vectorized engine and the process-executor cluster
    -- no matter what the topology does in between.
    """

    @initialize()
    def build(self) -> None:
        self.sharded = HyRecSystem(_sharded_config(), seed=71)
        self.oracle = HyRecSystem(_oracle_config(), seed=71)
        self.cluster = self.sharded.server.cluster
        assert self.cluster is not None
        self.executor = self.cluster.executor
        self.written: set[int] = set()

    def teardown(self) -> None:
        self.sharded.close()
        self.oracle.close()

    def _recover_kills(self) -> None:
        """Operator step before topology changes: surface dead workers.

        A SIGKILL is invisible until the next exchange; the stats
        round trip both detects it and runs the budgeted recovery, so
        the topology op that follows starts from a healthy fleet.
        """
        self.cluster.shard_stats()

    # --- chaos ops ----------------------------------------------------------

    @rule(
        user=st.integers(0, USERS - 1),
        item=st.integers(0, ITEMS - 1),
        like=st.booleans(),
    )
    def write(self, user: int, item: int, like: bool) -> None:
        value = 1.0 if like else 0.0
        self.sharded.record_rating(user, item, value)
        self.oracle.record_rating(user, item, value)
        self.written.add(user)

    @rule(user=st.integers(0, USERS - 1))
    def request(self, user: int) -> None:
        got = self.sharded.request(user)
        expected = self.oracle.request(user)
        assert _outcome_digest(got) == _outcome_digest(expected)
        assert_scores_bitwise(
            expected.result.neighbor_scores, got.result.neighbor_scores
        )
        assert _wire_digest(self.sharded) == _wire_digest(self.oracle)

    @rule(users=st.lists(st.integers(0, USERS - 1), min_size=1, max_size=4))
    def request_wave(self, users: list[int]) -> None:
        got = self.sharded.request_batch(users)
        expected = self.oracle.request_batch(users)
        assert list(map(_outcome_digest, got)) == list(
            map(_outcome_digest, expected)
        )
        assert _wire_digest(self.sharded) == _wire_digest(self.oracle)

    @precondition(lambda self: self.cluster.num_shards < MAX_SHARDS)
    @rule()
    def add_shard(self) -> None:
        self._recover_kills()
        before = self.cluster.num_shards
        self.cluster.add_shard()
        assert self.cluster.num_shards == before + 1

    @precondition(lambda self: self.cluster.num_shards >= 2)
    @rule()
    def remove_shard(self) -> None:
        self._recover_kills()
        before = self.cluster.num_shards
        self.cluster.remove_shard()
        assert self.cluster.num_shards == before - 1

    @precondition(
        lambda self: self.cluster.placement.num_buckets * 2 <= MAX_BUCKETS
    )
    @rule()
    def split_buckets(self) -> None:
        self._recover_kills()
        before = self.cluster.placement.num_buckets
        version = self.cluster.split_buckets(2)
        assert self.cluster.placement.num_buckets == before * 2
        assert self.cluster.placement.version == version

    @rule(pick=st.integers(0, 7))
    def kill_worker(self, pick: int) -> None:
        shard = pick % self.cluster.num_shards
        proc = self.executor._procs[shard]
        if proc is None or not proc.is_alive():
            return
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()

    # --- invariants ---------------------------------------------------------

    @invariant()
    def zero_lost_writes(self) -> None:
        """Every write survives every topology change, by serving it.

        Counters cannot witness this (rows materialize lazily on
        reads; retires collapse replayed histories), so the check goes
        through the read path: after any step, the stats round trip
        flushes and leaves no write stuck in a buffer, and a probe
        request for a written user -- whose score depends on the liked
        sets of every sampled candidate -- must still serve the
        oracle's exact answer.  The probe advances both systems in
        lockstep, so it never perturbs parity itself.
        """
        stats = self.cluster.shard_stats()
        assert all(stat.alive for stat in stats)
        assert all(
            not users for users, _, _ in self.executor._write_buffers
        )
        assert len(self.sharded.server.profiles) == len(
            self.oracle.server.profiles
        )
        if self.written:
            probe = min(self.written)
            got = self.sharded.request(probe)
            expected = self.oracle.request(probe)
            assert _outcome_digest(got) == _outcome_digest(expected)

    @invariant()
    def meters_in_lockstep(self) -> None:
        assert _wire_digest(self.sharded) == _wire_digest(self.oracle)


ElasticChaosMachine.TestCase.settings = settings(
    max_examples=6,
    stateful_step_count=25,
    deadline=None,
    print_blob=True,
)
TestElasticChaos = ElasticChaosMachine.TestCase


class TestLiveGrowShrink:
    """The ISSUE acceptance scenario: 2 -> 4 -> 8 grow, 8 -> 4 shrink."""

    def test_grow_and_shrink_under_live_waves(self):
        sharded = HyRecSystem(_sharded_config(), seed=13)
        oracle = HyRecSystem(_oracle_config(), seed=13)
        try:
            cluster = sharded.server.cluster
            assert cluster is not None
            rng = random.Random(99)
            trace = random_trace(
                rng, users=USERS, items=ITEMS, n=150, name="elastic-seed"
            )
            for rating in trace.ratings:
                sharded.record_rating(rating.user, rating.item, rating.value)
                oracle.record_rating(rating.user, rating.item, rating.value)

            def wave() -> None:
                users = [rng.randrange(USERS) for _ in range(6)]
                got = sharded.request_batch(users)
                expected = oracle.request_batch(users)
                assert list(map(_outcome_digest, got)) == list(
                    map(_outcome_digest, expected)
                )
                for g, e in zip(got, expected):
                    assert not g.result.degraded
                    assert_scores_bitwise(
                        e.result.neighbor_scores, g.result.neighbor_scores
                    )

            wave()
            for target in (3, 4, 5, 6, 7, 8):  # 2 -> 4 -> 8, serving between
                cluster.add_shard()
                assert cluster.num_shards == target
                user = rng.randrange(USERS)
                sharded.record_rating(user, 1, 1.0)
                oracle.record_rating(user, 1, 1.0)
                wave()
            for target in (7, 6, 5, 4):  # 8 -> 4
                cluster.remove_shard()
                assert cluster.num_shards == target
                wave()
            stats = sharded.server.stats
            assert stats.dropped_requests == 0
            assert stats.shards_added == 6
            assert stats.shards_removed == 4
            assert len(stats.shards) == 4
            assert _wire_digest(sharded) == _wire_digest(oracle)
        finally:
            sharded.close()
            oracle.close()

    def test_full_replay_digest_with_elastic_topology(self):
        # End-to-end: a trace replayed on the oracle vs the same trace
        # replayed while the topology churns (grow + split + shrink via
        # a listener) -- full digests (results, KNN, wire) equal.
        trace = random_trace(
            random.Random(3), users=20, items=50, n=200, name="elastic-churn"
        )
        oracle = HyRecSystem(_oracle_config(), seed=29)
        expected = replay_digest(oracle, trace)
        oracle.close()

        sharded = HyRecSystem(_sharded_config(), seed=29)
        cluster = sharded.server.cluster
        assert cluster is not None
        actions = iter(
            [
                lambda: cluster.add_shard(),
                lambda: cluster.split_buckets(2),
                lambda: cluster.add_shard(),
                lambda: cluster.remove_shard(),
            ]
        )
        state = {"writes": 0}

        def churn(user_id, item, value, previous) -> None:
            state["writes"] += 1
            if state["writes"] % 40 == 0:
                action = next(actions, None)
                if action is not None:
                    action()

        sharded.server.profiles.add_listener(churn)
        try:
            got = replay_digest(sharded, trace)
        finally:
            sharded.server.profiles.remove_listener(churn)
        stats = sharded.server.stats
        sharded.close()
        assert got == expected
        assert stats.shards_added == 2
        assert stats.shards_removed == 1
        assert stats.bucket_splits == 1
        assert stats.dropped_requests == 0


class TestAutoscaler:
    def test_grows_past_high_water_one_step_per_pass(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 1)
        rebalancer = ShardRebalancer(
            coordinator,
            threshold=1.5,
            max_shards=3,
            high_water=10.0,
            low_water=1.0,
        )
        try:
            for uid in range(40):
                table.record(uid, 1, 1.0)
            rebalancer.run_once()
            assert coordinator.num_shards == 2  # one step, not a leap
            for uid in range(40):
                table.record(uid, 2, 1.0)
            rebalancer.run_once()
            assert coordinator.num_shards == 3
            for uid in range(40):
                table.record(uid, 3, 1.0)
            rebalancer.run_once()
            assert coordinator.num_shards == 3  # capped at max_shards
            assert [kind for kind, _ in rebalancer.scale_actions] == [
                "grow",
                "grow",
            ]
        finally:
            rebalancer.close()

    def test_shrinks_below_low_water_to_the_floor(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 3)
        rebalancer = ShardRebalancer(
            coordinator,
            threshold=1.5,
            min_shards=2,
            high_water=1000.0,
            low_water=5.0,
            max_shards=3,
        )
        try:
            table.record(1, 1, 1.0)  # well under low water
            rebalancer.run_once()
            assert coordinator.num_shards == 2
            rebalancer.run_once()
            assert coordinator.num_shards == 2  # floored at min_shards
            assert rebalancer.scale_actions == [("shrink", 2)]
        finally:
            rebalancer.close()

    def test_window_resets_between_passes(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 1)
        rebalancer = ShardRebalancer(
            coordinator, max_shards=4, high_water=50.0
        )
        try:
            for i in range(30):
                table.record(i, 1, 1.0)
            rebalancer.run_once()  # 30 < 50: hold, but consume window
            assert coordinator.num_shards == 1
            for i in range(30):
                table.record(i, 2, 1.0)
            rebalancer.run_once()  # another 30 < 50: no carry-over
            assert coordinator.num_shards == 1
        finally:
            rebalancer.close()

    def test_hot_bucket_split_unblocks_the_rebalance(self):
        # All load in ONE bucket on one shard: no move can improve the
        # spread (moving the bucket just swaps donor and receiver), so
        # the rebalancer used to be stuck.  With split_ratio set it
        # splits the bucket space -- cohabitants land in different
        # sub-buckets -- and the follow-up proposal moves load.
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 2)
        rebalancer = ShardRebalancer(
            coordinator, threshold=1.5, max_moves=4, split_ratio=0.5
        )
        try:
            placement = coordinator.placement
            hot_bucket = int(placement.buckets_owned_by(0)[0])
            cohabitants = []
            uid = 0
            while len(cohabitants) < 6:
                if placement.bucket_of(uid) == hot_bucket:
                    cohabitants.append(uid)
                uid += 1
            for user in cohabitants:
                for item in range(10):
                    table.record(user, item, 1.0)
            assert rebalancer.propose() is None  # stuck without a split
            before_buckets = placement.num_buckets
            moves = rebalancer.rebalance()
            assert rebalancer.splits_applied == 1
            assert placement.num_buckets == before_buckets * 2
            assert moves, "the split must unblock a move"
            assert rebalancer.imbalance() < 60.0
        finally:
            rebalancer.close()

    def test_histogram_retile_preserves_shard_loads(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 2)
        rebalancer = ShardRebalancer(coordinator, threshold=2.0)
        try:
            for uid in range(50):
                table.record(uid, 1, 1.0)
            before = rebalancer.shard_loads().tolist()
            coordinator.split_buckets(2)
            after = rebalancer.shard_loads().tolist()
            assert after == before  # the split moved no data
            # Fresh writes land at the fine resolution, still exact.
            table.record(1, 2, 1.0)
            shard = coordinator.placement.shard_of(1)
            assert rebalancer.shard_loads()[shard] == before[shard] + 1
        finally:
            rebalancer.close()

    def test_split_keeps_every_owner(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 3)
        placement = coordinator.placement
        owners_before = {
            uid: placement.shard_of(uid) for uid in range(2000)
        }
        coordinator.split_buckets(4)
        assert all(
            placement.shard_of(uid) == shard
            for uid, shard in owners_before.items()
        )

    def test_timer_thread_runs_the_loop(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 1)
        rebalancer = ShardRebalancer(
            coordinator,
            autoscale_interval=0.02,
            max_shards=2,
            high_water=5.0,
        )
        try:
            assert rebalancer._thread is not None
            for uid in range(40):
                table.record(uid, 1, 1.0)
            grown = threading.Event()

            def poll():
                import time

                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if coordinator.num_shards == 2:
                        grown.set()
                        return
                    time.sleep(0.01)

            poller = threading.Thread(target=poll)
            poller.start()
            poller.join()
            assert grown.is_set(), "timer pass must have grown the fleet"
        finally:
            rebalancer.close()
        assert rebalancer._thread is None  # close joins the loop

    def test_rebalancer_knob_validation(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 2)
        with pytest.raises(ValueError, match="autoscale_interval"):
            ShardRebalancer(coordinator, autoscale_interval=-1.0)
        with pytest.raises(ValueError, match="min_shards"):
            ShardRebalancer(coordinator, min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            ShardRebalancer(coordinator, max_shards=-1)
        with pytest.raises(ValueError, match="undercut"):
            ShardRebalancer(coordinator, min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="low_water"):
            ShardRebalancer(coordinator, high_water=1.0, low_water=2.0)
        with pytest.raises(ValueError, match="split_ratio"):
            ShardRebalancer(coordinator, split_ratio=1.5)

    def test_config_knob_validation(self):
        with pytest.raises(ValueError, match="autoscale_interval"):
            HyRecConfig(autoscale_interval=-0.5)
        with pytest.raises(ValueError, match="autoscale_min_shards"):
            HyRecConfig(autoscale_min_shards=0)
        with pytest.raises(ValueError, match="autoscale_max_shards"):
            HyRecConfig(autoscale_max_shards=-1)
        with pytest.raises(ValueError, match="undercut"):
            HyRecConfig(autoscale_min_shards=3, autoscale_max_shards=2)
        with pytest.raises(ValueError, match="autoscale_low_water"):
            HyRecConfig(autoscale_high_water=1.0, autoscale_low_water=2.0)
        with pytest.raises(ValueError, match="split_hot_bucket_ratio"):
            HyRecConfig(split_hot_bucket_ratio=2.0)

    def test_server_wires_the_autoscaler_knobs(self):
        system = HyRecSystem(
            HyRecConfig(
                engine="sharded",
                num_shards=2,
                autoscale_min_shards=2,
                autoscale_max_shards=4,
                autoscale_high_water=100.0,
                autoscale_low_water=1.0,
                split_hot_bucket_ratio=0.8,
            ),
            seed=0,
        )
        try:
            rebalancer = system.server.rebalancer
            assert rebalancer is not None
            assert rebalancer.min_shards == 2
            assert rebalancer.max_shards == 4
            assert rebalancer.high_water == 100.0
            assert rebalancer.low_water == 1.0
            assert rebalancer.split_ratio == 0.8
        finally:
            system.close()


class TestPlacementElasticity:
    def test_rendezvous_share_is_what_a_boot_time_shard_owns(self):
        from repro.cluster import PlacementMap

        grown = PlacementMap(3, 256)
        booted = PlacementMap(4, 256)
        grown.add_shard()
        share = grown.rendezvous_share(3)
        np.testing.assert_array_equal(share, booted.buckets_owned_by(3))

    def test_join_and_retire_never_bump_the_epoch(self):
        from repro.cluster import PlacementMap

        placement = PlacementMap(2)
        shard = placement.add_shard()
        assert placement.version == 0  # the join owns nothing
        assert placement.buckets_owned_by(shard).size == 0
        placement.remove_last_shard()
        assert placement.version == 0  # the retire owned nothing

    def test_retire_refuses_an_undrained_shard(self):
        from repro.cluster import PlacementMap

        placement = PlacementMap(2)
        with pytest.raises(ValueError, match="drain"):
            placement.remove_last_shard()

    def test_split_is_modularly_stable(self):
        # mix(uid) % kN === mix(uid) % N (mod N): tiling the owner
        # table across the refined bucket space keeps every user's
        # bucket congruent to its old one, hence its owner.
        from repro.cluster import PlacementMap

        placement = PlacementMap(4)
        old_n = placement.num_buckets
        before = {uid: placement.bucket_of(uid) for uid in range(500)}
        placement.split_buckets(2)
        for uid, bucket in before.items():
            assert placement.bucket_of(uid) % old_n == bucket
        assert bucket_of_id(12345, old_n * 2) % old_n == bucket_of_id(
            12345, old_n
        )
