"""The observability layer: registry, tracing, events, exposition.

Four contracts under test:

* **Registry semantics** -- instruments are identity-cached and
  thread-safe, snapshots are non-destructive and mergeable across
  registries (how worker-process samples aggregate), and a disabled
  registry costs nothing and exposes nothing.
* **Trace propagation** -- one request through the sharded engine is
  one trace: a ``request`` root whose descendants cover
  schedule/scatter/score/merge/respond, with the per-shard score
  spans measured *inside the worker processes* under
  ``executor="process"`` and stitched back through the transport.
  With tracing off, zero trace content crosses any boundary.
* **Stats accumulation** -- ``server.stats`` reads are
  non-destructive (double polls can't double-count) and
  ``reset_stats`` rebases deltas without touching the raw counters
  behavior runs on.
* **Exposition** -- ``GET /metrics`` serves Prometheus text with the
  per-shard series, and parity holds bit-for-bit with every
  observability knob on.
"""

from __future__ import annotations

import random
import threading
import urllib.request

import numpy as np
import pytest

from repro.cluster.transport import Hello, JobSlices, MetricsRequest
from repro.cluster.worker import ShardHost
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets.schema import Rating, Trace
from repro.obs import Observability
from repro.obs.exposition import (
    metrics_text,
    render_prometheus,
    sample_from_wire,
    sample_to_wire_parts,
)
from repro.obs.registry import MetricsRegistry, merge_samples
from repro.obs.tracing import Tracer

SHARD_COUNTS = (1, 2, 4, 8)


def _random_trace(seed: int, users: int = 20, items: int = 60, n: int = 120) -> Trace:
    rng = random.Random(seed)
    now = 0.0
    ratings = []
    for _ in range(n):
        now += rng.random() * 40
        ratings.append(
            Rating(
                timestamp=now,
                user=rng.randrange(users),
                item=rng.randrange(items),
                value=float(rng.random() < 0.75),
            )
        )
    return Trace("obs", ratings)


# --- registry ---------------------------------------------------------------


class TestRegistry:
    def test_instruments_are_identity_cached(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", shard=0)
        assert a is registry.counter("x_total", shard=0)
        assert a is not registry.counter("x_total", shard=1)

    def test_kind_conflicts_are_loud(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError, match="another kind"):
            registry.gauge("thing")

    def test_snapshot_is_non_destructive(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(3)
        registry.histogram("lat_seconds").observe(0.01)
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert [s.value for s in first if s.kind == "counter"] == [3.0]

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits_total")
        counter.inc(100)
        registry.histogram("lat").observe(1.0)
        registry.add_collector(lambda: [_ for _ in ()])
        assert registry.snapshot() == []

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.counter("jobs_total", shard=1).inc(n)
            h = reg.histogram("score_seconds", buckets=(0.1, 1.0), shard=1)
            h.observe(0.05)
            h.observe(5.0)
        merged = merge_samples(a.snapshot(), b.snapshot())
        by_name = {s.name: s for s in merged}
        assert by_name["jobs_total"].value == 7.0
        hist = by_name["score_seconds"]
        assert hist.count == 4 and hist.bucket_counts == (2, 0, 2)

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended_total")
        hist = registry.histogram("contended_seconds")

        def work():
            for _ in range(2000):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 16_000
        assert hist.count == 16_000

    def test_wire_sample_round_trip_preserves_samples(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", shard=3).inc(9)
        h = registry.histogram("score_seconds", buckets=(0.5, 1.0), shard=3)
        h.observe(0.2)
        h.observe(2.0)

        class Wire:
            def __init__(self, kind, name, labels, values, bounds):
                self.kind = kind
                self.name = name
                self.labels = labels
                self.values = np.asarray(values, dtype=np.float64)
                self.bounds = np.asarray(bounds, dtype=np.float64)

        for sample in registry.snapshot():
            back = sample_from_wire(Wire(*sample_to_wire_parts(sample)))
            assert back == sample


# --- tracer ------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_parent_implicitly(self):
        tracer = Tracer(enabled=True)
        with tracer.begin("request") as root:
            with tracer.span("score") as score:
                with tracer.span("merge"):
                    pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["request"].parent_id == 0
        assert spans["score"].parent_id == spans["request"].span_id
        assert spans["merge"].parent_id == spans["score"].span_id
        assert len(tracer.trace_ids()) == 1
        assert root.ctx[0] == score.ctx[0]

    def test_disabled_tracer_hands_out_null_spans(self):
        tracer = Tracer(enabled=False)
        span = tracer.begin("request")
        with tracer.activate(span):
            assert tracer.current is None
            with tracer.span("child"):
                pass
        span.finish()
        assert tracer.spans == []

    def test_ring_is_bounded(self):
        tracer = Tracer(enabled=True, capacity=4)
        for i in range(10):
            tracer.begin(f"s{i}").finish()
        assert [s.name for s in tracer.spans] == ["s6", "s7", "s8", "s9"]

    def test_chrome_trace_export(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.begin("request", user=7):
            with tracer.span("score"):
                pass
        path = tmp_path / "trace.json"
        assert tracer.export(str(path)) == 2
        import json

        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} == {"X"}
        root = next(e for e in events if e["name"] == "request")
        assert root["args"]["user"] == "7"
        assert root["args"]["parent_id"] == 0


# --- server stats accumulation ----------------------------------------------


class TestServerStatsReset:
    def test_double_poll_cannot_double_count(self):
        with HyRecSystem(HyRecConfig(engine="vectorized"), seed=3) as system:
            system.replay(_random_trace(11, n=40))
            first = system.server.stats
            second = system.server.stats
            assert first == second

    def test_reset_rebases_deltas_not_counters(self):
        config = HyRecConfig(engine="vectorized", reshuffle_every=10)
        with HyRecSystem(config, seed=3) as system:
            system.replay(_random_trace(12, n=25))
            assert system.server.stats.online_requests == 25
            system.server.reset_stats()
            assert system.server.stats.online_requests == 0
            # The raw counter keeps accumulating: the reshuffle cadence
            # (online_requests % reshuffle_every) must not restart.
            reshuffles_before = system.server._reshuffles
            system.replay(_random_trace(13, n=5))
            assert system.server.stats.online_requests == 5
            assert system.server._online_requests == 30
            assert system.server._reshuffles == reshuffles_before + 1
            # /metrics keeps serving the raw monotone counter.
            text = metrics_text(system.server)
            assert "hyrec_online_requests_total 30" in text


# --- cross-process trace propagation ----------------------------------------


class TestTracePropagation:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_one_stitched_trace_per_request(self, num_shards):
        import os

        config = HyRecConfig(
            engine="sharded",
            num_shards=num_shards,
            executor="process",
            tracing=True,
        )
        with HyRecSystem(config, seed=7) as system:
            system.replay(_random_trace(21, n=60))
            tracer = system.server.obs.tracer
            tracer.reset()
            system.request(3, now=1e6)
            traces = tracer.traces()
            assert len(traces) == 1, "one request must be one trace"
            (spans,) = traces.values()
            by_name = {}
            for span in spans:
                by_name.setdefault(span.name, []).append(span)
            # The coordinator-side lifecycle is fully covered.
            for name in ("request", "scatter", "score", "merge", "respond"):
                assert name in by_name, f"missing {name} span"
            root = by_name["request"][0]
            assert root.parent_id == 0
            # Every span belongs to the root's trace and every parent
            # id resolves within the trace (correct parenting).
            ids = {s.span_id for s in spans}
            for span in spans:
                assert span.trace_id == root.trace_id
                if span.parent_id:
                    assert span.parent_id in ids
            # Worker-side score spans: measured in other processes,
            # parented under the coordinator's score span.
            score_id = by_name["score"][0].span_id
            worker_spans = [
                s for s in spans if s.name.startswith("shard") and ":score" in s.name
            ]
            assert worker_spans, "no worker score spans were stitched in"
            for span in worker_spans:
                assert span.pid != os.getpid()
                assert span.parent_id == score_id

    def test_tracing_off_yields_zero_spans(self):
        config = HyRecConfig(
            engine="sharded", num_shards=2, executor="process", tracing=False
        )
        with HyRecSystem(config, seed=7) as system:
            system.replay(_random_trace(22, n=30))
            system.request(1, now=1e6)
            assert system.server.obs.tracer.spans == []

    def test_untraced_job_slices_produce_no_span_frames(self):
        # Worker side of the neutrality contract: a frame with no
        # trace stamp must come back with an empty span tuple even on
        # a metrics-enabled host.
        host = ShardHost(0)
        host.handle(Hello(shard=0, num_shards=1, flags=1))
        reply = host.handle(
            JobSlices(batch_id=1, truncate=True, slices=(), map_version=0)
        )
        assert reply.spans == ()


# --- worker metrics over the wire -------------------------------------------


class TestWorkerMetricsSnapshot:
    def test_host_registry_gated_by_hello_flag(self):
        host = ShardHost(1)
        assert not host.registry.enabled  # bare hosts carry inert instruments
        host.handle(Hello(shard=1, num_shards=2, flags=1))
        assert host.registry.enabled
        host.handle(
            JobSlices(batch_id=0, truncate=True, slices=(), map_version=0)
        )
        reply = host.handle(MetricsRequest())
        samples = {(s.name, s.labels): s for s in reply.samples}
        assert samples[("hyrec_shard_batches_total", 'shard=1')].values[0] == 1.0

    def test_cluster_snapshot_merges_worker_series(self):
        config = HyRecConfig(
            engine="sharded", num_shards=4, executor="process"
        )
        with HyRecSystem(config, seed=9) as system:
            system.replay(_random_trace(31, n=50))
            samples = {
                (s.name, s.labels): s
                for s in system.server.cluster.metrics_samples()
            }
            total_jobs = sum(
                sample.value
                for (name, _), sample in samples.items()
                if name == "hyrec_shard_jobs_total"
            )
            assert total_jobs > 0
            # Writes were routed to workers and counted there.
            assert any(
                name == "hyrec_shard_writes_total" and sample.value > 0
                for (name, _), sample in samples.items()
            )

    def test_in_process_shard_series_match_process_series(self):
        # The same replay must book the same per-shard job counts
        # whether the shards are in-process or worker processes --
        # the counters describe the workload, not the executor.
        totals = {}
        for executor in ("serial", "process"):
            config = HyRecConfig(
                engine="sharded", num_shards=2, executor=executor
            )
            with HyRecSystem(config, seed=13) as system:
                system.replay(_random_trace(41, n=40))
                if executor == "serial":
                    samples = system.server.obs.registry.snapshot()
                else:
                    samples = system.server.cluster.metrics_samples()
                totals[executor] = {
                    s.labels: s.value
                    for s in samples
                    if s.name == "hyrec_shard_jobs_total"
                }
        assert totals["serial"] == totals["process"]


# --- events & slow requests --------------------------------------------------


class TestEvents:
    def test_rolling_restart_and_recovery_events(self):
        config = HyRecConfig(
            engine="sharded", num_shards=2, executor="process"
        )
        with HyRecSystem(config, seed=5) as system:
            system.replay(_random_trace(51, n=30))
            system.server.cluster.executor.rolling_restart()
            events = system.server.obs.events
            assert events.counts().get("rolling_restart") == 1
            (record,) = events.records("rolling_restart")
            assert record.get("workers") == "2"

    def test_migration_event_recorded(self):
        config = HyRecConfig(engine="sharded", num_shards=2)
        with HyRecSystem(config, seed=5) as system:
            system.replay(_random_trace(52, n=30))
            cluster = system.server.cluster
            bucket = cluster.placement.buckets_owned_by(0)[0]
            cluster.migrate_bucket(bucket, 1)
            events = system.server.obs.events
            assert events.counts().get("bucket_migration") == 1
            (record,) = events.records("bucket_migration")
            assert record.get("target") == "1"

    def test_slow_request_logged_without_tracing(self):
        # Threshold of ~0: every request is "slow".  Independent of
        # the tracer, which stays off here.
        config = HyRecConfig(engine="vectorized", slow_request_ms=1e-6)
        with HyRecSystem(config, seed=5) as system:
            system.replay(_random_trace(53, n=5))
            events = system.server.obs.events
            assert events.counts().get("slow_request") == 5
            assert system.server.obs.tracer.spans == []


# --- exposition --------------------------------------------------------------


class TestMetricsEndpoint:
    def test_prometheus_rendering_shape(self):
        registry = MetricsRegistry()
        registry.counter("hyrec_jobs_total").inc(4)
        h = registry.histogram("hyrec_lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE hyrec_jobs_total counter" in text
        assert "hyrec_jobs_total 4" in text
        # Cumulative buckets, +Inf included, _sum/_count alongside.
        assert 'hyrec_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'hyrec_lat_seconds_bucket{le="1"} 2' in text
        assert 'hyrec_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "hyrec_lat_seconds_count 3" in text

    def test_metrics_endpoint_serves_shard_series(self):
        from repro.core.server import HyRecServer
        from repro.web.server import HyRecHttpServer

        config = HyRecConfig(engine="sharded", num_shards=2, executor="serial")
        server = HyRecServer(config, seed=2)
        for rating in _random_trace(61, n=40):
            server.record_rating(
                rating.user, rating.item, rating.value, rating.timestamp
            )
        http_server = HyRecHttpServer(server)
        try:
            port = http_server.start()
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/online/?uid=1"
            ).read()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics"
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                text = response.read().decode("utf-8")
            assert "# TYPE hyrec_online_requests_total counter" in text
            assert "hyrec_online_requests_total 1" in text
            assert 'hyrec_wire_bytes_total{channel="server->client"}' in text
        finally:
            http_server.stop()
            server.close()

    def test_metrics_endpoint_reaches_worker_processes(self):
        from repro.core.server import HyRecServer
        from repro.web.server import HyRecHttpServer

        config = HyRecConfig(
            engine="sharded", num_shards=2, executor="process"
        )
        server = HyRecServer(config, seed=2)
        for rating in _random_trace(62, n=40):
            server.record_rating(
                rating.user, rating.item, rating.value, rating.timestamp
            )
        http_server = HyRecHttpServer(server)
        try:
            port = http_server.start()
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/online/?uid=1"
            ).read()
            text = (
                urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics")
                .read()
                .decode("utf-8")
            )
            # Series sampled inside the worker processes show up.
            assert "# TYPE hyrec_shard_writes_total counter" in text
            assert 'hyrec_shard_writes_total{shard="0"}' in text
            assert 'hyrec_shard_writes_total{shard="1"}' in text
        finally:
            http_server.stop()
            server.close()

    def test_disabled_metrics_serve_empty_exposition(self):
        config = HyRecConfig(engine="vectorized", metrics_enabled=False)
        with HyRecSystem(config, seed=2) as system:
            system.replay(_random_trace(63, n=10))
            assert metrics_text(system.server) == ""


# --- parity with every knob on ----------------------------------------------


class TestObservabilityIsExactnessNeutral:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_full_obs_replay_matches_bare_vectorized(self, executor):
        trace = _random_trace(71, users=25, items=70, n=150)
        digests = []
        for config in (
            HyRecConfig(engine="vectorized", metrics_enabled=False),
            HyRecConfig(
                engine="sharded",
                num_shards=4,
                executor=executor,
                metrics_enabled=True,
                tracing=True,
                slow_request_ms=0.001,
            ),
        ):
            with HyRecSystem(config, seed=17) as system:
                outcomes: list = []
                system.replay(trace, on_request=outcomes.append)
                digests.append(
                    {
                        "results": [
                            (
                                o.result.neighbor_tokens,
                                o.result.neighbor_scores,
                                o.result.recommended_items,
                                o.recommendations,
                            )
                            for o in outcomes
                        ],
                        "knn": system.server.knn_table.as_dict(),
                        "wire": {
                            channel: system.server.meter.reading(channel)
                            for channel in (
                                "server->client",
                                "client->server",
                            )
                        },
                    }
                )
        assert digests[0] == digests[1], (
            "observability must never change results or wire bytes"
        )


class TestObservabilityCli:
    def test_dump_runs_end_to_end(self, capsys, tmp_path):
        from repro.obs.dump import main

        trace_out = tmp_path / "trace.json"
        code = main(
            [
                "--dataset",
                "ML1",
                "--scale",
                "0.002",
                "--executor",
                "serial",
                "--shards",
                "2",
                "--requests",
                "4",
                "--tracing",
                "--trace-out",
                str(trace_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE hyrec_requests_total counter" in out
        assert trace_out.exists()
