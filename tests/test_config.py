"""Tests for HyRec configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import HyRecConfig


class TestHyRecConfig:
    def test_defaults_match_paper(self):
        config = HyRecConfig()
        assert config.k == 10
        assert config.r == 10
        assert config.metric == "cosine"
        assert config.compress is True
        assert config.include_two_hop is True
        assert config.num_random is None  # defaults to k in the sampler

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HyRecConfig(k=0)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            HyRecConfig(r=0)

    def test_invalid_reshuffle(self):
        with pytest.raises(ValueError):
            HyRecConfig(reshuffle_every=-1)

    def test_unknown_metric_fails_fast(self):
        with pytest.raises(KeyError):
            HyRecConfig(metric="pearson")

    def test_frozen(self):
        config = HyRecConfig()
        with pytest.raises(AttributeError):
            config.k = 20  # type: ignore[misc]
