"""Tests for HyRec configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import HyRecConfig


class TestHyRecConfig:
    def test_defaults_match_paper(self):
        config = HyRecConfig()
        assert config.k == 10
        assert config.r == 10
        assert config.metric == "cosine"
        assert config.compress is True
        assert config.include_two_hop is True
        assert config.num_random is None  # defaults to k in the sampler

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HyRecConfig(k=0)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            HyRecConfig(r=0)

    def test_invalid_reshuffle(self):
        with pytest.raises(ValueError):
            HyRecConfig(reshuffle_every=-1)

    def test_unknown_metric_fails_fast(self):
        with pytest.raises(KeyError):
            HyRecConfig(metric="pearson")

    def test_default_engine_is_vectorized(self):
        assert HyRecConfig().engine == "vectorized"

    def test_unknown_engine_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown engine"):
            HyRecConfig(engine="gpu")

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            HyRecConfig(engine="sharded", num_shards=0)
        with pytest.raises(ValueError, match="num_shards"):
            HyRecConfig(num_shards=-3)  # validated on every engine

    def test_unknown_executor_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown executor"):
            HyRecConfig(engine="sharded", executor="gpu")

    def test_invalid_batch_window(self):
        with pytest.raises(ValueError, match="batch_window"):
            HyRecConfig(engine="sharded", batch_window=0)

    def test_invalid_ipc_write_batch(self):
        with pytest.raises(ValueError, match="ipc_write_batch"):
            HyRecConfig(engine="sharded", ipc_write_batch=0)

    def test_valid_sharded_knobs(self):
        config = HyRecConfig(
            engine="sharded", num_shards=8, executor="thread", batch_window=32
        )
        assert config.num_shards == 8
        assert config.executor == "thread"
        assert config.batch_window == 32

    def test_valid_process_executor_knobs(self):
        config = HyRecConfig(
            engine="sharded",
            executor="process",
            truncate_partials=False,
            ipc_write_batch=256,
        )
        assert config.executor == "process"
        assert config.truncate_partials is False
        assert config.ipc_write_batch == 256

    def test_frozen(self):
        config = HyRecConfig()
        with pytest.raises(AttributeError):
            config.k = 20  # type: ignore[misc]
