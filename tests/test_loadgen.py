"""Tests for the ab-style load generator."""

from __future__ import annotations

import pytest

from repro.sim.loadgen import LoadGenerator, LoadResult


class TestLoadGenerator:
    def test_single_run_fields(self):
        generator = LoadGenerator(lambda _: 0.005, workers=4)
        result = generator.run(requests=100, concurrency=2)
        assert isinstance(result, LoadResult)
        assert result.requests == 100
        assert result.concurrency == 2
        assert result.mean_response_s == pytest.approx(0.005)
        assert result.mean_response_ms == pytest.approx(5.0)
        assert result.throughput_rps > 0

    def test_sweep_returns_one_point_per_level(self):
        generator = LoadGenerator(lambda _: 0.002, workers=4)
        results = generator.sweep_concurrency([1, 4, 16], requests_per_point=50)
        assert [r.concurrency for r in results] == [1, 4, 16]

    def test_hockey_stick_shape(self):
        """Response time is flat below saturation, linear above."""
        generator = LoadGenerator(lambda _: 0.010, workers=8)
        results = generator.sweep_concurrency([1, 8, 64], requests_per_point=200)
        flat_ratio = results[1].mean_response_s / results[0].mean_response_s
        steep_ratio = results[2].mean_response_s / results[1].mean_response_s
        assert flat_ratio < 1.5
        assert steep_ratio > 4.0

    def test_p95_at_least_mean_for_mixed_load(self):
        times = [0.001, 0.010]
        generator = LoadGenerator(lambda seq: times[seq % 2], workers=1)
        result = generator.run(requests=100, concurrency=1)
        assert result.p95_response_s >= result.mean_response_s
