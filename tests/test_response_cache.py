"""Cache correctness: LRU, TTL, and write-driven invalidation.

The response cache's contract (``docs/http.md``):

* LRU within ``capacity``; recently *used* entries survive.
* No entry is served more than ``ttl`` seconds after it was rendered.
* A write for user ``u`` -- delivered through the server's user-write
  listener feed -- immediately evicts ``u``'s entry, and (the subtle
  part) a response rendered *before* a write can never be stored
  *after* it: stores are tagged with the invalidation version read
  before rendering and discarded on mismatch.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.cache import ResponseCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def put(cache: ResponseCache, uid: int, body: bytes) -> bool:
    """Store through the version protocol, with no interleaved write."""
    return cache.put(uid, body, cache.version(uid))


class TestLookup:
    def test_miss_then_hit(self, clock):
        cache = ResponseCache(capacity=4, ttl=10.0, clock=clock)
        assert cache.get(1) is None
        assert put(cache, 1, b"one")
        assert cache.get(1) == b"one"
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)

    def test_disabled_without_ttl(self, clock):
        cache = ResponseCache(capacity=4, ttl=0.0, clock=clock)
        assert not cache.enabled
        assert not put(cache, 1, b"one")
        assert cache.get(1) is None
        # A disabled cache books nothing: the front door with
        # cache_ttl=0 must look exactly like no cache at all.
        assert cache.stats.misses == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ResponseCache(capacity=0)
        with pytest.raises(ValueError):
            ResponseCache(ttl=-1.0)


class TestLru:
    def test_capacity_evicts_least_recently_used(self, clock):
        cache = ResponseCache(capacity=2, ttl=10.0, clock=clock)
        put(cache, 1, b"one")
        put(cache, 2, b"two")
        assert cache.get(1) == b"one"  # 1 is now most recently used
        put(cache, 3, b"three")  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) == b"one"
        assert cache.get(3) == b"three"
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self, clock):
        cache = ResponseCache(capacity=2, ttl=10.0, clock=clock)
        put(cache, 1, b"one")
        put(cache, 2, b"two")
        put(cache, 1, b"one again")  # refresh, not insert
        put(cache, 3, b"three")  # evicts 2, the stale one
        assert cache.get(1) == b"one again"
        assert cache.get(2) is None


class TestTtl:
    def test_entry_expires_after_ttl(self, clock):
        cache = ResponseCache(capacity=4, ttl=5.0, clock=clock)
        put(cache, 1, b"one")
        clock.advance(4.99)
        assert cache.get(1) == b"one"
        clock.advance(0.02)
        assert cache.get(1) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_hit_does_not_extend_freshness(self, clock):
        # LRU recency must not be confused with freshness: a popular
        # entry still expires ttl seconds after it was *rendered*.
        cache = ResponseCache(capacity=4, ttl=5.0, clock=clock)
        put(cache, 1, b"one")
        for _ in range(10):
            clock.advance(0.49)
            assert cache.get(1) == b"one"
        clock.advance(0.2)  # 5.1s after the put
        assert cache.get(1) is None


class TestInvalidation:
    def test_invalidate_evicts(self, clock):
        cache = ResponseCache(capacity=4, ttl=10.0, clock=clock)
        put(cache, 1, b"one")
        cache.invalidate(1)
        assert cache.get(1) is None
        assert cache.stats.invalidations == 1

    def test_stale_version_put_is_discarded(self, clock):
        # The render-vs-write race: version read, then a write lands,
        # then the (now stale) render tries to store.
        cache = ResponseCache(capacity=4, ttl=10.0, clock=clock)
        version = cache.version(1)
        cache.invalidate(1)
        assert not cache.put(1, b"stale render", version)
        assert cache.get(1) is None

    def test_version_survives_eviction(self, clock):
        # Capacity-evicting an entry must not reset the version, or a
        # pre-invalidation render could sneak back in afterwards.
        cache = ResponseCache(capacity=1, ttl=10.0, clock=clock)
        version = cache.version(1)
        cache.invalidate(1)
        put(cache, 2, b"two")  # 1 holds no entry at all now
        assert not cache.put(1, b"stale render", version)

    def test_server_write_feed_evicts(self, loaded_server):
        # End-to-end wiring: both server write paths (ratings and
        # /neighbors KNN updates) must reach a subscribed cache.
        cache = ResponseCache(capacity=8, ttl=60.0)
        loaded_server.add_user_write_listener(cache.invalidate)
        put(cache, 0, b"job for 0")
        put(cache, 1, b"job for 1")
        loaded_server.record_rating(0, 99, 1.0)
        assert cache.get(0) is None
        assert cache.get(1) == b"job for 1"

        from repro.core.api import WebApi
        from repro.core.client import HyRecWidget
        from repro.core.jobs import PersonalizationJob

        api = WebApi(loaded_server)

        job = PersonalizationJob.from_payload(api.decode(api.online(1)))
        result = HyRecWidget().process_job(job)
        params = {
            f"id{i}": token for i, token in enumerate(result.neighbor_tokens)
        }
        put(cache, 1, b"job for 1 again")
        api.neighbors(1, params)
        assert cache.get(1) is None
        loaded_server.remove_user_write_listener(cache.invalidate)


class TestProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("put"), st.integers(0, 3), st.binary(max_size=4)),
                st.tuples(st.just("stale_put"), st.integers(0, 3), st.binary(max_size=4)),
                st.tuples(st.just("invalidate"), st.integers(0, 3), st.just(b"")),
                st.tuples(st.just("get"), st.integers(0, 3), st.just(b"")),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_dict_model(self, ops):
        """With ample capacity and TTL, the cache is a dict with
        invalidation -- and a stale-versioned put is a no-op."""
        clock = FakeClock()
        cache = ResponseCache(capacity=64, ttl=1e9, clock=clock)
        model: dict[int, bytes] = {}
        for op, uid, payload in ops:
            clock.advance(1.0)
            if op == "put":
                cache.put(uid, payload, cache.version(uid))
                model[uid] = payload
            elif op == "stale_put":
                # A write between the version read and the store.
                version = cache.version(uid)
                cache.invalidate(uid)
                model.pop(uid, None)
                assert not cache.put(uid, payload, version)
            elif op == "invalidate":
                cache.invalidate(uid)
                model.pop(uid, None)
            else:
                assert cache.get(uid) == model.get(uid)

    def test_concurrent_gets_never_resurrect_invalidated_entries(self):
        """Readers racing a writer: after an invalidation *returns*, no
        read may see an entry stored under an older version."""
        cache = ResponseCache(capacity=16, ttl=1e9)
        uid = 7
        completed = [0]  # invalidation versions fully applied
        failures: list[str] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                floor = completed[0]
                body = cache.get(uid)
                if body is not None:
                    stored_version = int(body)
                    if stored_version < floor:
                        failures.append(
                            f"read version {stored_version} after "
                            f"invalidation {floor} completed"
                        )
                # Simulate the front door's render-and-store cycle.
                version = cache.version(uid)
                cache.put(uid, str(version).encode(), version)

        def writer() -> None:
            for _ in range(300):
                cache.invalidate(uid)
                completed[0] = cache.version(uid)
            stop.set()

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=30)
        stop.set()
        for thread in readers:
            thread.join(timeout=10)
        assert not failures, failures[:3]
