"""Tests for the EC2 cost model, validated against Table 3."""

from __future__ import annotations

import pytest

from repro.sim.clock import HOUR
from repro.sim.cost import (
    BackendDeployment,
    CostModel,
    Ec2Pricing,
    PAPER_CREC_WALLTIME_S,
    PAPER_PRICING,
)


class TestBilling:
    def test_fractional_billing_default(self):
        model = CostModel()
        assert model.billed_seconds(90.0) == 90.0

    def test_hourly_billing_rounds_up(self):
        model = CostModel(Ec2Pricing(billing_granularity_s=3600.0))
        assert model.billed_seconds(1.0) == 3600.0
        assert model.billed_seconds(3601.0) == 7200.0

    def test_negative_wallclock_rejected(self):
        with pytest.raises(ValueError):
            CostModel().billed_seconds(-1.0)


class TestBackendChoice:
    def test_cheap_job_uses_on_demand(self):
        model = CostModel()
        deployment = model.backend_deployment(100.0, 48 * HOUR)
        assert deployment.kind == "on-demand"
        assert isinstance(deployment, BackendDeployment)

    def test_expensive_job_switches_to_reserved(self):
        model = CostModel()
        # 10 hours per run, every 12h -> on-demand would cost ~$4,380.
        deployment = model.backend_deployment(10 * HOUR, 12 * HOUR)
        assert deployment.kind == "reserved"
        assert deployment.annual_cost == PAPER_PRICING.backend_reserved_per_year

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            CostModel().backend_deployment(1.0, 0.0)


class TestCostReduction:
    def test_hyrec_cost_is_frontend_only(self):
        model = CostModel()
        assert model.hyrec_annual_cost() == 681.0

    def test_reduction_monotone_in_frequency(self):
        """More frequent KNN -> bigger savings (Table 3 rows)."""
        model = CostModel()
        walltime = PAPER_CREC_WALLTIME_S["ML1"]
        r48 = model.cost_reduction(walltime, 48 * HOUR)
        r24 = model.cost_reduction(walltime, 24 * HOUR)
        r12 = model.cost_reduction(walltime, 12 * HOUR)
        assert r48 < r24 < r12

    def test_reduction_capped_by_reserved(self):
        model = CostModel()
        cap = model.max_cost_reduction()
        extreme = model.cost_reduction(100 * HOUR, 1 * HOUR)
        assert extreme == pytest.approx(cap)
        assert cap == pytest.approx(0.492, abs=0.001)


class TestPaperTable3:
    """The model must reproduce the printed Table 3 cells."""

    @pytest.mark.parametrize(
        "dataset,period_h,expected",
        [
            ("ML1", 48, 0.086),
            ("ML1", 24, 0.158),
            ("ML1", 12, 0.274),
            ("ML2", 48, 0.310),
            ("ML2", 24, 0.476),
            ("ML2", 12, 0.492),
            ("ML3", 48, 0.492),
            ("ML3", 24, 0.492),
            ("ML3", 12, 0.492),
            ("Digg", 12, 0.025),
            ("Digg", 6, 0.050),
        ],
    )
    def test_cell(self, dataset, period_h, expected):
        model = CostModel()
        walltime = PAPER_CREC_WALLTIME_S[dataset]
        reduction = model.cost_reduction(walltime, period_h * HOUR)
        assert reduction == pytest.approx(expected, abs=0.006)


class TestPricingValidation:
    def test_rejects_nonpositive_prices(self):
        with pytest.raises(ValueError):
            Ec2Pricing(frontend_reserved_per_year=0)
        with pytest.raises(ValueError):
            Ec2Pricing(backend_on_demand_per_hour=-1)
        with pytest.raises(ValueError):
            Ec2Pricing(backend_reserved_per_year=0)
        with pytest.raises(ValueError):
            Ec2Pricing(billing_granularity_s=0)
