"""Integration tests for the end-to-end HyRec system."""

from __future__ import annotations

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets.schema import Rating, Trace
from repro.sim.clock import DAY, WEEK


class TestRoundTrip:
    def test_request_returns_outcome(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2, r=3), seed=1)
        for rating in toy_trace:
            system.record_rating(rating.user, rating.item, rating.value)
        outcome = system.request(0, now=10.0)
        assert outcome.user_id == 0
        assert outcome.timestamp == 10.0
        assert outcome.job.user_token == outcome.result.user_token

    def test_similar_users_become_neighbors(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2, r=3), seed=1)
        for rating in toy_trace:
            system.record_rating(rating.user, rating.item, rating.value)
        # A few iterations so sampling finds everyone in a 4-user world.
        for _ in range(3):
            for uid in (0, 1, 2, 3):
                system.request(uid)
        assert 1 in system.server.knn_table.neighbors_of(0)
        assert 0 in system.server.knn_table.neighbors_of(1)
        assert 3 in system.server.knn_table.neighbors_of(2)

    def test_recommendations_exclude_rated(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2, r=5), seed=1)
        for rating in toy_trace:
            system.record_rating(rating.user, rating.item, rating.value)
        for _ in range(3):
            for uid in (0, 1, 2, 3):
                system.request(uid)
        recs = system.recommend(0)
        rated = system.server.profiles.get(0).rated_items()
        assert all(item not in rated for item in recs)


class TestReplay:
    def test_replay_serves_one_request_per_rating(self, ml1_small):
        system = HyRecSystem(HyRecConfig(k=5), seed=1)
        served = system.replay(ml1_small)
        assert served == len(ml1_small)

    def test_replay_observer_called(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2), seed=1)
        seen: list[int] = []
        system.replay(toy_trace, on_request=lambda o: seen.append(o.user_id))
        assert seen == [r.user for r in toy_trace]

    def test_replay_timestamps_flow_through(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2), seed=1)
        stamps: list[float] = []
        system.replay(toy_trace, on_request=lambda o: stamps.append(o.timestamp))
        assert stamps == [r.timestamp for r in toy_trace]


class TestInterRequestBound:
    def _spread_trace(self) -> Trace:
        """Two users: one rates on day 0 only, one keeps rating."""
        ratings = [Rating(timestamp=0.0, user=0, item=1, value=1.0)]
        for day in range(0, 30):
            ratings.append(
                Rating(timestamp=day * DAY, user=1, item=day + 10, value=1.0)
            )
        return Trace("spread", ratings)

    def test_bound_triggers_synthetic_requests(self):
        trace = self._spread_trace()
        with_bound = HyRecSystem(HyRecConfig(k=2), seed=1)
        served_with = with_bound.replay(trace, inter_request_bound=WEEK)
        without = HyRecSystem(HyRecConfig(k=2), seed=1)
        served_without = without.replay(trace)
        # User 0 is inactive after day 0; the bound must add requests.
        assert served_with > served_without

    def test_synthetic_requests_only_for_inactive(self):
        trace = self._spread_trace()
        system = HyRecSystem(HyRecConfig(k=2), seed=1)
        users: list[int] = []
        system.replay(
            trace,
            on_request=lambda o: users.append(o.user_id),
            inter_request_bound=WEEK,
        )
        # About 4 synthetic requests (30 days / 7) for user 0.
        synthetic = users.count(0) - 1
        assert 2 <= synthetic <= 5


class TestDeterminism:
    def test_same_seed_same_tables(self, ml1_small):
        a = HyRecSystem(HyRecConfig(k=5), seed=42)
        b = HyRecSystem(HyRecConfig(k=5), seed=42)
        a.replay(ml1_small)
        b.replay(ml1_small)
        assert a.server.knn_table.as_dict() == b.server.knn_table.as_dict()
        assert (
            a.server.meter.total_wire_bytes == b.server.meter.total_wire_bytes
        )

    def test_different_seed_different_sampling(self, ml1_small):
        a = HyRecSystem(HyRecConfig(k=5), seed=1)
        b = HyRecSystem(HyRecConfig(k=5), seed=2)
        a.replay(ml1_small)
        b.replay(ml1_small)
        # Profiles agree (trace-driven)...
        assert a.server.profiles.liked_sets() == b.server.profiles.liked_sets()
        # ...but the sampled paths, and hence some KNN rows, differ.
        assert a.server.knn_table.as_dict() != b.server.knn_table.as_dict()


class TestConvergenceQuality:
    def test_hyrec_close_to_ideal_on_small_world(self, ml1_small):
        """On a trace where candidate sets cover most users, HyRec's
        final view similarity must come close to the ideal bound."""
        from repro.metrics.view_similarity import (
            ideal_view_similarity,
            view_similarity_of_table,
        )

        system = HyRecSystem(HyRecConfig(k=5), seed=3)
        system.replay(ml1_small)
        liked = system.server.profiles.liked_sets()
        achieved = view_similarity_of_table(
            liked, system.server.knn_table.as_dict()
        )
        ideal = ideal_view_similarity(liked, k=5)
        assert ideal > 0
        assert achieved >= 0.8 * ideal

    def test_bandwidth_grows_with_requests(self, toy_trace):
        system = HyRecSystem(HyRecConfig(k=2), seed=1)
        system.replay(toy_trace)
        before = system.server.meter.total_wire_bytes
        system.request(0)
        assert system.server.meter.total_wire_bytes > before
