"""Bounded-memory levers: row eviction, TTL, dtype narrowing.

The contract under test is the memory model of
:mod:`repro.engine.liked_matrix`: with a :class:`MemoryPolicy`
installed the matrix becomes a bounded cache over the
:class:`~repro.core.tables.ProfileTable` -- rows evict and
warm-rebuild, the arena hands capacity back after bulk eviction, int32
narrowing halves the footprint -- while every observable output
(rows, intersection counts, full replay digests, wire metering) stays
bit-for-bit identical to the unbounded matrix.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import LikedMatrix, MemoryPolicy

from tests.parity import random_trace, replay_digest


class FakeClock:
    """Injectable monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _liked_items(matrix: LikedMatrix, user: int) -> list[int]:
    row = np.asarray(matrix.liked_row(user), dtype=np.int64)
    return sorted(matrix.item_array()[row].tolist())


class TestMemoryPolicy:
    def test_zero_policy_is_inert(self):
        policy = MemoryPolicy()
        assert not policy.evicts
        assert policy.dtype() == np.dtype(np.int64)

    def test_config_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            HyRecConfig(evict_max_rows=-1)
        with pytest.raises(ValueError):
            HyRecConfig(evict_ttl_s=-0.5)

    def test_config_defaults_build_no_policy(self):
        system = HyRecSystem(HyRecConfig(engine="vectorized"), seed=1)
        assert system.server.memory_policy is None
        assert system.server.liked_matrix.memory_policy is None


class TestRowEviction:
    def _matrix(self, policy: MemoryPolicy, clock: FakeClock | None = None):
        table = ProfileTable()
        matrix = LikedMatrix(
            table, memory=policy, clock=clock if clock else FakeClock()
        )
        return table, matrix

    def test_lru_cap_bounds_resident_rows(self):
        table, matrix = self._matrix(MemoryPolicy(max_resident_rows=2))
        for uid in range(5):
            for item in range(uid + 1):
                table.record(uid, item, 1.0)
        for uid in range(5):
            matrix.liked_row(uid)
        stats = matrix.memory_stats()
        assert stats["rows_resident"] <= 2
        assert matrix.evictions >= 3

    def test_evicted_row_warm_rebuilds_from_table(self):
        table, matrix = self._matrix(MemoryPolicy(max_resident_rows=1))
        table.record(0, 10, 1.0)
        table.record(1, 20, 1.0)
        assert _liked_items(matrix, 0) == [10]
        assert _liked_items(matrix, 1) == [20]  # evicts row 0
        assert matrix.evictions >= 1
        # Writes to the evicted user hit only the table; the rebuild
        # must still see them.
        table.record(0, 11, 1.0)
        assert _liked_items(matrix, 0) == [10, 11]

    def test_most_recently_read_row_survives(self):
        table, matrix = self._matrix(MemoryPolicy(max_resident_rows=1))
        table.record(0, 1, 1.0)
        table.record(1, 2, 1.0)
        matrix.liked_row(0)
        matrix.liked_row(1)
        stats = matrix.memory_stats()
        assert stats["rows_resident"] == 1
        # The survivor is the row just handed out: reading it again
        # must not count another rebuild-triggering eviction.
        before = matrix.evictions
        assert _liked_items(matrix, 1) == [2]
        assert matrix.evictions == before

    def test_ttl_evicts_idle_rows(self):
        clock = FakeClock()
        table, matrix = self._matrix(MemoryPolicy(ttl_seconds=10.0), clock)
        table.record(0, 1, 1.0)
        table.record(1, 2, 1.0)
        matrix.liked_row(0)
        matrix.liked_row(1)
        clock.advance(11.0)
        table.record(2, 3, 1.0)  # any write runs the TTL sweep
        stats = matrix.memory_stats()
        assert matrix.evictions == 2
        assert stats["rows_resident"] == 0

    def test_read_refreshes_ttl(self):
        clock = FakeClock()
        table, matrix = self._matrix(MemoryPolicy(ttl_seconds=10.0), clock)
        table.record(0, 1, 1.0)
        matrix.liked_row(0)
        clock.advance(6.0)
        matrix.liked_row(0)  # re-stamped at t=6
        clock.advance(6.0)  # t=12: stamp 6 > cutoff 2
        table.record(1, 2, 1.0)
        assert matrix.evictions == 0
        assert matrix.memory_stats()["rows_resident"] == 1

    def test_gather_sees_consistent_rows_under_tiny_cap(self):
        table, matrix = self._matrix(MemoryPolicy(max_resident_rows=2))
        expected = {}
        rng = random.Random(11)
        for uid in range(12):
            items = rng.sample(range(40), rng.randrange(1, 9))
            expected[uid] = sorted(items)
            for item in items:
                table.record(uid, item, 1.0)
        users = list(range(12))
        indices, indptr, sizes = matrix.gather_liked(users)
        item_of = matrix.item_array()
        for i, uid in enumerate(users):
            segment = indices[indptr[i] : indptr[i + 1]]
            assert sorted(item_of[segment].tolist()) == expected[uid]
            assert sizes[i] == len(expected[uid])
        # Enforcement was deferred past the gather, then applied.
        assert matrix.memory_stats()["rows_resident"] <= 2

    def test_bulk_eviction_returns_arena_capacity(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, clock=FakeClock())
        for uid in range(200):
            for item in range(20):
                table.record(uid, item, 1.0)
        for uid in range(200):
            matrix.liked_row(uid)
        before = matrix.arena_capacity
        assert before >= 4000
        matrix.set_memory_policy(MemoryPolicy(max_resident_rows=4))
        after = matrix.memory_stats()
        assert after["rows_resident"] <= 4
        assert after["arena_capacity"] < before
        assert after["arena_garbage"] == 0  # eviction triggered a compact
        # Shrinking never lost data: evicted rows rebuild correctly.
        assert _liked_items(matrix, 0) == list(range(20))


class TestNarrowDtypes:
    def test_narrow_rows_match_int64(self):
        rng = random.Random(3)
        ratings = [
            (rng.randrange(50), rng.randrange(80), float(rng.random() < 0.8))
            for _ in range(600)
        ]
        wide_table, narrow_table = ProfileTable(), ProfileTable()
        wide = LikedMatrix(wide_table)
        narrow = LikedMatrix(
            narrow_table, memory=MemoryPolicy(narrow_dtypes=True)
        )
        for user, item, value in ratings:
            wide_table.record(user, item, value)
            narrow_table.record(user, item, value)
        assert narrow.memory_stats()["dtype"] == "int32"
        for uid in range(50):
            wide_table.get_or_create(uid)
            narrow_table.get_or_create(uid)
            assert _liked_items(narrow, uid) == _liked_items(wide, uid)
        query = wide.known_columns(list(range(0, 80, 3)))
        users = list(range(50))
        w_ind, w_ptr, _ = wide.gather_liked(users)
        n_ind, n_ptr, _ = narrow.gather_liked(users)
        assert np.array_equal(
            wide.batch_intersections(query, w_ind, w_ptr),
            narrow.batch_intersections(
                narrow.known_columns(list(range(0, 80, 3))), n_ind, n_ptr
            ),
        )

    def test_narrow_halves_arena_bytes(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, memory=MemoryPolicy(narrow_dtypes=True))
        stats = matrix.memory_stats()
        assert stats["arena_bytes"] == 4 * stats["arena_capacity"]

    def test_posting_rejects_user_ids_past_int32(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, memory=MemoryPolicy(narrow_dtypes=True))
        table.record(2**31 + 5, 1, 1.0)
        with pytest.raises(ValueError, match="int32"):
            matrix.posting(1)  # posting rebuild must refuse to truncate

    def test_set_memory_policy_narrows_existing_state(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, clock=FakeClock())
        for uid in range(10):
            table.record(uid, uid % 4, 1.0)
        for uid in range(10):
            matrix.liked_row(uid)
        matrix.posting(0)  # force postings to exist pre-conversion
        matrix.set_memory_policy(MemoryPolicy(narrow_dtypes=True))
        assert matrix.memory_stats()["dtype"] == "int32"
        for uid in range(10):
            assert _liked_items(matrix, uid) == [uid % 4]
        assert sorted(matrix.posting(0).tolist()) == [0, 4, 8]

    def test_set_memory_policy_refuses_unrepresentable_state(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, clock=FakeClock())
        table.record(2**31 + 7, 3, 1.0)
        matrix.posting(3)  # postings now hold the wide id
        with pytest.raises(ValueError, match="int32"):
            matrix.set_memory_policy(MemoryPolicy(narrow_dtypes=True))


class TestEvictionParity:
    """Eviction/narrowing must never change what the engine computes."""

    def _digest(self, **overrides):
        config = HyRecConfig(k=5, r=6, **overrides)
        system = HyRecSystem(config, seed=23)
        trace = random_trace(
            random.Random(29), users=30, items=90, n=350, name="memory-parity"
        )
        digest = replay_digest(system, trace)
        stats = system.server.stats
        system.close()
        return digest, stats

    def test_vectorized_replay_identical_under_eviction(self):
        baseline, _ = self._digest(engine="vectorized")
        evicting, _ = self._digest(engine="vectorized", evict_max_rows=4)
        narrow, _ = self._digest(engine="vectorized", narrow_dtypes=True)
        both, _ = self._digest(
            engine="vectorized", evict_max_rows=4, narrow_dtypes=True
        )
        assert evicting == baseline
        assert narrow == baseline
        assert both == baseline

    def test_sharded_replay_identical_under_eviction(self):
        baseline, _ = self._digest(engine="vectorized")
        evicting, stats = self._digest(
            engine="sharded",
            num_shards=4,
            evict_max_rows=2,
            narrow_dtypes=True,
        )
        assert evicting == baseline
        assert sum(s.evictions for s in stats.shards) > 0

    def test_process_executor_replay_identical_under_eviction(self):
        # End-to-end over the wire: the v6 Hello carries the policy to
        # every worker, StatsReply carries eviction counters back.
        baseline, _ = self._digest(engine="vectorized")
        evicting, stats = self._digest(
            engine="sharded",
            num_shards=2,
            executor="process",
            evict_max_rows=2,
            narrow_dtypes=True,
        )
        assert evicting == baseline
        assert sum(s.evictions for s in stats.shards) > 0
        assert sum(s.arena_capacity for s in stats.shards) > 0


class TestSparseIdCsc:
    """The CSC bincount must not allocate O(max user id) memory."""

    def test_sparse_ids_use_compressed_counts(self):
        # A handful of ten-digit user ids: the dense path would ask
        # for a multi-gigabyte count array.  The compressed path must
        # agree with the CSR scan exactly.
        rng = random.Random(17)
        table = ProfileTable()
        matrix = LikedMatrix(table)
        users = [10**12 + i * 10**7 for i in range(40)]
        expected = {}
        for uid in users:
            items = rng.sample(range(30), rng.randrange(1, 12))
            expected[uid] = set(items)
            for item in items:
                table.record(uid, item, 1.0)
        query_items = list(range(0, 30, 2))
        query = matrix.known_columns(query_items)
        # Duplicate candidates exercise the inverse mapping.
        candidates = users + users[:7]
        csc = matrix.batch_intersections_csc(
            query, np.asarray(candidates, dtype=np.int64)
        )
        indices, indptr, _ = matrix.gather_liked(candidates)
        csr = matrix.batch_intersections(query, indices, indptr)
        assert np.array_equal(csc, csr)
        assert csc.tolist() == [
            len(expected[uid] & set(query_items)) for uid in candidates
        ]

    def test_dense_ids_still_agree(self):
        rng = random.Random(19)
        table = ProfileTable()
        matrix = LikedMatrix(table)
        for uid in range(300):
            for item in rng.sample(range(50), rng.randrange(1, 10)):
                table.record(uid, item, 1.0)
        query = matrix.known_columns(list(range(0, 50, 3)))
        candidates = list(range(300))
        csc = matrix.batch_intersections_csc(
            query, np.asarray(candidates, dtype=np.int64)
        )
        indices, indptr, _ = matrix.gather_liked(candidates)
        assert np.array_equal(
            csc, matrix.batch_intersections(query, indices, indptr)
        )
