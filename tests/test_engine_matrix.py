"""Unit tests for the vectorized engine's data structures and kernels."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.similarity import cosine, get_metric, jaccard, overlap
from repro.core.tables import ProfileTable
from repro.engine import (
    LikedMatrix,
    intersection_counts,
    rank_descending,
    segment_sums,
    similarity_scores,
)


def _matrix_with(ratings: list[tuple[int, int, float]]) -> tuple[ProfileTable, LikedMatrix]:
    table = ProfileTable()
    matrix = LikedMatrix(table)
    for user, item, value in ratings:
        table.record(user, item, value)
    return table, matrix


def _liked_cols(matrix: LikedMatrix, user: int) -> set[int]:
    return set(matrix.liked_row(user).tolist())


class TestKernels:
    def test_segment_sums_handles_empty_rows(self):
        values = np.array([1, 0, 1, 1], dtype=np.int64)
        indptr = np.array([0, 0, 2, 2, 4], dtype=np.int64)
        assert segment_sums(values, indptr).tolist() == [0, 1, 0, 2]

    def test_intersection_counts_matches_python_sets(self):
        rng = random.Random(5)
        rows = [frozenset(rng.sample(range(60), rng.randrange(0, 25))) for _ in range(40)]
        query = frozenset(rng.sample(range(60), 12))
        sizes = np.array([len(r) for r in rows], dtype=np.int64)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        indices = np.array([c for r in rows for c in sorted(r)], dtype=np.int64)
        flags = np.zeros(60, dtype=np.int64)
        flags[list(query)] = 1
        counts = intersection_counts(flags, indices, indptr)
        assert counts.tolist() == [len(query & r) for r in rows]

    @pytest.mark.parametrize(
        "name,fn", [("cosine", cosine), ("jaccard", jaccard), ("overlap", overlap)]
    )
    def test_scores_bitwise_equal_python_metrics(self, name, fn):
        rng = random.Random(9)
        for _ in range(200):
            a = frozenset(rng.sample(range(50), rng.randrange(0, 20)))
            b = frozenset(rng.sample(range(50), rng.randrange(0, 20)))
            inter = np.array([len(a & b)], dtype=np.int64)
            got = similarity_scores(
                name, inter, float(len(a)), np.array([len(b)], dtype=np.int64)
            )
            expected = fn(a, b)
            assert float(got[0]) == expected  # bitwise, no tolerance

    def test_scores_rejects_unknown_metric(self):
        with pytest.raises(KeyError):
            similarity_scores("hamming", np.zeros(1), 1.0, np.ones(1))

    def test_rank_descending_is_stable(self):
        scores = np.array([0.5, 0.9, 0.5, 0.1])
        assert rank_descending(scores).tolist() == [1, 0, 2, 3]

    def test_cosine_matches_math_sqrt_exactly(self):
        # The parity guarantee hinges on np.sqrt == math.sqrt bit-for-bit.
        for a, b, inter in [(3, 7, 2), (123, 456, 77), (1, 1, 1)]:
            got = similarity_scores(
                "cosine",
                np.array([inter], dtype=np.int64),
                float(a),
                np.array([b], dtype=np.int64),
            )
            assert float(got[0]) == inter / math.sqrt(a * b)


class TestLikedMatrix:
    def test_rows_track_profile_writes(self):
        table, matrix = _matrix_with([(1, 10, 1.0), (1, 11, 1.0), (1, 12, 0.0)])
        assert _liked_cols(matrix, 1) == {
            matrix.column_of(10),
            matrix.column_of(11),
        }
        table.record(1, 13, 1.0)
        assert matrix.column_of(13) in _liked_cols(matrix, 1)
        # Un-like removes from the row.
        table.record(1, 10, 0.0)
        assert matrix.column_of(10) not in _liked_cols(matrix, 1)
        # Re-rating without flipping the opinion changes nothing.
        before = _liked_cols(matrix, 1)
        table.record(1, 11, 1.0)
        assert _liked_cols(matrix, 1) == before

    def test_rated_row_includes_dislikes(self):
        table, matrix = _matrix_with([(2, 5, 1.0), (2, 6, 0.0)])
        rated = set(matrix.rated_row(2).tolist())
        assert rated == {matrix.column_of(5), matrix.column_of(6)}
        table.record(2, 7, 0.0)
        assert matrix.column_of(7) in set(matrix.rated_row(2).tolist())

    def test_attaches_to_prepopulated_table(self):
        table = ProfileTable()
        table.record(4, 1, 1.0)
        table.record(4, 2, 1.0)
        matrix = LikedMatrix(table)
        assert len(_liked_cols(matrix, 4)) == 2

    def test_gather_matches_individual_rows(self):
        rng = random.Random(3)
        ratings = [
            (u, i, 1.0) for u in range(20) for i in rng.sample(range(40), 8)
        ]
        table, matrix = _matrix_with(ratings)
        ids = list(range(20))
        indices, indptr, sizes = matrix.gather_liked(ids)
        for pos, uid in enumerate(ids):
            row = indices[indptr[pos] : indptr[pos + 1]]
            assert set(row.tolist()) == _liked_cols(matrix, uid)
            assert sizes[pos] == len(_liked_cols(matrix, uid))
        assert matrix.liked_sizes(ids).tolist() == sizes.tolist()

    def test_compaction_preserves_rows(self):
        table = ProfileTable()
        matrix = LikedMatrix(table, initial_capacity=16)
        rng = random.Random(1)
        expected: dict[int, set[int]] = {}
        for step in range(600):
            user = rng.randrange(8)
            item = rng.randrange(30)
            value = 1.0 if rng.random() < 0.7 else 0.0
            table.record(user, item, value)
            matrix.liked_row(user)  # keep rows materialized across churn
            expected.setdefault(user, set())
            if value == 1.0:
                expected[user].add(item)
            else:
                expected[user].discard(item)
        for user, items in expected.items():
            assert _liked_cols(matrix, user) == {
                matrix.column_of(i) for i in items
            }

    def test_csc_agrees_with_csr(self):
        rng = random.Random(11)
        ratings = []
        for u in range(29):
            for i in rng.sample(range(50), rng.randrange(1, 15)):
                ratings.append((u, i, 1.0 if rng.random() < 0.8 else 0.0))
        table, matrix = _matrix_with(ratings)
        table.get_or_create(29)  # registered but rating-less user
        ids = list(range(30))
        query = matrix.liked_row(7)
        indices, indptr, _ = matrix.gather_liked(ids)
        csr = matrix.batch_intersections(query, indices, indptr)
        csc = matrix.batch_intersections_csc(query, np.array(ids))
        assert csr.tolist() == csc.tolist()
        # ...and both survive further incremental writes.
        for u, i, v in [(7, 99, 1.0), (3, 99, 1.0), (3, 99, 0.0), (5, 1, 0.0)]:
            table.record(u, i, v)
        query = matrix.liked_row(7)
        indices, indptr, _ = matrix.gather_liked(ids)
        assert (
            matrix.batch_intersections(query, indices, indptr).tolist()
            == matrix.batch_intersections_csc(query, np.array(ids)).tolist()
        )

    def test_adaptive_kernels_agree_with_csr(self):
        rng = random.Random(21)
        ratings = []
        for u in range(40):
            for i in rng.sample(range(60), rng.randrange(1, 20)):
                ratings.append((u, i, 1.0 if rng.random() < 0.8 else 0.0))
        table, matrix = _matrix_with(ratings)
        ids = list(range(40))
        query = matrix.liked_row(3)
        indices, indptr, sizes = matrix.gather_liked(ids)
        expected = matrix.batch_intersections(query, indices, indptr)
        auto = matrix.intersections_auto(query, ids, indices, indptr)
        assert auto.tolist() == expected.tolist()
        knn_inter, knn_sizes = matrix.knn_intersections(query, ids)
        assert knn_inter.tolist() == expected.tolist()
        assert knn_sizes.tolist() == sizes.tolist()

    def test_posting_lists_users_liking_item(self):
        table, matrix = _matrix_with(
            [(1, 10, 1.0), (2, 10, 1.0), (3, 10, 0.0), (1, 11, 1.0)]
        )
        assert set(matrix.posting(10).tolist()) == {1, 2}
        table.record(2, 10, 0.0)
        assert set(matrix.posting(10).tolist()) == {1}
        assert matrix.posting(404).size == 0

    def test_refresh_after_out_of_band_write(self):
        table, matrix = _matrix_with([(1, 10, 1.0)])
        matrix.liked_row(1)
        table.get(1).add(11, 1.0)  # bypasses record(); matrix is stale
        matrix.refresh(1)
        assert _liked_cols(matrix, 1) == {
            matrix.column_of(10),
            matrix.column_of(11),
        }
        assert set(matrix.posting(11).tolist()) == {1}


class TestMetricRegistryUnchanged:
    def test_builtin_names_still_resolve(self):
        for name in ("cosine", "jaccard", "overlap"):
            assert callable(get_metric(name))
