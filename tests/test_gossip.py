"""Tests for peer sampling and epidemic clustering."""

from __future__ import annotations

import pytest

from repro.gossip import (
    ClusteringOverlay,
    NodeDescriptor,
    PartialView,
    PeerSamplingService,
)
from repro.sim.randomness import derive_rng


class TestPartialView:
    def test_capacity_enforced(self):
        view = PartialView(3, [NodeDescriptor(i, age=i) for i in range(10)])
        assert len(view) == 3
        # Freshest survive.
        assert view.node_ids() == [0, 1, 2]

    def test_freshest_wins_merge(self):
        view = PartialView(5, [NodeDescriptor(1, age=5)])
        view.merge([NodeDescriptor(1, age=2)], exclude=99)
        assert view.descriptors()[0].age == 2

    def test_stale_does_not_overwrite_fresh(self):
        view = PartialView(5, [NodeDescriptor(1, age=2)])
        view.merge([NodeDescriptor(1, age=7)], exclude=99)
        assert view.descriptors()[0].age == 2

    def test_exclude_self(self):
        view = PartialView(5)
        view.merge([NodeDescriptor(7)], exclude=7)
        assert 7 not in view

    def test_oldest(self):
        view = PartialView(5, [NodeDescriptor(1, age=1), NodeDescriptor(2, age=9)])
        assert view.oldest().node_id == 2

    def test_increase_age(self):
        view = PartialView(5, [NodeDescriptor(1, age=0)])
        view.increase_age()
        assert view.descriptors()[0].age == 1

    def test_remove(self):
        view = PartialView(5, [NodeDescriptor(1)])
        view.remove(1)
        assert len(view) == 0

    def test_random_subset_bounds(self):
        view = PartialView(10, [NodeDescriptor(i) for i in range(6)])
        rng = derive_rng(0, "t")
        assert len(view.random_subset(3, rng)) == 3
        assert len(view.random_subset(99, rng)) == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PartialView(0)


class TestPeerSampling:
    def build(self, nodes=40, seed=0) -> PeerSamplingService:
        service = PeerSamplingService(view_size=8, seed=seed)
        for node in range(nodes):
            service.add_node(node)
        return service

    def test_bootstrap_fills_views(self):
        service = self.build()
        sizes = [len(service.nodes[n].view) for n in service.nodes]
        assert all(size > 0 for size in sizes[1:])

    def test_cycle_runs_exchanges(self):
        service = self.build()
        exchanges = service.cycle()
        assert exchanges > 0
        assert service.cycles_run == 1

    def test_views_never_contain_self(self):
        service = self.build()
        for _ in range(5):
            service.cycle()
        for node_id, node in service.nodes.items():
            assert node_id not in node.view

    def test_views_stay_within_capacity(self):
        service = self.build()
        for _ in range(5):
            service.cycle()
        assert all(
            len(node.view) <= service.view_size for node in service.nodes.values()
        )

    def test_overlay_mixes_over_time(self):
        """After enough cycles every node should have been seen by many
        distinct peers (approximate uniformity of the random graph)."""
        service = self.build(nodes=60)
        union_before = {
            nid: set(service.view_of(nid)) for nid in list(service.nodes)[:5]
        }
        for _ in range(15):
            service.cycle()
        changed = 0
        for nid, before in union_before.items():
            if set(service.view_of(nid)) != before:
                changed += 1
        assert changed >= 4

    def test_in_degree_reasonably_balanced(self):
        service = self.build(nodes=60)
        for _ in range(20):
            service.cycle()
        degrees = service.in_degree_distribution()
        mean = sum(degrees.values()) / len(degrees)
        assert max(degrees.values()) < mean * 4

    def test_dead_node_aged_out(self):
        service = self.build(nodes=20)
        for _ in range(3):
            service.cycle()
        service.remove_node(5)
        for _ in range(25):
            service.cycle()
        holders = [
            nid for nid in service.nodes if 5 in service.view_of(nid)
        ]
        assert len(holders) <= 2  # stragglers possible, but rare

    def test_removed_node_not_partnered(self):
        service = self.build(nodes=10)
        service.remove_node(3)
        for _ in range(5):
            service.cycle()  # must not raise


class TestClustering:
    def build(self, nodes=30, seed=0):
        profiles = {n: frozenset({n % 5, 100 + n % 5}) for n in range(nodes)}
        rps = PeerSamplingService(view_size=8, seed=seed)
        overlay = ClusteringOverlay(
            profile_provider=lambda n: profiles.get(n, frozenset()),
            peer_sampling=rps,
            k=4,
            seed=seed,
        )
        for n in range(nodes):
            overlay.add_node(n)
        return overlay, profiles

    def test_converges_to_similar_neighbors(self):
        overlay, profiles = self.build(nodes=30)
        for _ in range(15):
            overlay.cycle()
        # Users sharing n % 5 have identical profiles: after epidemic
        # clustering most neighbors must come from the same class.
        good = 0
        total = 0
        for node_id, node in overlay.nodes.items():
            for neighbor in node.neighbors:
                total += 1
                if neighbor % 5 == node_id % 5:
                    good += 1
        assert total > 0
        assert good / total > 0.8

    def test_views_bounded_by_k(self):
        overlay, _ = self.build()
        for _ in range(5):
            overlay.cycle()
        assert all(len(n.neighbors) <= 4 for n in overlay.nodes.values())

    def test_no_self_neighbors(self):
        overlay, _ = self.build()
        for _ in range(5):
            overlay.cycle()
        for node_id, node in overlay.nodes.items():
            assert node_id not in node.neighbors

    def test_exchange_log_records_packages(self):
        overlay, _ = self.build()
        overlay.cycle()
        assert overlay.last_cycle_exchanges
        for initiator, partner, sent, received in overlay.last_cycle_exchanges:
            assert initiator != partner
            assert initiator in sent  # own descriptor travels along
            assert partner in received

    def test_knn_table_snapshot(self):
        overlay, _ = self.build()
        for _ in range(3):
            overlay.cycle()
        table = overlay.knn_table()
        assert set(table) == set(overlay.nodes)

    def test_remove_node(self):
        overlay, _ = self.build(nodes=10)
        overlay.remove_node(0)
        for _ in range(3):
            overlay.cycle()
        assert 0 not in overlay.nodes
