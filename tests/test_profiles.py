"""Tests for Profile and its wire-format caching."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.profiles import Profile


class TestProfileBasics:
    def test_new_profile_is_empty(self):
        profile = Profile(1)
        assert profile.size == 0
        assert profile.liked_items() == frozenset()
        assert profile.rated_items() == frozenset()

    def test_add_like(self):
        profile = Profile(1)
        profile.add(10, 1.0, timestamp=5.0)
        assert 10 in profile
        assert profile.liked_items() == {10}
        assert profile.disliked_items() == frozenset()
        assert profile.value_of(10) == 1.0

    def test_add_dislike(self):
        profile = Profile(1)
        profile.add(10, 0.0)
        assert profile.liked_items() == frozenset()
        assert profile.disliked_items() == {10}

    def test_rerate_overwrites(self):
        profile = Profile(1)
        profile.add(10, 1.0)
        profile.add(10, 0.0)
        assert profile.size == 1
        assert profile.liked_items() == frozenset()
        assert profile.disliked_items() == {10}

    def test_non_binary_value_rejected(self):
        profile = Profile(1)
        with pytest.raises(ValueError, match="binary"):
            profile.add(10, 3.5)

    def test_value_of_unrated_is_none(self):
        assert Profile(1).value_of(99) is None

    def test_len_and_iter(self):
        profile = Profile(1)
        profile.add(1, 1.0)
        profile.add(2, 0.0)
        assert len(profile) == 2
        assert set(profile) == {1, 2}


class TestPayloadCache:
    def test_payload_round_trip(self):
        profile = Profile(3)
        profile.add(10, 1.0)
        profile.add(20, 0.0)
        payload = profile.to_payload()
        rebuilt = Profile.from_payload(3, payload)
        assert rebuilt.liked_items() == profile.liked_items()
        assert rebuilt.disliked_items() == profile.disliked_items()

    def test_payload_is_cached_between_writes(self):
        profile = Profile(1)
        profile.add(10, 1.0)
        assert profile.to_payload() is profile.to_payload()

    def test_cache_invalidated_on_write(self):
        profile = Profile(1)
        profile.add(10, 1.0)
        first = profile.to_payload()
        profile.add(11, 1.0)
        second = profile.to_payload()
        assert first is not second
        assert "11" in second

    def test_payload_keys_are_strings(self):
        profile = Profile(1)
        profile.add(42, 1.0)
        assert profile.to_payload() == {"42": 1.0}

    def test_payload_excludes_timestamps(self):
        profile = Profile(1)
        profile.add(42, 1.0, timestamp=123.0)
        assert profile.to_payload() == {"42": 1.0}


class TestCopy:
    def test_copy_is_independent(self):
        original = Profile(1)
        original.add(10, 1.0)
        duplicate = original.copy()
        duplicate.add(11, 1.0)
        assert 11 not in original
        assert 11 in duplicate

    def test_copy_preserves_liked(self):
        original = Profile(1)
        original.add(10, 1.0)
        original.add(20, 0.0)
        duplicate = original.copy()
        assert duplicate.liked_items() == {10}
        assert duplicate.disliked_items() == {20}


class TestProfileProperties:
    @given(
        ratings=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.sampled_from([0.0, 1.0]),
            ),
            max_size=40,
        )
    )
    def test_liked_disliked_partition_rated(self, ratings):
        profile = Profile(0)
        for item, value in ratings:
            profile.add(item, value)
        liked = profile.liked_items()
        disliked = profile.disliked_items()
        assert liked | disliked == profile.rated_items()
        assert liked & disliked == frozenset()

    @given(
        ratings=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.sampled_from([0.0, 1.0]),
            ),
            max_size=40,
        )
    )
    def test_last_write_wins(self, ratings):
        profile = Profile(0)
        expected: dict[int, float] = {}
        for item, value in ratings:
            profile.add(item, value)
            expected[item] = value
        for item, value in expected.items():
            assert profile.value_of(item) == value

    @given(
        ratings=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.sampled_from([0.0, 1.0]),
            ),
            max_size=40,
        )
    )
    def test_payload_round_trip_preserves_state(self, ratings):
        profile = Profile(0)
        for item, value in ratings:
            profile.add(item, value)
        rebuilt = Profile.from_payload(0, profile.to_payload())
        assert rebuilt.liked_items() == profile.liked_items()
        assert rebuilt.rated_items() == profile.rated_items()
