"""Shared parity fixtures: the byte-level acceptance bar of the cluster.

Every cluster suite (``test_cluster_parity``, ``test_rebalance``,
``test_fault_tolerance``, ``test_elasticity``) asserts the same
contract: whatever the topology does -- sharding, migrating, killing
workers, growing, shrinking, splitting buckets -- the engine's
outputs are **bit-for-bit** the unsharded vectorized engine's.  The
helpers here are that contract's single definition:

* :func:`random_trace` / :func:`random_table` / :func:`random_job` --
  the deterministic random workloads the suites replay (same RNG seed
  => same trace, so a sharded system and its unsharded oracle replay
  identical inputs in lockstep).
* :func:`replay_digest` -- the full observable surface of a replay:
  every request's neighbors, *bit-pattern* float64 scores,
  recommendations, the final KNN table, and the byte-exact wire-meter
  readings (the Figure-10 metering both directions).
* :func:`assert_scores_bitwise` -- scores are not approximately
  equal; they are the same float64 bit patterns (``==`` plus the
  ``repr`` round trip, which distinguishes ``-0.0``/``0.0`` and every
  ULP).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from repro.datasets.schema import Rating, Trace
from repro.engine import EngineJob

__all__ = [
    "assert_scores_bitwise",
    "random_job",
    "random_table",
    "random_trace",
    "replay_digest",
]


def random_trace(
    rng: random.Random,
    users: int,
    items: int,
    n: int,
    name: str = "parity",
) -> Trace:
    """An ML-style random trace: mostly likes, re-rates included."""
    ratings = []
    now = 0.0
    for _ in range(n):
        now += rng.random() * 50
        ratings.append(
            Rating(
                timestamp=now,
                user=rng.randrange(users),
                item=rng.randrange(items),
                value=float(rng.random() < 0.75),
            )
        )
    return Trace(name, ratings)


def random_table(rng: random.Random, users: int, items: int) -> ProfileTable:
    """A pre-populated profile table (empty profiles included)."""
    table = ProfileTable()
    for uid in range(users):
        table.get_or_create(uid)  # empty profiles are a legal edge case
        for item in rng.sample(range(items), rng.randrange(0, 25)):
            table.record(uid, item, 1.0 if rng.random() < 0.7 else 0.0)
        if rng.random() < 0.1:
            table.record(uid, rng.randrange(items), 1.0)  # re-rate
    return table


def random_job(rng: random.Random, users: int, metric: str) -> EngineJob:
    """One engine job with a random candidate set in token order."""
    user_id = rng.randrange(users)
    population = [uid for uid in range(users) if uid != user_id]
    candidates = rng.sample(population, rng.randrange(0, len(population)))
    # Duplicate-profile ties happen naturally (profiles are random and
    # small); token order is the deterministic engine order.
    pairs = sorted((f"u0_{uid:04x}", uid) for uid in candidates)
    return EngineJob(
        user_id=user_id,
        user_token=f"u0_{user_id:04x}",
        candidate_ids=tuple(uid for _, uid in pairs),
        candidate_tokens=tuple(token for token, _ in pairs),
        k=rng.choice([1, 3, 10, 100]),  # 100 > |candidates| always
        r=rng.choice([1, 5, 20]),
        metric=metric,
    )


def replay_digest(system: HyRecSystem, trace: Trace) -> dict:
    """Replay a trace and capture everything the client could observe.

    Two systems replaying the same trace must produce ``==`` digests:
    per-request results (neighbors, float64 scores, recommendations),
    the final KNN table, and the byte counts both metered directions
    -- the bit-for-bit contract including Figure-10 wire metering.
    """
    outcomes: list = []
    system.replay(trace, on_request=outcomes.append)
    return {
        "results": [
            (
                o.result.neighbor_tokens,
                o.result.neighbor_scores,
                o.result.recommended_items,
                o.recommendations,
            )
            for o in outcomes
        ],
        "knn": system.server.knn_table.as_dict(),
        "wire": {
            channel: system.server.meter.reading(channel)
            for channel in ("server->client", "client->server")
        },
    }


def assert_scores_bitwise(
    expected: Iterable[float], got: Iterable[float]
) -> None:
    """Scores must be the same float64 bit patterns, not just close."""
    for a, b in zip(expected, got, strict=True):
        assert a == b and str(a) == str(b), f"score bits diverge: {a!r} {b!r}"
