"""Tests for the calibrated device models.

The calibration classes assert the exact targets DESIGN.md commits to:
the paper's Figure 12/13 ratios must hold for the shipped constants.
"""

from __future__ import annotations

import pytest

from repro.sim.devices import (
    CpuLoad,
    Device,
    DeviceSpec,
    LAPTOP,
    SERVER,
    SMARTPHONE,
    widget_op_count,
)


def job_ops(profile_size: int, k: int = 10) -> int:
    """Worst-case widget ops at one profile size (all profiles equal)."""
    candidate_count = 2 * k + k * k
    return widget_op_count(profile_size, [profile_size] * candidate_count)


class TestWidgetOpCount:
    def test_formula(self):
        # 2 candidates: each costs |Pu| + 2|Pc| = 5 + 2*3 = 11.
        assert widget_op_count(5, [3, 3]) == 22

    def test_empty_candidates(self):
        assert widget_op_count(10, []) == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            widget_op_count(-1, [])
        with pytest.raises(ValueError):
            widget_op_count(1, [-2])


class TestCpuLoad:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            CpuLoad(-0.1)
        with pytest.raises(ValueError):
            CpuLoad(1.1)

    def test_value(self):
        assert CpuLoad(0.5).value == 0.5


class TestDeviceModel:
    def test_task_time_monotone_in_ops(self):
        device = Device(LAPTOP)
        assert device.task_time(1000) < device.task_time(100_000)

    def test_load_slows_execution(self):
        idle = Device(SMARTPHONE, load=0.0)
        busy = Device(SMARTPHONE, load=1.0)
        ops = job_ops(100)
        assert busy.task_time(ops) > idle.task_time(ops)

    def test_laptop_faster_than_smartphone(self):
        ops = job_ops(100)
        assert Device(LAPTOP).task_time(ops) < Device(SMARTPHONE).task_time(ops)

    def test_transfer_time(self):
        device = Device(LAPTOP)  # 100 Mbps
        assert device.transfer_time(12_500_000) == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        device = Device(LAPTOP)
        with pytest.raises(ValueError):
            device.task_time(-1)
        with pytest.raises(ValueError):
            device.transfer_time(-1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", 0, 0.0, 0.0, 1, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", 1.0, -1.0, 0.0, 1, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", 1.0, 0.0, 0.0, 0, 1.0)


class TestPaperCalibration:
    """The three calibration targets from Figures 12-13."""

    def test_fig13_laptop_growth_below_1_5x(self):
        small = Device(LAPTOP).task_time(job_ops(10))
        large = Device(LAPTOP).task_time(job_ops(500))
        assert large / small < 1.55

    def test_fig13_smartphone_growth_about_7x(self):
        small = Device(SMARTPHONE).task_time(job_ops(10))
        large = Device(SMARTPHONE).task_time(job_ops(500))
        assert 6.0 < large / small < 8.5

    def test_fig12_laptop_under_10ms_at_half_load(self):
        device = Device(LAPTOP, load=0.5)
        assert device.task_time(job_ops(100)) < 10e-3

    def test_fig12_smartphone_under_60ms_at_half_load(self):
        device = Device(SMARTPHONE, load=0.5)
        assert device.task_time(job_ops(100)) < 60e-3

    def test_fig12_laptop_load_slope_gentle(self):
        """Laptop time 'increases only slowly as the CPU gets loaded'."""
        ops = job_ops(100)
        idle = Device(LAPTOP, load=0.0).task_time(ops)
        full = Device(LAPTOP, load=1.0).task_time(ops)
        assert full / idle <= 1.35

    def test_server_is_fastest(self):
        ops = job_ops(100)
        assert Device(SERVER).task_time(ops) < Device(LAPTOP).task_time(ops)
