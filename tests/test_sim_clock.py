"""Tests for the virtual clock."""

from __future__ import annotations

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, WEEK, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_delta(self):
        clock = SimClock(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_cannot_go_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.0)

    def test_cannot_advance_negative(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_unit_conversions(self):
        clock = SimClock(2 * DAY)
        assert clock.days == pytest.approx(2.0)
        assert clock.hours == pytest.approx(48.0)
        assert clock.minutes == pytest.approx(48 * 60)

    def test_constants_consistent(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
