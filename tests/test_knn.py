"""Unit and property tests for Algorithm 1 (KNN selection)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.knn import Neighbor, knn_select
from repro.core.similarity import cosine, jaccard

item_sets = st.frozensets(st.integers(min_value=0, max_value=40), max_size=15)
candidate_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=50),
    values=item_sets,
    max_size=20,
)


class TestKnnSelect:
    def test_selects_most_similar(self):
        user = frozenset({1, 2, 3})
        candidates = {
            10: frozenset({1, 2, 3}),  # identical
            11: frozenset({1, 2}),  # close
            12: frozenset({9}),  # disjoint
        }
        result = knn_select(user, candidates, k=2)
        assert [n.user_id for n in result] == [10, 11]
        assert result[0].score == pytest.approx(1.0)

    def test_k_larger_than_candidates(self):
        result = knn_select(frozenset({1}), {5: frozenset({1})}, k=10)
        assert len(result) == 1

    def test_excludes_self(self):
        user = frozenset({1, 2})
        candidates = {0: user, 1: frozenset({1})}
        result = knn_select(user, candidates, k=5, exclude=0)
        assert all(n.user_id != 0 for n in result)

    def test_deterministic_tie_break_by_user_id(self):
        user = frozenset({1, 2})
        candidates = {7: frozenset({1}), 3: frozenset({2}), 5: frozenset({1})}
        result = knn_select(user, candidates, k=3)
        # All three have identical similarity; order must be by id.
        assert [n.user_id for n in result] == [3, 5, 7]

    def test_scores_are_sorted_descending(self):
        user = frozenset(range(10))
        candidates = {i: frozenset(range(i)) for i in range(1, 11)}
        result = knn_select(user, candidates, k=10)
        scores = [n.score for n in result]
        assert scores == sorted(scores, reverse=True)

    def test_custom_metric_changes_selection(self):
        user = frozenset({1, 2, 3, 4})
        candidates = {
            # Candidate 1: one shared item out of one.
            #   cosine = 1/sqrt(4)   = 0.500, jaccard = 1/4  = 0.250
            # Candidate 2: three shared items out of ten.
            #   cosine = 3/sqrt(40)  = 0.474, jaccard = 3/11 = 0.273
            1: frozenset({1}),
            2: frozenset({1, 2, 3, 10, 11, 12, 13, 14, 15, 16}),
        }
        by_cosine = knn_select(user, candidates, k=1, metric=cosine)
        by_jaccard = knn_select(user, candidates, k=1, metric=jaccard)
        assert by_cosine[0].user_id == 1
        assert by_jaccard[0].user_id == 2

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="k must be at least 1"):
            knn_select(frozenset(), {}, k=0)

    def test_empty_candidates_empty_result(self):
        assert knn_select(frozenset({1}), {}, k=3) == []


class TestKnnProperties:
    @given(user=item_sets, candidates=candidate_maps, k=st.integers(1, 10))
    def test_result_size_bounded_by_k(self, user, candidates, k):
        result = knn_select(user, candidates, k=k)
        assert len(result) <= k
        assert len(result) == min(k, len(candidates))

    @given(user=item_sets, candidates=candidate_maps, k=st.integers(1, 10))
    def test_results_are_candidates(self, user, candidates, k):
        result = knn_select(user, candidates, k=k)
        assert all(n.user_id in candidates for n in result)

    @given(user=item_sets, candidates=candidate_maps, k=st.integers(1, 10))
    def test_no_duplicates(self, user, candidates, k):
        result = knn_select(user, candidates, k=k)
        ids = [n.user_id for n in result]
        assert len(ids) == len(set(ids))

    @given(user=item_sets, candidates=candidate_maps, k=st.integers(1, 10))
    def test_selected_dominate_rejected(self, user, candidates, k):
        """Every selected neighbor scores >= every rejected candidate."""
        result = knn_select(user, candidates, k=k)
        if not result:
            return
        selected = {n.user_id for n in result}
        worst_selected = min(n.score for n in result)
        for uid, liked in candidates.items():
            if uid not in selected:
                assert cosine(user, liked) <= worst_selected + 1e-12

    @given(user=item_sets, candidates=candidate_maps)
    def test_deterministic(self, user, candidates):
        first = knn_select(user, candidates, k=5)
        second = knn_select(user, candidates, k=5)
        assert first == second

    @given(user=item_sets, candidates=candidate_maps, k=st.integers(1, 5))
    def test_neighbor_is_frozen_dataclass(self, user, candidates, k):
        for neighbor in knn_select(user, candidates, k=k):
            assert isinstance(neighbor, Neighbor)
            with pytest.raises(AttributeError):
                neighbor.score = 2.0  # type: ignore[misc]
