"""Tests for reproducible random-stream derivation."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.sim.randomness import derive_rng, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(seed=st.integers(0, 2**31), label=st.text(max_size=20))
    def test_fits_64_bits(self, seed, label):
        assert 0 <= derive_seed(seed, label) < 2**64

    def test_adjacent_seeds_uncorrelated(self):
        """Hashing must break the classic seed/seed+1 correlation."""
        streams = []
        for seed in (100, 101):
            rng = derive_rng(seed, "x")
            streams.append([rng.random() for _ in range(5)])
        assert streams[0] != streams[1]
        assert all(abs(a - b) > 1e-9 for a, b in zip(*streams))


class TestMakeRng:
    def test_passthrough_random_instance(self):
        rng = random.Random(5)
        assert make_rng(rng) is rng

    def test_int_seed(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_derive_rng_reproducible(self):
        a = derive_rng(3, "stream")
        b = derive_rng(3, "stream")
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
