"""Tests for the map-reduce engine and the three KNN jobs."""

from __future__ import annotations

import pytest

from repro.baselines.exact import exact_knn_table
from repro.mapreduce import (
    MapReduceEngine,
    crec_knn_job,
    exhaustive_knn_job,
    mahout_knn_job,
    makespan,
)


def word_count_engine(**kwargs) -> MapReduceEngine:
    return MapReduceEngine(workers=2, task_overhead_s=0.0, **kwargs)


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_worker_sums(self):
        assert makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_perfect_split(self):
        assert makespan([1.0, 1.0, 1.0, 1.0], 2) == 2.0

    def test_lpt_balances_uneven(self):
        # LPT: 5 -> w1; 4 -> w2; 3 -> w2(7)? no w1=5 w2=4, 3->w2=7.
        assert makespan([5.0, 4.0, 3.0], 2) == 7.0

    def test_dominated_by_longest_task(self):
        assert makespan([10.0, 0.1, 0.1], 4) == 10.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)


class TestEngine:
    def test_word_count(self):
        engine = word_count_engine()
        documents = ["a b a", "b c", "a"]

        def mapper(doc: str):
            for word in doc.split():
                yield word, 1

        def reducer(word: str, counts: list[int]):
            return word, sum(counts)

        result = engine.run(documents, mapper, reducer)
        assert dict(result.results) == {"a": 3, "b": 2, "c": 1}

    def test_stats_recorded(self):
        engine = word_count_engine()
        result = engine.run(
            list(range(20)),
            lambda x: [(x % 3, x)],
            lambda key, values: (key, len(values)),
        )
        assert result.map_stats.tasks > 0
        assert result.reduce_stats.tasks > 0
        assert result.shuffled_pairs == 20
        assert result.cpu_seconds >= 0
        assert result.wall_clock_s > 0

    def test_more_workers_reduce_wall_clock(self):
        def slow_mapper(x):
            total = 0
            for i in range(20_000):
                total += i
            yield x, total

        inputs = list(range(32))
        slow = MapReduceEngine(workers=1, task_overhead_s=0.0).run(
            inputs, slow_mapper, lambda k, v: (k, v[0])
        )
        fast = MapReduceEngine(workers=8, task_overhead_s=0.0).run(
            inputs, slow_mapper, lambda k, v: (k, v[0])
        )
        assert fast.wall_clock_s < slow.wall_clock_s

    def test_task_overhead_added(self):
        cheap = MapReduceEngine(workers=1, task_overhead_s=0.0, tasks_per_worker=1)
        costly = MapReduceEngine(workers=1, task_overhead_s=1.0, tasks_per_worker=1)
        inputs = [1, 2, 3]
        identity = (lambda x: [(x, x)], lambda k, v: (k, v[0]))
        fast = cheap.run(inputs, *identity)
        slow = costly.run(inputs, *identity)
        # One map task + one reduce task, each 1.0s of launch overhead
        # (allow measurement noise on the real task durations).
        assert slow.wall_clock_s >= fast.wall_clock_s + 1.99

    def test_shuffle_penalty_increases_wall_clock(self):
        inputs = list(range(200))
        identity = (lambda x: [(x, x)], lambda k, v: (k, v[0]))
        local = MapReduceEngine(
            workers=2, task_overhead_s=0.0, shuffle_cost_per_pair_s=1e-4
        ).run(inputs, *identity)
        remote = MapReduceEngine(
            workers=2,
            task_overhead_s=0.0,
            shuffle_cost_per_pair_s=1e-4,
            shuffle_penalty=5.0,
        ).run(inputs, *identity)
        assert remote.wall_clock_s > local.wall_clock_s

    def test_empty_inputs(self):
        engine = word_count_engine()
        result = engine.run([], lambda x: [(x, 1)], lambda k, v: (k, v))
        assert result.results == []
        assert result.wall_clock_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MapReduceEngine(workers=0)
        with pytest.raises(ValueError):
            MapReduceEngine(tasks_per_worker=0)
        with pytest.raises(ValueError):
            MapReduceEngine(shuffle_penalty=0.5)


@pytest.fixture(scope="module")
def liked_sets(ml1_tiny_module):
    return ml1_tiny_module


@pytest.fixture(scope="module")
def ml1_tiny_module():
    from repro.datasets import load_dataset
    from repro.eval.common import liked_sets_of_trace

    return liked_sets_of_trace(load_dataset("ML1", scale=0.02, seed=77))


class TestKnnJobs:
    def test_exhaustive_matches_exact_index(self, liked_sets):
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        table, _ = exhaustive_knn_job(engine, liked_sets, k=5)
        expected = exact_knn_table(liked_sets, k=5)
        assert table == expected

    def test_mahout_matches_exact_index(self, liked_sets):
        """Co-occurrence pruning must not change the result: every
        user pair with nonzero cosine co-rates at least one item."""
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        table, _ = mahout_knn_job(engine, liked_sets, k=5)
        expected = exact_knn_table(liked_sets, k=5)
        mismatches = 0
        for user, ideal_neighbors in expected.items():
            got = table[user]
            # Zero-similarity tail positions may legitimately differ:
            # mahout omits non-co-rating users, exact ranks them by id.
            shared = [n for n in ideal_neighbors if n in set(got)]
            if len(shared) < min(3, len(ideal_neighbors)):
                mismatches += 1
        assert mismatches <= len(expected) * 0.1

    def test_mahout_covers_all_users(self, liked_sets):
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        table, _ = mahout_knn_job(engine, liked_sets, k=5)
        assert set(table) == set(liked_sets)

    def test_crec_converges_near_ideal(self, liked_sets):
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        table, _ = crec_knn_job(engine, liked_sets, k=5, iterations=6, seed=1)
        from repro.metrics.view_similarity import (
            ideal_view_similarity,
            view_similarity_of_table,
        )

        achieved = view_similarity_of_table(liked_sets, table)
        ideal = ideal_view_similarity(liked_sets, k=5)
        assert achieved >= 0.75 * ideal

    def test_crec_respects_k(self, liked_sets):
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        table, _ = crec_knn_job(engine, liked_sets, k=3, iterations=2, seed=1)
        assert all(len(neighbors) <= 3 for neighbors in table.values())
        assert all(user not in neighbors for user, neighbors in table.items())

    def test_crec_accumulates_iterations(self, liked_sets):
        engine = MapReduceEngine(workers=2, task_overhead_s=0.0)
        _, one = crec_knn_job(engine, liked_sets, k=3, iterations=1, seed=1)
        _, three = crec_knn_job(engine, liked_sets, k=3, iterations=3, seed=1)
        assert three.cpu_seconds > one.cpu_seconds
        assert three.map_stats.tasks == 3 * one.map_stats.tasks

    def test_crec_invalid_iterations(self, liked_sets):
        engine = MapReduceEngine(workers=2)
        with pytest.raises(ValueError):
            crec_knn_job(engine, liked_sets, k=3, iterations=0)
