"""Tests for the linkage attack and the privacy experiment."""

from __future__ import annotations

import pytest

from repro.core.privacy import LinkageAttack, LinkageReport
from repro.eval.privacy import run_privacy_attack


class TestLinkageAttack:
    def test_perfect_linkage_on_identical_profiles(self):
        before = {"old_a": frozenset({"1", "2"}), "old_b": frozenset({"9"})}
        after = {"new_a": frozenset({"1", "2"}), "new_b": frozenset({"9"})}
        truth = {"new_a": "old_a", "new_b": "old_b"}
        report = LinkageAttack().evaluate(before, after, truth)
        assert report.accuracy == 1.0
        assert report.attempted == 2

    def test_greedy_assignment_without_replacement(self):
        # Both new tokens resemble old_a, but only one may claim it.
        before = {"old_a": frozenset({"1", "2", "3"})}
        after = {
            "new_x": frozenset({"1", "2", "3"}),
            "new_y": frozenset({"1", "2"}),
        }
        linked = LinkageAttack().link(before, after)
        assert linked == {"new_x": "old_a"}

    def test_threshold_abstains_on_weak_matches(self):
        before = {"old_a": frozenset({"1"})}
        after = {"new_z": frozenset({"2"})}
        linked = LinkageAttack(threshold=0.1).link(before, after)
        assert linked == {}

    def test_zero_similarity_not_linked(self):
        before = {"old_a": frozenset({"1"})}
        after = {"new_z": frozenset({"2"})}
        assert LinkageAttack().link(before, after) == {}

    def test_wrong_guess_counts_against_accuracy(self):
        before = {
            "old_a": frozenset({"1", "2"}),
            "old_b": frozenset({"1", "3"}),
        }
        after = {"new_1": frozenset({"1", "2"})}
        # Truth says new_1 is old_b; content says old_a: a wrong claim.
        report = LinkageAttack().evaluate(before, after, {"new_1": "old_b"})
        assert report.attempted == 1
        assert report.correct == 0
        assert report.accuracy == 0.0

    def test_empty_report(self):
        report = LinkageReport(linked={}, attempted=0, correct=0)
        assert report.accuracy == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            LinkageAttack(threshold=-0.5)


class TestPrivacyExperiment:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_privacy_attack(
            profile_sizes=(5, 50),
            drifts=(0.5, 10.0),
            num_users=60,
            observe_requests=20,
            seed=1,
        )

    def test_reshuffling_alone_is_weak(self, grid):
        """The Section 6 caveat: distinctive profiles re-link easily."""
        assert grid.accuracy(50, 0.5) > 0.9

    def test_extreme_drift_protects_small_profiles(self, grid):
        assert grid.accuracy(5, 10.0) < grid.accuracy(5, 0.5)
        assert grid.accuracy(5, 10.0) < grid.accuracy(50, 10.0) + 0.05

    def test_report_formats(self, grid):
        report = grid.format_report()
        assert "linkage" in report
        assert "drift" in report
