"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import HyRecConfig
from repro.core.server import HyRecServer
from repro.core.system import HyRecSystem
from repro.datasets import load_dataset
from repro.datasets.schema import Rating, Trace


@pytest.fixture(scope="session")
def ml1_small() -> Trace:
    """A tiny binarized ML1-shaped trace shared across tests."""
    return load_dataset("ML1", scale=0.03, seed=1234)


@pytest.fixture(scope="session")
def digg_small() -> Trace:
    """A tiny binarized Digg-shaped trace shared across tests."""
    return load_dataset("Digg", scale=0.003, seed=1234)


@pytest.fixture()
def toy_trace() -> Trace:
    """A hand-built 4-user trace with known structure.

    Users 0 and 1 share items 10, 11; users 2 and 3 share items 20,
    21; user 0 also disliked item 20.
    """
    ratings = [
        Rating(timestamp=1.0, user=0, item=10, value=1.0),
        Rating(timestamp=2.0, user=0, item=11, value=1.0),
        Rating(timestamp=3.0, user=0, item=20, value=0.0),
        Rating(timestamp=4.0, user=1, item=10, value=1.0),
        Rating(timestamp=5.0, user=1, item=11, value=1.0),
        Rating(timestamp=6.0, user=2, item=20, value=1.0),
        Rating(timestamp=7.0, user=2, item=21, value=1.0),
        Rating(timestamp=8.0, user=3, item=20, value=1.0),
        Rating(timestamp=9.0, user=3, item=21, value=1.0),
    ]
    return Trace("toy", ratings)


@pytest.fixture()
def loaded_server(toy_trace: Trace) -> HyRecServer:
    """A server with the toy trace's ratings recorded."""
    server = HyRecServer(HyRecConfig(k=2, r=3), seed=7)
    for rating in toy_trace:
        server.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
    return server


@pytest.fixture()
def replayed_system(ml1_small: Trace) -> HyRecSystem:
    """A HyRec system that has replayed the small ML1 trace."""
    system = HyRecSystem(HyRecConfig(k=5, r=5), seed=99)
    system.replay(ml1_small)
    return system
