"""End-to-end tests of the asyncio front door over real sockets.

Twin-server methodology: the same trace is loaded into two servers
built from the same config and seed -- one mounted behind
:class:`AsyncHyRecServer`, one driven in-process through
:class:`WebApi`.  ``/online`` is not a pure function (each request
advances the sampler RNG, the request counter, and the anonymizer
epoch), so issuing the *same request sequence* against both must yield
byte-identical responses when the cache is off -- wire metering
included.  With the cache on, the contract weakens to *previously
rendered* responses with bounded staleness (``cache_ttl``), and a
user's own write invalidates immediately.
"""

from __future__ import annotations

import http.client
import threading
import time

import pytest

from repro.core.api import WebApi
from repro.core.client import HyRecWidget
from repro.core.config import HyRecConfig
from repro.core.jobs import PersonalizationJob
from repro.core.server import HyRecServer
from repro.datasets.schema import Trace
from repro.web.async_server import AsyncHyRecServer


def build_server(toy_trace: Trace, **overrides: object) -> HyRecServer:
    """One deterministic toy-trace server; call twice for twins."""
    server = HyRecServer(HyRecConfig(k=2, r=3, **overrides), seed=7)
    for rating in toy_trace:
        server.record_rating(
            rating.user, rating.item, rating.value, rating.timestamp
        )
    return server


def http_get(
    connection: http.client.HTTPConnection, path: str
) -> tuple[int, dict[str, str], bytes]:
    connection.request("GET", path)
    response = connection.getresponse()
    body = response.read()
    headers = {key.lower(): value for key, value in response.getheaders()}
    return response.status, headers, body


ENGINES = [
    pytest.param({}, id="vectorized"),
    pytest.param(
        {"engine": "sharded", "num_shards": 2, "executor": "process"},
        id="sharded-process",
    ),
]


class TestByteParity:
    """Cache off: the HTTP path is byte-identical to in-process."""

    @pytest.mark.parametrize("engine_kwargs", ENGINES)
    def test_online_sequence_matches_in_process(self, toy_trace, engine_kwargs):
        behind_http = build_server(toy_trace, **engine_kwargs)
        in_process = build_server(toy_trace, **engine_kwargs)
        replica = WebApi(in_process)
        sequence = [0, 1, 2, 3, 1, 0, 3, 2, 0, 0, 2, 1]
        try:
            with AsyncHyRecServer(behind_http, cache_ttl=0.0) as door:
                connection = http.client.HTTPConnection(*door.address, timeout=30)
                try:
                    for uid in sequence:
                        status, headers, body = http_get(
                            connection, f"/online/?uid={uid}"
                        )
                        assert status == 200
                        # Cache off means no cache headers at all.
                        assert "x-cache" not in headers
                        assert body == replica.online(uid)
                finally:
                    connection.close()
            # Figure 10 wire metering must tick identically: the front
            # door serves through the same metered render path.
            assert (
                behind_http.meter.total_wire_bytes
                == in_process.meter.total_wire_bytes
            )
            assert (
                behind_http.stats.online_requests
                == in_process.stats.online_requests
                == len(sequence)
            )
        finally:
            behind_http.close()
            in_process.close()

    @pytest.mark.parametrize("engine_kwargs", ENGINES)
    def test_full_widget_cycle_matches_in_process(self, toy_trace, engine_kwargs):
        """online -> widget KNN -> /neighbors, twinned step by step."""
        behind_http = build_server(toy_trace, **engine_kwargs)
        in_process = build_server(toy_trace, **engine_kwargs)
        replica = WebApi(in_process)
        try:
            with AsyncHyRecServer(behind_http, cache_ttl=0.0) as door:
                connection = http.client.HTTPConnection(*door.address, timeout=30)
                try:
                    for uid in (0, 2):
                        status, _, wire = http_get(
                            connection, f"/online/?uid={uid}"
                        )
                        assert status == 200
                        twin_wire = replica.online(uid)
                        assert wire == twin_wire
                        job = PersonalizationJob.from_payload(
                            replica.decode(wire)
                        )
                        result = HyRecWidget().process_job(job)
                        query = "&".join(
                            [f"uid={uid}"]
                            + [
                                f"id{i}={token}"
                                for i, token in enumerate(result.neighbor_tokens)
                            ]
                        )
                        status, _, body = http_get(
                            connection, f"/neighbors/?{query}"
                        )
                        assert status == 200
                        assert body == replica.neighbors(
                            uid,
                            {
                                f"id{i}": token
                                for i, token in enumerate(result.neighbor_tokens)
                            },
                        )
                finally:
                    connection.close()
            assert behind_http.stats.knn_updates == in_process.stats.knn_updates == 2
        finally:
            behind_http.close()
            in_process.close()


class TestConcurrentClients:
    @pytest.mark.parametrize("engine_kwargs", ENGINES)
    def test_parallel_clients_all_served(self, toy_trace, engine_kwargs):
        server = build_server(toy_trace, **engine_kwargs)
        api = WebApi(server)
        clients, per_client = 6, 8
        failures: list[str] = []

        def client(slot: int, address: tuple[str, int]) -> None:
            connection = http.client.HTTPConnection(*address, timeout=30)
            try:
                for i in range(per_client):
                    uid = (slot + i) % 4
                    status, _, body = http_get(connection, f"/online/?uid={uid}")
                    if status != 200:
                        failures.append(f"slot {slot}: status {status}")
                        return
                    # Interleaving makes bytes non-deterministic, but
                    # every response must still parse into a valid job.
                    PersonalizationJob.from_payload(api.decode(body))
            except Exception as error:  # noqa: BLE001 - report to main thread
                failures.append(f"slot {slot}: {error!r}")
            finally:
                connection.close()

        try:
            with AsyncHyRecServer(server, cache_ttl=0.0) as door:
                threads = [
                    threading.Thread(target=client, args=(slot, door.address))
                    for slot in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
            assert not failures, failures[:3]
            assert server.stats.online_requests == clients * per_client
        finally:
            server.close()


class TestBoundedStaleness:
    """Cache on: previously-rendered responses, never older than ttl."""

    def test_hit_serves_rendered_bytes_until_ttl(self, toy_trace):
        ttl = 0.6
        server = build_server(toy_trace)
        try:
            with AsyncHyRecServer(server, cache_ttl=ttl) as door:
                connection = http.client.HTTPConnection(*door.address, timeout=30)
                try:
                    status, headers, first = http_get(connection, "/online/?uid=0")
                    rendered_at = time.monotonic()
                    assert status == 200 and headers["x-cache"] == "miss"

                    status, headers, second = http_get(connection, "/online/?uid=0")
                    assert status == 200 and headers["x-cache"] == "hit"
                    # The hit is the previously-rendered response,
                    # byte for byte, and is within the staleness bound.
                    assert second == first
                    assert time.monotonic() - rendered_at < ttl
                    # A hit does not re-render: engine counter is still 1.
                    assert server.stats.online_requests == 1

                    time.sleep(ttl + 0.3)
                    status, headers, third = http_get(connection, "/online/?uid=0")
                    assert status == 200 and headers["x-cache"] == "miss"
                    assert server.stats.online_requests == 2
                finally:
                    connection.close()
        finally:
            server.close()

    def test_own_write_invalidates_immediately(self, toy_trace):
        server = build_server(toy_trace)
        api = WebApi(server)  # decode helper only; shares the server
        try:
            with AsyncHyRecServer(server, cache_ttl=60.0) as door:
                connection = http.client.HTTPConnection(*door.address, timeout=30)
                try:
                    _, headers, wire = http_get(connection, "/online/?uid=0")
                    assert headers["x-cache"] == "miss"
                    _, headers, _ = http_get(connection, "/online/?uid=0")
                    assert headers["x-cache"] == "hit"

                    # The user's write path: her widget posts a KNN
                    # update through /neighbors/.
                    job = PersonalizationJob.from_payload(api.decode(wire))
                    result = HyRecWidget().process_job(job)
                    query = "&".join(
                        ["uid=0"]
                        + [
                            f"id{i}={token}"
                            for i, token in enumerate(result.neighbor_tokens)
                        ]
                    )
                    status, _, _ = http_get(connection, f"/neighbors/?{query}")
                    assert status == 200

                    # Well inside the TTL, yet the entry is gone.
                    _, headers, _ = http_get(connection, "/online/?uid=0")
                    assert headers["x-cache"] == "miss"
                    # Other users' entries are untouched by user 0's write.
                    _, headers, _ = http_get(connection, "/online/?uid=2")
                    assert headers["x-cache"] == "miss"
                    _, headers, _ = http_get(connection, "/online/?uid=2")
                    assert headers["x-cache"] == "hit"
                    assert door.cache.stats.invalidations == 1
                finally:
                    connection.close()
        finally:
            server.close()


class TestHttpSurface:
    def test_unknown_path_404_and_bad_uid_400(self, loaded_server):
        with AsyncHyRecServer(loaded_server, cache_ttl=0.0) as door:
            connection = http.client.HTTPConnection(*door.address, timeout=30)
            try:
                status, _, _ = http_get(connection, "/nope/")
                assert status == 404
                status, _, _ = http_get(connection, "/online/?uid=banana")
                assert status == 400
                status, _, _ = http_get(connection, "/online/")
                assert status == 400
            finally:
                connection.close()

    def test_stats_and_metrics_surface(self, loaded_server):
        from repro.messages import decode_json

        with AsyncHyRecServer(loaded_server, cache_ttl=30.0) as door:
            connection = http.client.HTTPConnection(*door.address, timeout=30)
            try:
                http_get(connection, "/online/?uid=0")
                http_get(connection, "/online/?uid=0")
                status, _, body = http_get(connection, "/stats/")
                assert status == 200
                stats = decode_json(body)
                assert stats["cache_enabled"] is True
                assert stats["cache_hits"] == 1
                assert stats["cache_misses"] == 1
                assert stats["online_requests"] == 1
                assert stats["shed_requests"] == 0

                status, _, body = http_get(connection, "/metrics")
                assert status == 200
                text = body.decode("utf-8")
                assert "hyrec_http_cache_hits_total 1" in text
                assert (
                    'hyrec_http_requests_total{endpoint="/online",status="200"} 2'
                    in text
                )
            finally:
                connection.close()
