"""Docs stay honest: links resolve and knob docs track the config.

Two cheap, deterministic checks that CI runs as the docs gate:

* every relative markdown link in ``README.md`` and ``docs/*.md``
  points at a file that exists (dead links fail the build), and
* ``docs/engines.md`` mentions every ``HyRecConfig`` field, so adding
  a knob without documenting it -- or documenting a knob that no
  longer exists -- is caught at test time.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

import pytest

from repro.core.config import HyRecConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

# [text](target) -- excluding images and code spans is unnecessary at
# this repo's scale; external and intra-page targets are filtered out.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: pathlib.Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


class TestDocLinks:
    @pytest.mark.parametrize(
        "path", DOC_FILES, ids=[p.name for p in DOC_FILES]
    )
    def test_relative_links_resolve(self, path):
        missing = [
            target
            for target in _relative_links(path)
            if not (path.parent / target).exists()
        ]
        assert not missing, f"dead links in {path.name}: {missing}"

    def test_docs_exist_and_are_linked_from_readme(self):
        readme_links = set(_relative_links(REPO_ROOT / "README.md"))
        assert "docs/architecture.md" in readme_links
        assert "docs/engines.md" in readme_links
        assert "docs/observability.md" in readme_links
        assert "docs/http.md" in readme_links


class TestConfigDrift:
    def test_engines_doc_covers_every_config_field(self):
        documented = (REPO_ROOT / "docs" / "engines.md").read_text()
        missing = [
            field.name
            for field in dataclasses.fields(HyRecConfig)
            if f"`{field.name}`" not in documented
        ]
        assert not missing, (
            "HyRecConfig fields missing from docs/engines.md: "
            f"{missing} -- document the knob (or prune it)"
        )

    def test_engines_doc_names_no_phantom_executors(self):
        # The executor table must list exactly the names the config
        # accepts; keep the two in sync by hand when adding one.
        from repro.cluster.executors import EXECUTOR_NAMES

        documented = (REPO_ROOT / "docs" / "engines.md").read_text()
        for name in EXECUTOR_NAMES:
            assert f'`"{name}"`' in documented, (
                f"executor {name!r} undocumented in docs/engines.md"
            )
