"""Tests for the JSON + gzip wire format and bandwidth meters."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.messages import (
    MessageMeter,
    decode_json,
    encode_json,
    gzip_compress,
    gzip_decompress,
    wire_sizes,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


class TestJsonCodec:
    def test_round_trip(self):
        payload = {"u": "tok", "p": {"1": 1.0}, "k": 10}
        assert decode_json(encode_json(payload)) == payload

    def test_compact_encoding(self):
        wire = encode_json({"a": [1, 2]})
        assert b" " not in wire

    def test_deterministic_key_order(self):
        a = encode_json({"b": 1, "a": 2})
        b = encode_json({"a": 2, "b": 1})
        assert a == b

    def test_unicode_survives(self):
        payload = {"title": "cinéma vérité ★"}
        assert decode_json(encode_json(payload)) == payload

    @given(payload=json_values)
    def test_round_trip_property(self, payload):
        assert decode_json(encode_json(payload)) == payload


class TestGzip:
    def test_round_trip(self):
        data = b"x" * 10_000
        assert gzip_decompress(gzip_compress(data)) == data

    def test_compresses_redundant_data(self):
        data = encode_json({str(i): 1.0 for i in range(1000)})
        assert len(gzip_compress(data)) < len(data) / 2

    def test_deterministic_output(self):
        data = b"hello world" * 100
        assert gzip_compress(data) == gzip_compress(data)

    def test_wire_sizes_pair(self):
        payload = {str(i): 1.0 for i in range(100)}
        raw, compressed = wire_sizes(payload)
        assert raw == len(encode_json(payload))
        assert compressed < raw


class TestMessageMeter:
    def test_record_payload_counts(self):
        meter = MessageMeter()
        raw, wire = meter.record_payload("down", {"a": 1})
        reading = meter.reading("down")
        assert reading.messages == 1
        assert reading.raw_bytes == raw
        assert reading.wire_bytes == wire

    def test_uncompressed_channel(self):
        meter = MessageMeter()
        raw, wire = meter.record_payload("down", {"a": 1}, compress=False)
        assert raw == wire

    def test_totals_across_channels(self):
        meter = MessageMeter()
        meter.record_payload("down", {"a": 1})
        meter.record_payload("up", {"b": 2})
        assert meter.total_messages == 2
        assert meter.total_wire_bytes == (
            meter.reading("down").wire_bytes + meter.reading("up").wire_bytes
        )

    def test_compression_ratio(self):
        meter = MessageMeter()
        meter.record_payload("down", {str(i): 1.0 for i in range(500)})
        assert 0.0 < meter.reading("down").compression_ratio < 1.0

    def test_unused_channel_zeroes(self):
        reading = MessageMeter().reading("nothing")
        assert reading.messages == 0
        assert reading.compression_ratio == 0.0

    def test_reset(self):
        meter = MessageMeter()
        meter.record_payload("down", {"a": 1})
        meter.reset()
        assert meter.total_messages == 0

    def test_record_bytes_direct(self):
        meter = MessageMeter()
        meter.record_bytes("x", raw=100, wire=30)
        meter.record_bytes("x", raw=50, wire=20)
        reading = meter.reading("x")
        assert reading.raw_bytes == 150
        assert reading.wire_bytes == 50
        assert reading.messages == 2


class TestFragmentGzip:
    """The spliced-gzip fast path must be a valid, faithful gzip member."""

    def _segments(self, chunks):
        from repro.messages import FragmentGzipWriter, deflate_segment

        writer = FragmentGzipWriter()
        for kind, data in chunks:
            if kind == "literal":
                writer.write(data)
            else:
                writer.write_deflated(deflate_segment(data), data)
        return writer.finish(), b"".join(data for _, data in chunks)

    def test_literal_only(self):
        wire, raw = self._segments([("literal", b"hello world" * 50)])
        assert gzip_decompress(wire) == raw

    def test_spliced_only(self):
        wire, raw = self._segments([("spliced", b"abcdef" * 200)])
        assert gzip_decompress(wire) == raw

    def test_interleaved(self):
        chunks = [
            ("literal", b'{"c":{'),
            ("spliced", b'{"1":1.0,"2":0.0}' * 30),
            ("literal", b',"x":'),
            ("spliced", b'{"9":1.0}' * 50),
            ("literal", b"}"),
        ]
        wire, raw = self._segments(chunks)
        assert gzip_decompress(wire) == raw

    def test_many_splices(self):
        chunks = []
        for index in range(120):
            chunks.append(("literal", b'"k%d":' % index))
            chunks.append(("spliced", b'{"item":%d}' % index))
        wire, raw = self._segments(chunks)
        assert gzip_decompress(wire) == raw

    def test_compresses(self):
        payload = encode_json({str(i): 1.0 for i in range(2000)})
        wire, raw = self._segments([("spliced", payload)])
        assert len(wire) < len(raw) / 2

    def test_writer_single_use(self):
        from repro.messages import FragmentGzipWriter

        writer = FragmentGzipWriter()
        writer.write(b"x")
        writer.finish()
        with pytest.raises(RuntimeError):
            writer.write(b"y")
        with pytest.raises(RuntimeError):
            writer.finish()

    def test_raw_size_tracks_uncompressed(self):
        from repro.messages import FragmentGzipWriter, deflate_segment

        writer = FragmentGzipWriter()
        writer.write(b"abc")
        writer.write_deflated(deflate_segment(b"defgh"), b"defgh")
        assert writer.raw_size == 8
