"""Tests for the HyRec candidate-set sampler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampler import HyRecSampler
from repro.core.tables import KnnTable


def make_sampler(k=3, users=20, rng=0, **kwargs) -> tuple[HyRecSampler, KnnTable]:
    table = KnnTable()
    sampler = HyRecSampler(
        table, user_registry=list(range(users)), k=k, rng=rng, **kwargs
    )
    return sampler, table


class TestSamplerComposition:
    def test_includes_current_neighbors(self):
        sampler, table = make_sampler()
        table.update(0, [1, 2, 3])
        sample = sampler.sample(0)
        assert {1, 2, 3} <= sample

    def test_includes_two_hop_neighbors(self):
        sampler, table = make_sampler()
        table.update(0, [1])
        table.update(1, [5, 6])
        sample = sampler.sample(0)
        assert {1, 5, 6} <= sample

    def test_two_hop_disabled(self):
        sampler, table = make_sampler(include_two_hop=False, users=200, k=3)
        table.update(0, [1])
        table.update(1, [150, 151])
        # Two-hop users 150/151 can only appear via random draws, which
        # are unlikely to hit exactly them in a 200-user registry; check
        # several draws never *require* them.
        sample = sampler.sample(0)
        assert 1 in sample
        # The sample should be tiny: 1 neighbor + k randoms at most.
        assert len(sample) <= 1 + 3

    def test_never_contains_self(self):
        sampler, table = make_sampler()
        table.update(0, [0, 1] if False else [1])  # table rejects self anyway
        for _ in range(20):
            assert 0 not in sampler.sample(0)

    def test_random_component_size(self):
        sampler, _ = make_sampler(k=5, users=100)
        # No neighbors yet: the sample is exactly the random component.
        sample = sampler.sample(0)
        assert len(sample) == 5

    def test_num_random_zero(self):
        sampler, table = make_sampler(num_random=0)
        table.update(0, [1])
        assert sampler.sample(0) == {1}

    def test_empty_everything(self):
        table = KnnTable()
        sampler = HyRecSampler(table, user_registry=[], k=3, rng=0)
        assert sampler.sample(0) == set()

    def test_registry_smaller_than_request(self):
        sampler, _ = make_sampler(k=10, users=4)
        sample = sampler.sample(0)
        # Can draw at most the 3 other registered users.
        assert sample == {1, 2, 3}


class TestSamplerBounds:
    def test_max_candidate_size_formula(self):
        sampler, _ = make_sampler(k=10)
        assert sampler.max_candidate_size() == 120

    @settings(max_examples=30)
    @given(k=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_sample_never_exceeds_bound(self, k, seed):
        table = KnnTable()
        users = list(range(300))
        sampler = HyRecSampler(table, user_registry=users, k=k, rng=seed)
        import random

        rng = random.Random(seed)
        for user in range(30):
            neighbors = rng.sample(users, k + 1)
            table.update(user, [n for n in neighbors if n != user][:k])
        for user in range(30):
            sample = sampler.sample(user)
            assert len(sample) <= 2 * k + k * k
            assert user not in sample


class TestSamplerRegistry:
    def test_register_user_is_idempotent(self):
        sampler, _ = make_sampler(users=5)
        sampler.register_user(2)
        sampler.register_user(2)
        assert sampler.population == 5

    def test_new_registration_becomes_sampleable(self):
        sampler, _ = make_sampler(users=0)
        assert sampler.sample(0) == set()
        sampler.register_user(1)
        sampler.register_user(2)
        # With only users 1,2 registered, sampling for 0 must find them.
        assert sampler.sample(0) == {1, 2}


class TestSizeHistory:
    def test_history_records_when_time_given(self):
        sampler, _ = make_sampler()
        sampler.sample(0, now=5.0)
        sampler.sample(0, now=6.0)
        history = sampler.size_history
        assert len(history) == 2
        assert history[0][0] == 5.0

    def test_history_skipped_without_time(self):
        sampler, _ = make_sampler()
        sampler.sample(0)
        assert sampler.size_history == []

    def test_clear_history(self):
        sampler, _ = make_sampler()
        sampler.sample(0, now=1.0)
        sampler.clear_history()
        assert sampler.size_history == []


class TestSamplerValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be at least 1"):
            HyRecSampler(KnnTable(), k=0)

    def test_negative_num_random(self):
        with pytest.raises(ValueError, match="num_random"):
            HyRecSampler(KnnTable(), k=2, num_random=-1)
