"""Tests for the numpy exact-KNN index against the pure-Python path."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact import ExactKnnIndex, exact_knn_table
from repro.core.knn import knn_select
from repro.core.similarity import cosine, jaccard, overlap

liked_maps = st.dictionaries(
    keys=st.integers(0, 30),
    values=st.frozensets(st.integers(0, 40), max_size=12),
    min_size=2,
    max_size=18,
)


class TestExactIndex:
    def test_topk_matches_pure_python(self):
        liked = {
            1: frozenset({1, 2, 3}),
            2: frozenset({1, 2}),
            3: frozenset({7, 8}),
            4: frozenset({2, 3}),
        }
        index = ExactKnnIndex(liked)
        for user in liked:
            fast = index.topk(user, k=2)
            slow = knn_select(liked[user], liked, k=2, exclude=user)
            assert [n.user_id for n in fast] == [n.user_id for n in slow]
            for a, b in zip(fast, slow):
                assert a.score == pytest.approx(b.score, abs=1e-5)

    def test_table_matches_topk(self):
        liked = {u: frozenset({u % 3, u % 5, 10}) for u in range(12)}
        index = ExactKnnIndex(liked)
        table = index.table(k=3)
        for user in liked:
            assert table[user] == [n.user_id for n in index.topk(user, 3)]

    def test_blocking_invariant(self):
        liked = {u: frozenset({u % 4, 50}) for u in range(20)}
        index = ExactKnnIndex(liked)
        assert index.table(k=3, block=4) == index.table(k=3, block=64)

    def test_pair_similarity_matches_set_cosine(self):
        liked = {1: frozenset({1, 2, 3}), 2: frozenset({2, 3, 4, 5})}
        index = ExactKnnIndex(liked)
        assert index.pair_similarity(1, 2) == pytest.approx(
            cosine(liked[1], liked[2])
        )

    def test_jaccard_metric(self):
        liked = {1: frozenset({1, 2}), 2: frozenset({2, 3, 4})}
        index = ExactKnnIndex(liked, metric="jaccard")
        assert index.pair_similarity(1, 2) == pytest.approx(
            jaccard(liked[1], liked[2])
        )

    def test_overlap_metric(self):
        liked = {1: frozenset({1, 2}), 2: frozenset({2, 3, 4})}
        index = ExactKnnIndex(liked, metric="overlap")
        assert index.pair_similarity(1, 2) == pytest.approx(
            overlap(liked[1], liked[2])
        )

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ExactKnnIndex({1: frozenset()}, metric="euclidean")

    def test_empty_profiles_handled(self):
        liked = {1: frozenset(), 2: frozenset({1}), 3: frozenset({1})}
        index = ExactKnnIndex(liked)
        result = index.topk(1, k=2)
        assert len(result) == 2
        assert all(n.score == 0.0 for n in result)

    def test_single_user(self):
        index = ExactKnnIndex({1: frozenset({1})})
        assert index.topk(1, k=5) == []

    def test_invalid_k(self):
        index = ExactKnnIndex({1: frozenset({1}), 2: frozenset({1})})
        with pytest.raises(ValueError):
            index.topk(1, k=0)
        with pytest.raises(ValueError):
            index.table(k=0)

    def test_exact_knn_table_empty(self):
        assert exact_knn_table({}, k=3) == {}


class TestExactVsPurePython:
    @settings(max_examples=40, deadline=None)
    @given(liked=liked_maps, k=st.integers(1, 6))
    def test_tables_agree(self, liked, k):
        """The numpy path and Algorithm 1 must agree everywhere."""
        table = exact_knn_table(liked, k=k)
        for user in liked:
            expected = knn_select(liked[user], liked, k=k, exclude=user)
            assert table[user] == [n.user_id for n in expected]
