"""Churn-driven rebalancing: movable placement + live shard handoff.

The acceptance bar of the rebalancing layer: *migrations move load,
never results*.  The churn suite replays the random ML-style trace of
``tests/test_cluster_parity.py`` while forcibly migrating placement
buckets mid-stream (every N writes) and asserts the full digest --
per-request results, the KNN table, and byte-exact wire metering --
equals the unsharded vectorized engine's, for 1/2/4/8 shards under
all three executors.  On top sit hypothesis property tests for the
rendezvous placement map (stability under shard add/remove, partition
totality, epoch round trips) and unit tests for the
:class:`~repro.cluster.rebalance.ShardRebalancer` control loop.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterCoordinator,
    PlacementMap,
    ProcessExecutor,
    ShardRebalancer,
)
from repro.cluster.placement import bucket_of_id, rendezvous_owner
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from parity import random_trace, replay_digest as _replay_digest

SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("serial", "thread", "process")


class ChurnDriver:
    """Forces a bucket migration every ``every`` table writes.

    Registered as a table listener *after* the system is built, so the
    engine's own write routing always precedes the forced churn --
    exactly the ordering a cadence-driven rebalancer sees.  Buckets
    are chosen deterministically (a fixed stride over the bucket
    space) and each moves to the next shard round-robin, so every
    replay of the same trace migrates identically.
    """

    def __init__(self, system: HyRecSystem, every: int) -> None:
        cluster = system.server.cluster
        assert cluster is not None
        self.cluster = cluster
        self.every = every
        self.writes = 0
        self.moves = 0
        system.server.profiles.add_listener(self._on_write)

    def _on_write(self, user_id, item, value, previous) -> None:
        del user_id, item, value, previous
        self.writes += 1
        placement = self.cluster.placement
        if placement.num_shards < 2 or self.writes % self.every:
            return
        bucket = (self.moves * 17) % placement.num_buckets
        owner = placement.owner_of(bucket)
        self.cluster.migrate_bucket(
            bucket, (owner + 1) % placement.num_shards
        )
        self.moves += 1


class TestChurnParity:
    """Forced mid-replay migrations leave every output bit unchanged."""

    @pytest.fixture(scope="class")
    def trace(self):
        return random_trace(random.Random(41), users=30, items=90, n=300, name="rebalance-churn")

    @pytest.fixture(scope="class")
    def reference(self, trace):
        return _replay_digest(
            HyRecSystem(HyRecConfig(k=5, r=6, engine="vectorized"), seed=23),
            trace,
        )

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_migrations_mid_replay_keep_parity(
        self, trace, reference, num_shards, executor
    ):
        system = HyRecSystem(
            HyRecConfig(
                k=5,
                r=6,
                engine="sharded",
                num_shards=num_shards,
                executor=executor,
            ),
            seed=23,
        )
        driver = ChurnDriver(system, every=40)
        try:
            digest = _replay_digest(system, trace)
            stats = system.server.stats
        finally:
            system.close()
        if num_shards > 1:
            assert driver.moves > 0  # churn actually happened
            assert stats.placement_version == driver.moves
            assert stats.migrations == driver.moves
        assert digest == reference, (
            f"churn @ {num_shards} shards / {executor} diverged"
        )

    def test_cadence_rebalancer_keeps_parity(self, trace, reference):
        # The real control loop (write-count cadence, threshold-driven
        # proposals, scheduler drain) instead of forced moves.
        system = HyRecSystem(
            HyRecConfig(
                k=5,
                r=6,
                engine="sharded",
                num_shards=4,
                executor="process",
                rebalance_interval=50,
                rebalance_threshold=1.05,
                rebalance_max_moves=8,
            ),
            seed=23,
        )
        try:
            digest = _replay_digest(system, trace)
            stats = system.server.stats
        finally:
            system.close()
        assert stats.migrations > 0  # the cadence found real imbalance
        assert stats.placement_version == stats.migrations
        assert digest == reference

    def test_migration_between_open_windows_keeps_parity(self):
        # request_batch windows before and after a migration must both
        # match an identical migration-free deployment.
        rng = random.Random(7)
        ratings = [
            (uid, item)
            for uid in range(20)
            for item in rng.sample(range(60), 8)
        ]
        config = HyRecConfig(
            k=3, r=4, engine="sharded", num_shards=4, batch_window=4
        )
        systems = [HyRecSystem(config, seed=3) for _ in range(2)]
        for system in systems:
            for uid, item in ratings:
                system.record_rating(uid, item, 1.0)
        waves = []
        for index, system in enumerate(systems):
            outcome_waves = [system.request_batch([0, 1, 2, 3], now=0.0)]
            if index == 1:  # migrate only in the second system
                placement = system.server.cluster.placement
                bucket = placement.bucket_of(1)
                system.server.cluster.migrate_bucket(
                    bucket, (placement.owner_of(bucket) + 1) % 4
                )
            outcome_waves.append(system.request_batch([0, 1, 2, 3], now=1.0))
            waves.append(
                [
                    (o.result, tuple(o.recommendations))
                    for wave in outcome_waves
                    for o in wave
                ]
            )
            system.close()
        assert waves[0] == waves[1]


# --- placement-map properties ------------------------------------------------

shard_counts = st.integers(min_value=1, max_value=12)
bucket_counts = st.integers(min_value=16, max_value=96)
ids64 = st.integers(min_value=0, max_value=2**53)


class TestPlacementProperties:
    @given(num_shards=shard_counts, num_buckets=bucket_counts)
    def test_rendezvous_add_shard_moves_only_winners(
        self, num_shards, num_buckets
    ):
        # Adding shard N reassigns exactly the buckets N wins; every
        # other bucket keeps its owner.  (Read right-to-left this is
        # also the removal property: dropping the last shard moves
        # only the buckets it owned.)
        before = PlacementMap(num_shards, num_buckets).owners()
        after = PlacementMap(num_shards + 1, num_buckets).owners()
        for bucket in range(num_buckets):
            if after[bucket] != before[bucket]:
                assert after[bucket] == num_shards
        # and the winners are exactly the rendezvous winners
        for bucket in range(num_buckets):
            assert after[bucket] == rendezvous_owner(bucket, num_shards + 1)

    @given(
        num_shards=st.integers(min_value=2, max_value=8),
        num_buckets=bucket_counts,
        user_ids=st.lists(ids64, max_size=60),
        moves=st.lists(
            st.tuples(st.integers(0, 95), st.integers(0, 7)), max_size=10
        ),
    )
    def test_partition_is_a_partition_under_any_owner_table(
        self, num_shards, num_buckets, user_ids, moves
    ):
        # No candidate is ever dropped or duplicated, before or after
        # arbitrary bucket moves, duplicates in the input included.
        placement = PlacementMap(num_shards, num_buckets)
        for bucket, shard in moves:
            bucket %= num_buckets
            shard %= num_shards
            if placement.owner_of(bucket) != shard:
                placement.move_bucket(bucket, shard)
        parts = placement.partition(user_ids)
        assert len(parts) == num_shards
        reassembled = np.full(len(user_ids), -1, dtype=np.int64)
        for shard, (ids, positions) in enumerate(parts):
            assert ids.size == positions.size
            assert positions.tolist() == sorted(positions.tolist())
            for uid, position in zip(ids.tolist(), positions.tolist()):
                assert reassembled[position] == -1  # no duplicates
                reassembled[position] = uid
                assert placement.shard_of(uid) == shard
        assert reassembled.tolist() == [int(u) for u in user_ids]  # none dropped

    @given(num_shards=shard_counts, num_buckets=bucket_counts, ids=st.lists(ids64, max_size=50))
    def test_vectorized_lookups_match_scalar(self, num_shards, num_buckets, ids):
        placement = PlacementMap(num_shards, num_buckets)
        arr = np.asarray(ids, dtype=np.int64)
        assert placement.buckets_of(arr).tolist() == [
            placement.bucket_of(int(u)) for u in ids
        ]
        assert placement.shards_of(arr).tolist() == [
            placement.shard_of(int(u)) for u in ids
        ]
        for uid in ids[:10]:
            assert bucket_of_id(uid, num_buckets) == placement.bucket_of(uid)

    @given(num_buckets=bucket_counts)
    @settings(max_examples=25)
    def test_move_bucket_bumps_version_by_one(self, num_buckets):
        placement = PlacementMap(4, num_buckets)
        assert placement.version == 0
        bucket = 0
        owner = placement.owner_of(bucket)
        assert placement.move_bucket(bucket, (owner + 1) % 4) == 1
        assert placement.version == 1
        assert placement.owner_of(bucket) == (owner + 1) % 4
        with pytest.raises(ValueError, match="already lives"):
            placement.move_bucket(bucket, (owner + 1) % 4)
        with pytest.raises(ValueError, match="out of range"):
            placement.move_bucket(bucket, 4)
        with pytest.raises(ValueError, match="out of range"):
            placement.owner_of(num_buckets)
        assert placement.version == 1  # failed moves never bump

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            PlacementMap(0)
        with pytest.raises(ValueError, match="bucket per shard"):
            PlacementMap(8, num_buckets=4)

    @given(
        version=st.integers(min_value=0, max_value=2**31),
        bucket=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30)
    def test_map_version_round_trips_through_transport(self, version, bucket):
        from repro.cluster.transport import (
            HandoffData,
            HandoffRequest,
            Hello,
            JobSlices,
            MapUpdate,
            decode_message,
            encode_message,
        )

        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        frames = [
            MapUpdate(version=version),
            HandoffRequest(bucket=bucket, version=version),
            HandoffData(
                bucket=bucket,
                version=version,
                user_ids=empty_i,
                items=empty_i,
                values=empty_f,
            ),
            JobSlices(batch_id=1, truncate=True, slices=(), map_version=version),
            Hello(shard=0, num_shards=2, num_buckets=bucket + 1,
                  map_version=version),
        ]
        for frame in frames:
            decoded, consumed = decode_message(encode_message(frame))
            assert consumed == len(encode_message(frame))
            for field in ("version", "map_version", "bucket", "num_buckets"):
                if hasattr(frame, field):
                    assert getattr(decoded, field) == getattr(frame, field)


# --- the rebalancer control loop ---------------------------------------------


def _users_in_bucket(placement: PlacementMap, bucket: int, count: int):
    """The first ``count`` user ids hashing into ``bucket``."""
    users = []
    for uid in range(200_000):
        if placement.bucket_of(uid) == bucket:
            users.append(uid)
            if len(users) == count:
                return users
    raise AssertionError(f"bucket {bucket} too sparse in the scan range")


def _load_skew(table: ProfileTable, placement: PlacementMap) -> int:
    """Put all 60 writes on shard 0: 50 in one bucket, 10 in a sibling.

    Two loaded buckets matter: a single bucket holding *all* of a
    shard's load can never improve the donor/receiver spread by
    moving (it would just swap roles), so the rebalancer correctly
    refuses it.  Returns the hot (50-write) bucket.
    """
    buckets = placement.buckets_owned_by(0)
    assert buckets.size >= 2
    hot_bucket, warm_bucket = int(buckets[0]), int(buckets[1])
    for bucket, num_users in ((hot_bucket, 5), (warm_bucket, 1)):
        for uid in _users_in_bucket(placement, bucket, num_users):
            for item in range(10):
                table.record(uid, item, 1.0)
    return hot_bucket


def _skewed_cluster(num_shards: int = 4, executor=None):
    """A cluster whose entire write load sits on shard 0."""
    table = ProfileTable()
    coordinator = ClusterCoordinator(table, num_shards, executor=executor)
    rebalancer = ShardRebalancer(coordinator, threshold=1.5, max_moves=4)
    hot_bucket = _load_skew(table, coordinator.placement)
    return table, coordinator, rebalancer, hot_bucket


class TestShardRebalancer:
    def test_moves_hot_bucket_and_reduces_imbalance(self):
        _, coordinator, rebalancer, hot_bucket = _skewed_cluster()
        before = rebalancer.imbalance()
        moves = rebalancer.rebalance()
        after = rebalancer.imbalance()
        assert moves, "a 60:1 skew must trigger at threshold 1.5"
        assert any(move.bucket == hot_bucket for move in moves)
        assert after < before
        assert all(
            move.version == index + 1 for index, move in enumerate(moves)
        )
        assert coordinator.placement.version == len(moves)
        rebalancer.close()

    def test_balanced_cluster_proposes_nothing(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 2)
        rebalancer = ShardRebalancer(coordinator, threshold=2.0)
        # Spread writes evenly across both shards.
        placement = coordinator.placement
        per_shard = {0: 0, 1: 0}
        for uid in range(200):
            shard = placement.shard_of(uid)
            if per_shard[shard] >= 20:
                continue
            per_shard[shard] += 1
            table.record(uid, 1, 1.0)
        assert rebalancer.propose() is None
        assert rebalancer.rebalance() == []
        assert coordinator.placement.version == 0
        rebalancer.close()

    def test_single_shard_never_proposes(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 1)
        rebalancer = ShardRebalancer(coordinator)
        table.record(1, 1, 1.0)
        assert rebalancer.propose() is None
        rebalancer.close()

    def test_cadence_signals_the_background_thread(self):
        # The write-count cadence no longer migrates inside the write
        # listener: with an interval of 30, the 60-write skew crosses
        # a check boundary and *signals* the control-loop thread,
        # which applies the moves off the write path.  quiesce()
        # serializes with that thread, so after it returns the moves
        # are visible deterministically.
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 4)
        cadence = ShardRebalancer(
            coordinator, threshold=1.5, max_moves=4, interval=30
        )
        try:
            assert cadence._thread is not None, "cadence must start the loop"
            _load_skew(table, coordinator.placement)
            cadence.quiesce()
            assert cadence.moves_applied, "cadence check must have fired"
            assert coordinator.placement.version > 0
        finally:
            cadence.close()

    def test_writes_never_block_behind_a_handoff(self):
        # Satellite regression: a handoff driven from the background
        # control loop must overlap in-flight serving without blocking
        # table writes.  We hold the executor's ops lock (exactly what
        # a long handoff holds) from another thread and assert a
        # profile write still completes immediately -- the write path
        # only ever takes the cheap buffer lock.
        import threading

        table = ProfileTable()
        executor = ProcessExecutor(ipc_write_batch=4)
        coordinator = ClusterCoordinator(table, 2, executor=executor)
        try:
            table.record(1, 1, 1.0)
            locked = threading.Event()
            release = threading.Event()

            def hold_ops_lock():
                with executor.ops_lock:
                    locked.set()
                    release.wait(timeout=10.0)

            holder = threading.Thread(target=hold_ops_lock)
            holder.start()
            assert locked.wait(timeout=5.0)
            done = threading.Event()

            def write():
                # More writes than ipc_write_batch: the eager flush
                # must *skip* (try-lock) rather than wait for the
                # holder, or this thread wedges until release.
                for item in range(10):
                    table.record(2, item, 1.0)
                done.set()

            writer = threading.Thread(target=write)
            writer.start()
            assert done.wait(timeout=2.0), "writes blocked behind ops lock"
            release.set()
            holder.join()
            writer.join()
            # Nothing was lost: once the lock frees, the buffered
            # writes flush on the next read and results include them.
            stats = coordinator.shard_stats()
            assert sum(stat.writes for stat in stats) == 11
        finally:
            coordinator.close()

    def test_close_detaches_the_listener(self):
        table, _, rebalancer, _ = _skewed_cluster()
        seen = rebalancer.writes_seen
        rebalancer.close()
        table.record(1, 2, 1.0)
        assert rebalancer.writes_seen == seen
        rebalancer.close()  # idempotent

    def test_knob_validation(self):
        table = ProfileTable()
        coordinator = ClusterCoordinator(table, 2)
        with pytest.raises(ValueError, match="threshold"):
            ShardRebalancer(coordinator, threshold=1.0)
        with pytest.raises(ValueError, match="max_moves"):
            ShardRebalancer(coordinator, max_moves=0)
        with pytest.raises(ValueError, match="interval"):
            ShardRebalancer(coordinator, interval=-1)

    def test_config_knob_validation(self):
        with pytest.raises(ValueError, match="rebalance_threshold"):
            HyRecConfig(rebalance_threshold=1.0)
        with pytest.raises(ValueError, match="rebalance_interval"):
            HyRecConfig(rebalance_interval=-1)
        with pytest.raises(ValueError, match="rebalance_max_moves"):
            HyRecConfig(rebalance_max_moves=0)

    def test_system_wires_rebalancer_and_scheduler(self):
        system = HyRecSystem(
            HyRecConfig(engine="sharded", num_shards=2), seed=0
        )
        assert system.server.rebalancer is not None
        assert system.server.rebalancer.scheduler is system.scheduler
        system.close()
        for engine in ("python", "vectorized"):
            assert (
                HyRecSystem(HyRecConfig(engine=engine), seed=0)
                .server.rebalancer
                is None
            )

    def test_process_executor_migration_updates_worker_stats(self):
        table, coordinator, rebalancer, hot_bucket = _skewed_cluster(
            executor=ProcessExecutor()
        )
        try:
            placement = coordinator.placement
            old_owner = placement.owner_of(hot_bucket)
            moves = rebalancer.rebalance()
            assert any(move.bucket == hot_bucket for move in moves)
            new_owner = placement.owner_of(hot_bucket)
            assert new_owner != old_owner
            stats_after = coordinator.shard_stats()
            # The handoff replayed the bucket's rows into the new
            # owner (no item was ever re-rated, so replay rows ==
            # routed writes), and the old owner's epoch-stamped
            # scoring path keeps answering for its remaining users.
            hot_move = next(m for m in moves if m.bucket == hot_bucket)
            assert stats_after[new_owner].writes == hot_move.writes
        finally:
            rebalancer.close()
            coordinator.close()
