"""Smoke tests for the demo application entry point."""

from __future__ import annotations

from repro.web.app import build_server, main


class TestBuildServer:
    def test_loads_workload(self):
        server = build_server("ML1", scale=0.02, seed=1, k=5, r=5)
        assert server.num_users > 0
        assert server.config.k == 5
        # Profiles are binarized and non-empty.
        some_user = server.profiles.users()[0]
        assert server.profiles.get(some_user).size > 0


class TestMain:
    def test_serves_and_exits(self, capsys):
        exit_code = main(
            [
                "--dataset",
                "ML1",
                "--scale",
                "0.02",
                "--warmup",
                "1",
                "--duration",
                "0.05",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "HyRec serving ML1" in captured.out
        assert "warmed up" in captured.out
        assert "server stopped." in captured.out

    def test_no_warmup(self, capsys):
        exit_code = main(
            ["--dataset", "Digg", "--scale", "0.001", "--warmup", "0",
             "--duration", "0.05"]
        )
        assert exit_code == 0
        assert "warmed up" not in capsys.readouterr().out
