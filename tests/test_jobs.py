"""Tests for personalization-job wire messages."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.jobs import JobResult, PersonalizationJob
from repro.messages import decode_json, encode_json

profiles = st.dictionaries(
    keys=st.integers(0, 500).map(str),
    values=st.sampled_from([0.0, 1.0]),
    max_size=20,
)


class TestPersonalizationJob:
    def test_payload_round_trip(self):
        job = PersonalizationJob(
            user_token="u0_ab",
            user_profile={"1": 1.0, "2": 0.0},
            candidates={"u0_cd": {"3": 1.0}},
            k=10,
            r=5,
            metric="jaccard",
        )
        rebuilt = PersonalizationJob.from_payload(job.to_payload())
        assert rebuilt == job

    def test_payload_survives_json(self):
        job = PersonalizationJob(
            user_token="u0_ab",
            user_profile={"1": 1.0},
            candidates={"u0_cd": {"3": 1.0}, "u0_ef": {}},
            k=3,
            r=2,
        )
        wire = encode_json(job.to_payload())
        rebuilt = PersonalizationJob.from_payload(decode_json(wire))
        assert rebuilt == job

    def test_candidate_count(self):
        job = PersonalizationJob("t", {}, {"a": {}, "b": {}}, k=1, r=1)
        assert job.candidate_count() == 2

    def test_default_metric_is_cosine(self):
        payload = {"u": "t", "p": {}, "c": {}, "k": 1, "r": 1}
        job = PersonalizationJob.from_payload(payload)
        assert job.metric == "cosine"

    @given(profile=profiles, candidates=st.dictionaries(
        keys=st.text(alphabet="abcdef0123456789_u", min_size=1, max_size=10),
        values=profiles,
        max_size=8,
    ))
    def test_round_trip_property(self, profile, candidates):
        job = PersonalizationJob(
            user_token="u0_x",
            user_profile=profile,
            candidates=candidates,
            k=5,
            r=5,
        )
        wire = encode_json(job.to_payload())
        assert PersonalizationJob.from_payload(decode_json(wire)) == job


class TestJobResult:
    def test_payload_round_trip(self):
        result = JobResult(
            user_token="u0_ab",
            neighbor_tokens=["u0_cd", "u0_ef"],
            recommended_items=["5", "7"],
            neighbor_scores=[0.8, 0.5],
        )
        rebuilt = JobResult.from_payload(result.to_payload())
        assert rebuilt == result

    def test_scores_optional_on_the_wire(self):
        payload = {"u": "t", "n": ["a"], "r": []}
        result = JobResult.from_payload(payload)
        assert result.neighbor_scores == []

    @given(
        neighbors=st.lists(st.text(min_size=1, max_size=8), max_size=10),
        items=st.lists(st.text(min_size=1, max_size=8), max_size=10),
    )
    def test_round_trip_property(self, neighbors, items):
        result = JobResult(
            user_token="u",
            neighbor_tokens=neighbors,
            recommended_items=items,
        )
        wire = encode_json(result.to_payload())
        assert JobResult.from_payload(decode_json(wire)) == result
