"""Admission control: deterministic shedding, health bypass, drain.

Determinism comes from gating the engine, not from timing: the
front door's :class:`~repro.core.api.WebApi` is wrapped so ``online``
blocks on a :class:`threading.Event` until the test releases it, and
the test polls ``/stats/`` (which bypasses admission) until the
admission state -- ``in_flight``, ``pending`` -- is exactly the
saturation picture it wants before firing the request that must shed.
"""

from __future__ import annotations

import http.client
import threading
import time

import pytest

from repro.messages import decode_json
from repro.web.async_server import AsyncHyRecServer
from repro.web.loadtest import fetch_stats
from repro.web.server import HyRecHttpServer


class GatedOnline:
    """Wrap ``WebApi.online`` so calls block until :meth:`release`."""

    def __init__(self, api) -> None:
        self._inner = api.online
        self._gate = threading.Event()
        self.entered = 0

    def __call__(self, uid: int, now: float = 0.0) -> bytes:
        self.entered += 1
        if not self._gate.wait(timeout=30):
            raise TimeoutError("test gate never released")
        return self._inner(uid, now)

    def release(self) -> None:
        self._gate.set()


def gate_engine(door: AsyncHyRecServer) -> GatedOnline:
    gate = GatedOnline(door.api)
    door.api.online = gate  # type: ignore[method-assign]
    return gate


def wait_for_saturation(
    url: str, in_flight: int, pending: int, timeout: float = 10.0
) -> dict:
    """Poll ``/stats/`` until the admission gauges hit the target."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = fetch_stats(url)
        if stats["in_flight"] == in_flight and stats["pending"] == pending:
            return stats
        time.sleep(0.01)
    raise AssertionError(
        f"never reached in_flight={in_flight} pending={pending}: {fetch_stats(url)}"
    )


class Client(threading.Thread):
    """One request on its own connection; outcome captured for joins."""

    def __init__(self, address: tuple[str, int], path: str) -> None:
        super().__init__(daemon=True)
        self.address = address
        self.path = path
        self.status: int | None = None
        self.headers: dict[str, str] = {}
        self.body = b""
        self.error: Exception | None = None
        self.start()

    def run(self) -> None:
        connection = http.client.HTTPConnection(*self.address, timeout=30)
        try:
            connection.request("GET", self.path)
            response = connection.getresponse()
            self.body = response.read()
            self.status = response.status
            self.headers = {
                key.lower(): value for key, value in response.getheaders()
            }
        except Exception as error:  # noqa: BLE001 - surfaced via .error
            self.error = error
        finally:
            connection.close()


class TestShedding:
    def test_deterministic_503_past_the_bound(self, loaded_server):
        with AsyncHyRecServer(
            loaded_server,
            cache_ttl=0.0,
            max_concurrency=1,
            max_pending=1,
            retry_after=7,
        ) as door:
            gate = gate_engine(door)
            executing = Client(door.address, "/online/?uid=0")
            waiting = Client(door.address, "/online/?uid=1")
            wait_for_saturation(door.url, in_flight=1, pending=1)

            # The queue is provably full; the next request must shed.
            shed = Client(door.address, "/online/?uid=2")
            shed.join(timeout=10)
            assert shed.error is None
            assert shed.status == 503
            assert shed.headers["retry-after"] == "7"
            assert b"overloaded" in shed.body
            # Shed without ever touching the engine.
            assert gate.entered == 1

            gate.release()
            executing.join(timeout=10)
            waiting.join(timeout=10)
            assert executing.status == 200 and waiting.status == 200

            stats = fetch_stats(door.url)
            assert stats["shed_requests"] == 1
            assert stats["in_flight"] == 0 and stats["pending"] == 0

    def test_shed_counter_matches_observed_rejections(self, loaded_server):
        burst = 8
        with AsyncHyRecServer(
            loaded_server, cache_ttl=0.0, max_concurrency=1, max_pending=0
        ) as door:
            gate = gate_engine(door)
            holder = Client(door.address, "/online/?uid=0")
            wait_for_saturation(door.url, in_flight=1, pending=0)

            clients = [
                Client(door.address, f"/online/?uid={i % 4}") for i in range(burst)
            ]
            for client in clients:
                client.join(timeout=10)
            assert all(client.error is None for client in clients)
            # max_pending=0: with the one slot held, every burst
            # request is rejected -- none may hang or error.
            observed = [client.status for client in clients]
            assert observed == [503] * burst

            gate.release()
            holder.join(timeout=10)
            assert holder.status == 200
            stats = fetch_stats(door.url)
            assert stats["shed_requests"] == burst
            assert stats["online_requests"] == 1

    def test_neighbors_sheds_too(self, loaded_server):
        with AsyncHyRecServer(
            loaded_server, cache_ttl=0.0, max_concurrency=1, max_pending=0
        ) as door:
            gate = gate_engine(door)
            holder = Client(door.address, "/online/?uid=0")
            wait_for_saturation(door.url, in_flight=1, pending=0)
            shed = Client(door.address, "/neighbors/?uid=1&id0=bogus")
            shed.join(timeout=10)
            assert shed.status == 503
            assert "retry-after" in shed.headers
            gate.release()
            holder.join(timeout=10)


class TestHealthBypass:
    def test_stats_and_metrics_respond_while_saturated(self, loaded_server):
        with AsyncHyRecServer(
            loaded_server, cache_ttl=0.0, max_concurrency=1, max_pending=1
        ) as door:
            gate = gate_engine(door)
            clients = [Client(door.address, f"/online/?uid={i}") for i in (0, 1)]
            stats = wait_for_saturation(door.url, in_flight=1, pending=1)
            # wait_for_saturation itself just proved /stats/ responds
            # while both the engine slot and the queue are full.
            assert stats["in_flight"] == 1 and stats["pending"] == 1

            metrics = Client(door.address, "/metrics")
            metrics.join(timeout=10)
            assert metrics.status == 200
            text = metrics.body.decode("utf-8")
            assert "hyrec_http_in_flight_requests 1" in text
            assert "hyrec_http_pending_requests 1" in text

            gate.release()
            for client in clients:
                client.join(timeout=10)
                assert client.status == 200

    def test_cache_hits_bypass_admission(self, loaded_server):
        """A cached user is served even with the engine saturated."""
        with AsyncHyRecServer(
            loaded_server, cache_ttl=60.0, max_concurrency=1, max_pending=0
        ) as door:
            warm = Client(door.address, "/online/?uid=3")
            warm.join(timeout=10)
            assert warm.status == 200

            gate = gate_engine(door)
            holder = Client(door.address, "/online/?uid=0")
            wait_for_saturation(door.url, in_flight=1, pending=0)

            hit = Client(door.address, "/online/?uid=3")
            hit.join(timeout=10)
            assert hit.status == 200
            assert hit.headers["x-cache"] == "hit"
            assert hit.body == warm.body

            missed = Client(door.address, "/online/?uid=2")
            missed.join(timeout=10)
            assert missed.status == 503

            gate.release()
            holder.join(timeout=10)


class TestGracefulShutdown:
    def test_zero_dropped_in_flight_requests(self, loaded_server):
        door = AsyncHyRecServer(
            loaded_server, cache_ttl=0.0, max_concurrency=2, max_pending=4
        )
        door.start()
        gate = gate_engine(door)
        clients = [Client(door.address, f"/online/?uid={i}") for i in (0, 1, 2)]
        wait_for_saturation(door.url, in_flight=2, pending=1)

        stopper = threading.Thread(target=door.stop, daemon=True)
        stopper.start()
        time.sleep(0.2)  # let stop() close the listening socket
        gate.release()

        for client in clients:
            client.join(timeout=15)
            # Every request that was in flight (executing *or* queued)
            # when stop() began still gets its real response.
            assert client.error is None, client.error
            assert client.status == 200
        stopper.join(timeout=15)
        assert not stopper.is_alive()

    def test_new_connections_refused_after_stop(self, loaded_server):
        door = AsyncHyRecServer(loaded_server, cache_ttl=0.0)
        door.start()
        address = door.address
        door.stop()
        with pytest.raises(OSError):
            connection = http.client.HTTPConnection(*address, timeout=2)
            try:
                connection.request("GET", "/online/?uid=0")
                connection.getresponse()
            finally:
                connection.close()


class TestThreadedServerRegression:
    def test_threaded_stats_and_metrics_still_serve(self, loaded_server):
        """The zero-moving-parts deployment keeps its health surface."""
        http_server = HyRecHttpServer(loaded_server)
        port = http_server.start()
        try:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                connection.request("GET", "/stats/")
                response = connection.getresponse()
                stats = decode_json(response.read())
                assert response.status == 200
                assert stats["users"] == loaded_server.num_users
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                assert response.status == 200
                assert b"hyrec" in response.read()
            finally:
                connection.close()
        finally:
            http_server.stop()
