"""Cross-module invariants: the load-bearing properties tied together.

These tests check relationships *between* components rather than
single units: metric bounds versus exact indexes, cache coherence on
the wire path, and end-to-end conservation laws.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.exact import ExactKnnIndex
from repro.core.config import HyRecConfig
from repro.core.knn import knn_select
from repro.core.profiles import Profile
from repro.core.server import HyRecServer
from repro.core.similarity import get_metric
from repro.messages import decode_json, encode_json, gzip_decompress

liked_maps = st.dictionaries(
    keys=st.integers(0, 25),
    values=st.frozensets(st.integers(0, 30), max_size=10),
    min_size=2,
    max_size=14,
)


class TestIdealIsUpperBound:
    @settings(max_examples=25, deadline=None)
    @given(liked=liked_maps, k=st.integers(1, 5))
    def test_no_neighborhood_beats_the_ideal_per_user(self, liked, k):
        """For every user, the exact top-k mean similarity dominates
        the mean similarity of ANY k-subset -- in particular whatever
        HyRec's sampling or the gossip overlay converge to."""
        index = ExactKnnIndex(liked)
        metric = get_metric("cosine")
        for user in liked:
            ideal = index.topk(user, k)
            if not ideal:
                continue
            ideal_mean = sum(n.score for n in ideal) / len(ideal)
            # Adversarial subset: the *worst* candidates by similarity.
            worst = knn_select(
                liked[user],
                {u: s for u, s in liked.items() if u != user},
                k=len(liked),
                metric=metric,
            )[-k:]
            worst_mean = sum(n.score for n in worst) / len(worst)
            assert worst_mean <= ideal_mean + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(liked=liked_maps, k=st.integers(1, 4))
    def test_exact_index_agrees_with_algorithm1_for_all_metrics(self, liked, k):
        for metric_name in ("cosine", "jaccard", "overlap"):
            index = ExactKnnIndex(liked, metric=metric_name)
            metric = get_metric(metric_name)
            for user in liked:
                fast = [n.user_id for n in index.topk(user, k)]
                slow = [
                    n.user_id
                    for n in knn_select(
                        liked[user], liked, k=k, metric=metric, exclude=user
                    )
                ]
                assert fast == slow, (metric_name, user)


class TestWirePathCoherence:
    def _server(self, ratings_per_user=8, users=25) -> HyRecServer:
        from repro.sim.randomness import derive_rng

        server = HyRecServer(HyRecConfig(k=4, r=4), seed=5)
        rng = derive_rng(5, "coherence")
        for uid in range(users):
            for _ in range(ratings_per_user):
                server.record_rating(
                    uid, rng.randrange(60), 1.0 if rng.random() < 0.8 else 0.0
                )
        return server

    def test_render_matches_reference_encoding_repeatedly(self):
        server = self._server()
        for uid in range(5):
            job = server.handle_online_request(uid)
            wire = server.render_online_response(job)
            assert gzip_decompress(wire) == encode_json(job.to_payload())

    def test_render_stays_correct_across_profile_updates(self):
        """Cache invalidation: rate between renders, bytes must track."""
        server = self._server()
        job1 = server.handle_online_request(0)
        server.render_online_response(job1)
        # Mutate several profiles that likely appear in candidate sets.
        for uid in range(10):
            server.record_rating(uid, 999, 1.0)
        job2 = server.handle_online_request(0)
        wire2 = server.render_online_response(job2)
        decoded = decode_json(gzip_decompress(wire2))
        assert decoded == job2.to_payload()
        # The new rating is visible wherever its owner appears.
        for token, profile in job2.candidates.items():
            owner = server.anonymizer.resolve_user(token)
            if owner < 10:
                assert profile.get("999") == 1.0

    def test_render_correct_after_reshuffle(self):
        server = self._server()
        job1 = server.handle_online_request(0)
        server.render_online_response(job1)
        server.anonymizer.reshuffle()
        job2 = server.handle_online_request(0)
        wire = server.render_online_response(job2)
        assert gzip_decompress(wire) == encode_json(job2.to_payload())

    def test_fragment_caches_invalidate_together(self):
        profile = Profile(1)
        profile.add(10, 1.0)
        fragment_before = profile.json_fragment()
        deflated_before = profile.deflated_fragment()
        profile.add(11, 1.0)
        assert profile.json_fragment() != fragment_before
        assert profile.deflated_fragment() != deflated_before
        # Deflated segment must always decompress to the fragment.
        import zlib

        decompressor = zlib.decompressobj(wbits=-15)
        assert (
            decompressor.decompress(profile.deflated_fragment())
            == profile.json_fragment()
        )


class TestConservationLaws:
    def test_replay_conserves_ratings(self, ml1_small):
        """Every trace rating lands in exactly one profile entry
        (modulo re-rates of the same item)."""
        from repro.core.system import HyRecSystem

        system = HyRecSystem(HyRecConfig(k=5), seed=0)
        system.replay(ml1_small)
        stored = sum(
            system.server.profiles.get(uid).size
            for uid in system.server.profiles.users()
        )
        distinct_pairs = len({(r.user, r.item) for r in ml1_small})
        assert stored == distinct_pairs

    def test_meter_totals_are_sums_of_channels(self, replayed_system):
        meter = replayed_system.server.meter
        assert meter.total_wire_bytes == sum(
            reading.wire_bytes for reading in meter.channels.values()
        )
        down = meter.reading("server->client")
        up = meter.reading("client->server")
        assert down.messages == up.messages == replayed_system.requests_served

    def test_knn_rows_only_reference_known_users(self, replayed_system):
        profiles = replayed_system.server.profiles
        for user in replayed_system.server.knn_table.users():
            for neighbor in replayed_system.server.knn_table.neighbors_of(user):
                assert neighbor in profiles
                assert neighbor != user
