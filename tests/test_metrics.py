"""Tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.datasets.schema import Rating, Trace
from repro.metrics import (
    LatencySummary,
    QualityProtocol,
    bucket_series,
    format_bytes,
    ideal_view_similarity,
    summarize_latencies,
    view_similarity_of_table,
    view_similarity_per_user,
)
from repro.metrics.recommendation_quality import QualityResult
from repro.obs.timing import nearest_rank


class TestViewSimilarity:
    LIKED = {
        1: frozenset({1, 2, 3}),
        2: frozenset({1, 2, 3}),
        3: frozenset({9}),
    }

    def test_per_user_values(self):
        table = {1: [2], 2: [1], 3: [1]}
        per_user = view_similarity_per_user(self.LIKED, table)
        assert per_user[1] == pytest.approx(1.0)
        assert per_user[2] == pytest.approx(1.0)
        assert per_user[3] == 0.0

    def test_empty_neighborhood_scores_zero(self):
        per_user = view_similarity_per_user(self.LIKED, {})
        assert per_user == {1: 0.0, 2: 0.0, 3: 0.0}

    def test_average(self):
        table = {1: [2], 2: [1], 3: [1]}
        average = view_similarity_of_table(self.LIKED, table)
        assert average == pytest.approx(2.0 / 3.0)

    def test_unknown_neighbors_skipped(self):
        table = {1: [999]}
        per_user = view_similarity_per_user(self.LIKED, table)
        assert per_user[1] == 0.0

    def test_ideal_is_upper_bound(self):
        """No table may beat the ideal average view similarity."""
        ideal = ideal_view_similarity(self.LIKED, k=1)
        best_table = {1: [2], 2: [1], 3: [1]}
        assert view_similarity_of_table(self.LIKED, best_table) <= ideal + 1e-9

    def test_ideal_empty(self):
        assert ideal_view_similarity({}, k=3) == 0.0


class TestQualityProtocol:
    class PerfectSystem:
        """Always recommends exactly the item about to be liked."""

        def __init__(self, test_trace):
            self._upcoming = [r.item for r in test_trace if r.value == 1.0]
            self._cursor = 0

        def record_rating(self, user_id, item, value, timestamp):
            pass

        def recommend_for(self, user_id, now, n):
            item = self._upcoming[self._cursor]
            self._cursor += 1
            return [item] + [10_000 + i for i in range(n - 1)]

    class UselessSystem:
        def record_rating(self, user_id, item, value, timestamp):
            pass

        def recommend_for(self, user_id, now, n):
            return [99_999] * n

    def _traces(self):
        train = Trace("train", [Rating(0.0, 1, 1, 1.0)])
        test = Trace(
            "test",
            [
                Rating(10.0, 1, 5, 1.0),
                Rating(11.0, 1, 6, 0.0),  # negative: no request
                Rating(12.0, 2, 7, 1.0),
            ],
        )
        return train, test

    def test_perfect_system_hits_everything(self):
        train, test = self._traces()
        protocol = QualityProtocol(n_max=5)
        result = protocol.run(self.PerfectSystem(test), train, test)
        assert result.positives == 2
        assert result.hits_at[1] == 2
        assert result.hits_at[5] == 2

    def test_useless_system_hits_nothing(self):
        train, test = self._traces()
        result = QualityProtocol(n_max=5).run(self.UselessSystem(), train, test)
        assert result.positives == 2
        assert all(count == 0 for count in result.hits_at.values())

    def test_only_positive_ratings_request(self):
        train, test = self._traces()
        result = QualityProtocol(n_max=3).run(self.PerfectSystem(test), train, test)
        assert result.requests == 2  # the dislike never asks

    def test_hits_monotone_in_n(self):
        result = QualityResult(n_max=5)
        result.record_rank(3)
        result.record_rank(None)
        result.record_rank(1)
        counts = [result.hits_at[n] for n in range(1, 6)]
        assert counts == sorted(counts)
        assert result.hits_at[1] == 1
        assert result.hits_at[3] == 2

    def test_precision(self):
        result = QualityResult(n_max=2)
        result.record_rank(1)
        result.record_rank(None)
        assert result.precision_at(1) == 0.5

    def test_curve_shape(self):
        result = QualityResult(n_max=3)
        result.record_rank(2)
        assert result.curve() == [(1, 0), (2, 1), (3, 1)]

    def test_invalid_n_max(self):
        with pytest.raises(ValueError):
            QualityProtocol(n_max=0)


class TestBucketSeries:
    def test_bucketing(self):
        samples = [(0.0, 10.0), (1.0, 20.0), (5.0, 30.0)]
        points = bucket_series(samples, bucket_width=2.0)
        assert len(points) == 2
        assert points[0].mean == pytest.approx(15.0)
        assert points[0].count == 2
        assert points[1].time == 4.0

    def test_empty(self):
        assert bucket_series([], 1.0) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bucket_series([(0.0, 1.0)], 0.0)


class TestLatencySummary:
    def test_summary_fields(self):
        summary = summarize_latencies([0.001, 0.002, 0.003, 0.010])
        assert isinstance(summary, LatencySummary)
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.004)
        assert summary.maximum == 0.010
        assert summary.mean_ms == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_p95_nearest_rank_small_sample(self):
        # Regression: ``int(0.95 * n)`` lands one past the nearest
        # rank whenever 0.95 * n is an integer -- for 20 samples it
        # reported the maximum (index 19) instead of the 19th value.
        samples = [float(v) for v in range(1, 21)]
        assert summarize_latencies(samples).p95 == 19.0
        assert nearest_rank(samples, 0.95) == 19.0
        # Nearest rank of a single sample is that sample, and an empty
        # sorted list summarizes to zero rather than indexing past it.
        assert nearest_rank([7.0], 0.99) == 7.0
        assert nearest_rank([], 0.5) == 0.0

    def test_nearest_rank_brute_force(self):
        # Nearest-rank definition: smallest value with >= fraction of
        # the sample at or below it.
        for n in range(1, 30):
            values = [float(v) for v in range(n)]
            for fraction in (0.5, 0.9, 0.95, 0.99, 1.0):
                got = nearest_rank(values, fraction)
                expected = next(
                    v for v in values
                    if (values.index(v) + 1) / n >= fraction
                )
                assert got == expected, (n, fraction)


class TestFormatBytes:
    def test_ranges(self):
        assert format_bytes(500) == "500B"
        assert format_bytes(8_000) == "8.0kB"
        assert format_bytes(24_000_000) == "24.0MB"
        assert format_bytes(3_200_000_000) == "3.20GB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
