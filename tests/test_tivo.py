"""Tests for the TiVo-style item-based hybrid baseline."""

from __future__ import annotations

import pytest

from repro.baselines.tivo import TivoClient, TivoServer, TivoSystem
from repro.core.tables import ProfileTable
from repro.datasets.schema import Rating, Trace
from repro.sim.clock import DAY, WEEK


def co_liked_profiles() -> ProfileTable:
    """Items 1 and 2 are always liked together; item 9 stands alone."""
    table = ProfileTable()
    for user in range(6):
        table.record(user, 1, 1.0)
        table.record(user, 2, 1.0)
    table.record(6, 9, 1.0)
    return table


class TestTivoServer:
    def test_correlations_capture_co_liking(self):
        server = TivoServer(co_liked_profiles())
        server.recompute()
        top = server.correlations[1]
        assert top[0][0] == 2
        assert top[0][1] == pytest.approx(1.0)

    def test_uncorrelated_items_have_empty_rows(self):
        server = TivoServer(co_liked_profiles())
        server.recompute()
        assert server.correlations[9] == []

    def test_periodic_schedule(self):
        server = TivoServer(co_liked_profiles(), correlation_period_s=2 * WEEK)
        assert server.maybe_recompute(0.0)
        assert not server.maybe_recompute(WEEK)
        assert server.maybe_recompute(2 * WEEK + 1)
        assert len(server.history) == 2

    def test_rows_for_unknown_items_are_missing(self):
        """Items born after the last run are structurally invisible."""
        server = TivoServer(co_liked_profiles())
        server.recompute()
        rows = server.correlation_rows(frozenset({1, 777}))
        assert 1 in rows
        assert 777 not in rows

    def test_validation(self):
        with pytest.raises(ValueError):
            TivoServer(ProfileTable(), correlation_period_s=0)
        with pytest.raises(ValueError):
            TivoServer(ProfileTable(), top_correlated=0)

    def test_empty_profiles_ok(self):
        server = TivoServer(ProfileTable())
        server.recompute()
        assert server.correlations == {}


class TestTivoClient:
    def test_scores_sum_over_liked_items(self):
        rows = {
            1: [(5, 0.9), (6, 0.2)],
            2: [(5, 0.8)],
        }
        recs = TivoClient.recommend(
            liked=frozenset({1, 2}), rated=frozenset({1, 2}), rows=rows, r=2
        )
        assert recs == [5, 6]  # 5 scores 1.7, 6 scores 0.2

    def test_rated_items_never_recommended(self):
        rows = {1: [(5, 0.9)]}
        recs = TivoClient.recommend(
            liked=frozenset({1}), rated=frozenset({1, 5}), rows=rows, r=3
        )
        assert recs == []

    def test_empty_rows_empty_recs(self):
        assert (
            TivoClient.recommend(frozenset({1}), frozenset({1}), {}, r=3) == []
        )

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            TivoClient.recommend(frozenset(), frozenset(), {}, r=0)


class TestTivoSystem:
    def _trace(self) -> Trace:
        ratings = []
        for user in range(5):
            ratings.append(Rating(float(user), user, 1, 1.0))
            ratings.append(Rating(float(user) + 0.5, user, 2, 1.0))
        # A latecomer who liked only item 1.
        ratings.append(Rating(10 * DAY, 9, 1, 1.0))
        return Trace("tivo", ratings)

    def test_replay_and_recommend(self):
        system = TivoSystem(r=3, correlation_period_s=DAY)
        system.replay(self._trace())
        outcome = system.request(9, now=11 * DAY)
        # Item 2 correlates with the latecomer's liked item 1.
        assert 2 in outcome.recommendations

    def test_stale_correlations_miss_new_items(self):
        """With a 2-week period nothing after t=0 is recommendable."""
        system = TivoSystem(r=3, correlation_period_s=2 * WEEK)
        system.replay(self._trace())
        outcome = system.request(9, now=11 * DAY)
        # The only run happened at the first request, when a single
        # rating existed: item 1's row is present but empty, and item
        # 2 -- co-liked by five users since -- is invisible.
        assert outcome.recommendations == []
        assert outcome.rows_available <= 1

    def test_requests_counted(self):
        system = TivoSystem(correlation_period_s=DAY)
        served = system.replay(self._trace())
        assert served == system.requests_served == 11
