"""Fault tolerance: worker death is a recoverable event, not an outage.

The acceptance bar mirrors the rebalancing suite's: *recovery moves
nothing but time*.  SIGKILLing workers mid-replay and mid-request must
leave every output bit -- per-request results, the KNN table,
byte-exact wire metering -- identical to the unsharded vectorized
engine, because the parent ``ProfileTable`` is the replay log and a
respawned worker warm-starts from it exactly.  On top sit the policy
tests: fail-fast ``ShardUnavailable`` vs config-gated degraded reads
when the respawn budget is exhausted, zero lost writes through any
outage, supervisor bookkeeping surfaced via ``ServerStats``, and
``rolling_restart`` cycling the whole fleet under live load with zero
failed requests.
"""

from __future__ import annotations

import os
import random
import signal

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ProcessExecutor,
    ShardUnavailable,
)
from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.core.tables import ProfileTable
from parity import random_trace, replay_digest as _replay_digest
from repro.engine import LikedMatrix, VectorizedWidget
from repro.engine.jobs import EngineJob
from repro.sim.loadgen import ClusterLoadGenerator


def _populate(rng: random.Random, table: ProfileTable, users: int, items: int):
    for uid in range(users):
        table.get_or_create(uid)
        for item in rng.sample(range(items), rng.randrange(2, 15)):
            table.record(uid, item, 1.0 if rng.random() < 0.7 else 0.0)


def _job(rng: random.Random, users: int) -> EngineJob:
    user_id = rng.randrange(users)
    pairs = sorted(
        (f"u0_{uid:04x}", uid)
        for uid in range(users)
        if uid != user_id and rng.random() < 0.7
    )
    return EngineJob(
        user_id=user_id,
        user_token=f"u0_{user_id:04x}",
        candidate_ids=tuple(uid for _, uid in pairs),
        candidate_tokens=tuple(token for token, _ in pairs),
        k=5,
        r=6,
        metric="cosine",
    )


def _kill(executor: ProcessExecutor, shard: int) -> int:
    """SIGKILL a shard's worker and wait for the OS to reap it."""
    proc = executor._procs[shard]
    assert proc is not None and proc.is_alive()
    os.kill(proc.pid, signal.SIGKILL)
    proc.join()
    return proc.pid


class KillDriver:
    """SIGKILLs a worker (round-robin) at chosen table-write counts.

    Registered as a table listener after the system is built, exactly
    like the churn driver of ``tests/test_rebalance.py``, so the
    engine's own write routing precedes the fault -- the kill lands
    between a routed write and the next read, which is where real
    worker deaths surface.
    """

    def __init__(self, system: HyRecSystem, at_writes: set[int]) -> None:
        cluster = system.server.cluster
        assert cluster is not None
        self.executor = cluster.executor
        self.at_writes = at_writes
        self.writes = 0
        self.kills = 0
        system.server.profiles.add_listener(self._on_write)

    def _on_write(self, user_id, item, value, previous) -> None:
        del user_id, item, value, previous
        self.writes += 1
        if self.writes not in self.at_writes:
            return
        victim = self.kills % len(self.executor._procs)
        proc = self.executor._procs[victim]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join()
            self.kills += 1


class TestKillRecoveryParity:
    """Recovery is exact: killed workers leave no trace in any output."""

    @pytest.fixture(scope="class")
    def trace(self):
        return random_trace(random.Random(53), users=30, items=90, n=300, name="fault-tolerance")

    @pytest.fixture(scope="class")
    def reference(self, trace):
        return _replay_digest(
            HyRecSystem(HyRecConfig(k=5, r=6, engine="vectorized"), seed=29),
            trace,
        )

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_kills_mid_replay_keep_parity(self, trace, reference, num_shards):
        system = HyRecSystem(
            HyRecConfig(
                k=5,
                r=6,
                engine="sharded",
                num_shards=num_shards,
                executor="process",
                retry_backoff=0.01,
            ),
            seed=29,
        )
        driver = KillDriver(system, at_writes={60, 150, 240})
        try:
            digest = _replay_digest(system, trace)
            executor = system.server.cluster.executor
            stats = system.server.stats
        finally:
            system.close()
        assert driver.kills == 3  # the faults actually happened
        assert executor.supervisor.recoveries == 3
        assert sum(executor.supervisor.restarts) == 3
        assert len(executor.supervisor.recovery_times) == 3
        assert stats.recoveries == 3
        assert stats.dropped_requests == 0  # every request was served
        assert digest == reference, (
            f"kill-recovery @ {num_shards} shards diverged"
        )

    def test_kill_mid_request_after_frames_sent(self):
        # The recv-side detection path: the worker dies *after* the
        # batch's JobSlices frame went out (SIGSTOP blocks it from
        # replying, so the read deadline -- not a send error -- is
        # what notices), and the retry must re-score on the
        # replacement with exact results.
        rng = random.Random(11)
        table = ProfileTable()
        _populate(rng, table, users=24, items=60)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        executor = ProcessExecutor(worker_timeout=1.0, retry_backoff=0.01)
        coordinator = ClusterCoordinator(table, num_shards=3, executor=executor)
        try:
            victim = 1
            stopped = executor._procs[victim]
            os.kill(stopped.pid, signal.SIGSTOP)  # wedged, not dead
            job = _job(rng, users=24)
            result = coordinator.process_engine_job(job)
            assert result == widget.process_engine_job(job, matrix)
            assert executor.supervisor.recoveries == 1
            assert executor.supervisor.restarts[victim] == 1
            # the wedged process was reaped, not leaked
            assert stopped.exitcode is not None
        finally:
            coordinator.close()

    def test_writes_during_outage_are_never_lost(self):
        rng = random.Random(17)
        table = ProfileTable()
        _populate(rng, table, users=24, items=60)
        executor = ProcessExecutor(retry_backoff=0.01)
        coordinator = ClusterCoordinator(table, num_shards=4, executor=executor)
        try:
            _kill(executor, 2)
            # Writes keep landing while the worker is dead -- routed
            # through table.record exactly as live traffic would.
            for uid in range(24):
                table.record(uid, 200 + uid, 1.0)
                table.record(uid, 300 + uid, 0.0)
            matrix = LikedMatrix(table)  # reference built *after* the writes
            widget = VectorizedWidget()
            for _ in range(6):
                job = _job(rng, users=24)
                assert coordinator.process_engine_job(job) == (
                    widget.process_engine_job(job, matrix)
                )
            assert executor.supervisor.recoveries == 1
        finally:
            coordinator.close()

    def test_consecutive_incidents_each_get_a_fresh_budget(self):
        rng = random.Random(19)
        table = ProfileTable()
        _populate(rng, table, users=20, items=50)
        executor = ProcessExecutor(retry_backoff=0.01)
        coordinator = ClusterCoordinator(table, num_shards=2, executor=executor)
        try:
            matrix = LikedMatrix(table)
            widget = VectorizedWidget()
            for incident in range(1, 4):
                _kill(executor, 0)
                job = _job(rng, users=20)
                assert coordinator.process_engine_job(job) == (
                    widget.process_engine_job(job, matrix)
                )
                assert executor.supervisor.recoveries == incident
            assert executor.supervisor.restarts[0] == 3
            assert not executor.supervisor.down
        finally:
            coordinator.close()


class TestDownShardPolicy:
    """Respawn budget exhausted: fail fast, or degrade when asked to."""

    def _build(self, degraded: bool):
        rng = random.Random(7)
        table = ProfileTable()
        _populate(rng, table, users=24, items=50)
        executor = ProcessExecutor(
            worker_timeout=1.0,
            max_respawns=0,  # no automatic recovery: the shard stays down
            retry_backoff=0.0,
            degraded_reads=degraded,
        )
        coordinator = ClusterCoordinator(table, num_shards=3, executor=executor)
        return table, executor, coordinator, rng

    def test_fail_fast_raises_typed_shard_unavailable(self):
        table, executor, coordinator, rng = self._build(degraded=False)
        try:
            _kill(executor, 1)
            with pytest.raises(ShardUnavailable, match="shard 1"):
                coordinator.process_engine_job(_job(rng, users=24))
            assert coordinator.dropped_requests == 1
            assert 1 in executor.supervisor.down
            assert not executor.supervisor.healthy
            stats = executor.stats()
            assert not stats[1].alive
            assert stats[0].alive and stats[2].alive
        finally:
            coordinator.close()

    def test_degraded_reads_serve_survivors_and_flag_results(self):
        table, executor, coordinator, rng = self._build(degraded=True)
        matrix = LikedMatrix(table)
        widget = VectorizedWidget()
        try:
            _kill(executor, 1)
            job = _job(rng, users=24)
            result = coordinator.process_engine_job(job)
            reference = widget.process_engine_job(job, matrix)
            assert result.degraded is True
            assert result != reference  # the dead shard's candidates miss
            # subset contract: nothing fabricated, only survivors merge
            assert set(result.neighbor_tokens) <= set(reference.neighbor_tokens) | set(
                job.candidate_tokens
            )
            assert coordinator.dropped_requests == 1
            # writes during the outage queue in the replay log...
            for uid in range(24):
                table.record(uid, 300 + uid, 1.0)
            # ...and a manual respawn heals the shard back to exactness
            executor.respawn(1)
            matrix = LikedMatrix(table)
            job = _job(rng, users=24)
            healed = coordinator.process_engine_job(job)
            assert healed.degraded is False
            assert healed == widget.process_engine_job(job, matrix)
            assert executor.supervisor.restarts[1] == 1
            assert 1 not in executor.supervisor.down
        finally:
            coordinator.close()

    def test_degraded_flag_rides_the_wire_only_when_set(self):
        from repro.core.jobs import JobResult

        exact = JobResult(
            user_token="u0_0001", neighbor_tokens=["a"],
            recommended_items=["i3"], neighbor_scores=[1.0],
        )
        degraded = JobResult(
            user_token="u0_0001", neighbor_tokens=["a"],
            recommended_items=["i3"], neighbor_scores=[1.0], degraded=True,
        )
        assert "d" not in exact.to_payload()  # exact wire bytes untouched
        assert degraded.to_payload()["d"] is True
        assert JobResult.from_payload(exact.to_payload()).degraded is False
        assert JobResult.from_payload(degraded.to_payload()).degraded is True

    def test_rebalancer_pauses_while_a_shard_is_down(self):
        from repro.cluster import ShardRebalancer

        table, executor, coordinator, rng = self._build(degraded=True)
        rebalancer = ShardRebalancer(
            coordinator, threshold=1.01, max_moves=8
        )
        try:
            # hammer one user so the spread would normally trigger moves
            for _ in range(50):
                table.record(0, 7, 1.0)
            _kill(executor, 1)
            coordinator.process_engine_job(_job(rng, users=24))  # marks it down
            assert rebalancer.imbalance() > rebalancer.threshold
            assert rebalancer.rebalance() == []  # paused, not failing
            assert coordinator.placement.version == 0
        finally:
            rebalancer.close()
            coordinator.close()

    def test_migration_refuses_unhealthy_participants(self):
        table, executor, coordinator, rng = self._build(degraded=True)
        try:
            _kill(executor, 1)
            coordinator.process_engine_job(_job(rng, users=24))  # marks it down
            bucket = coordinator.placement.buckets_owned_by(0)[0]
            with pytest.raises(ShardUnavailable):
                coordinator.migrate_bucket(int(bucket), 2)
            assert coordinator.placement.version == 0  # routing untouched
        finally:
            coordinator.close()


class TestRollingRestart:
    """The whole fleet cycles under live traffic with zero failed requests."""

    def test_rolling_restart_under_live_load(self):
        config = HyRecConfig(
            k=5,
            r=6,
            engine="sharded",
            num_shards=4,
            executor="process",
            batch_window=8,
            retry_backoff=0.01,
        )
        reference_system = HyRecSystem(
            HyRecConfig(k=5, r=6, engine="vectorized"), seed=31
        )
        system = HyRecSystem(config, seed=31)
        rng = random.Random(23)
        try:
            for target in (system, reference_system):
                target_rng = random.Random(23)
                for uid in range(30):
                    for item in target_rng.sample(range(80), 10):
                        target.record_rating(uid, item, 1.0)
            del rng
            users = list(range(30))
            loadgen = ClusterLoadGenerator(system, users)
            reference_loadgen = ClusterLoadGenerator(reference_system, users)

            before = loadgen.run(requests=40, concurrency=8)
            executor = system.server.cluster.executor
            pids_before = [proc.pid for proc in executor._procs]
            version_before = system.server.cluster.placement.version

            cycled = system.server.cluster.rolling_restart()

            after = loadgen.run(requests=40, concurrency=8)
            reference_loadgen.run(requests=80, concurrency=8)

            assert cycled == 4
            pids_after = [proc.pid for proc in executor._procs]
            assert all(a != b for a, b in zip(pids_before, pids_after))
            # every request before, during, and after was served
            assert before.requests + after.requests == 80
            stats = system.server.stats
            assert stats.dropped_requests == 0
            assert stats.recoveries == 0  # deliberate restarts, not faults
            assert [s.restarts for s in stats.shards] == [1, 1, 1, 1]
            assert all(s.alive for s in stats.shards)
            # placement/epoch invariants: a restart is not a migration
            assert system.server.cluster.placement.version == version_before
            assert stats.migrations == 0
            # bit-for-bit parity with the never-restarted reference
            assert (
                system.server.knn_table.as_dict()
                == reference_system.server.knn_table.as_dict()
            )
            for channel in ("server->client", "client->server"):
                assert system.server.meter.reading(channel) == (
                    reference_system.server.meter.reading(channel)
                )
        finally:
            system.close()
            reference_system.close()

    def test_rolling_restart_needs_a_worker_hosting_executor(self):
        system = HyRecSystem(
            HyRecConfig(engine="sharded", num_shards=2, executor="serial")
        )
        try:
            with pytest.raises(TypeError, match="worker-hosting"):
                system.server.cluster.rolling_restart()
        finally:
            system.close()


class TestSupervisorSurface:
    """The supervisor's bookkeeping is observable where operators look."""

    def test_ping_measures_and_records_rtt(self):
        table = ProfileTable()
        executor = ProcessExecutor()
        executor.attach(table, num_shards=2)
        try:
            supervisor = executor.supervisor
            assert supervisor.last_ping_ms == [-1.0, -1.0]  # never probed
            rtt = supervisor.ping(0)
            assert rtt >= 0.0
            assert supervisor.last_ping_ms[0] == rtt
            assert supervisor.last_ping_ms[1] == -1.0
            assert supervisor.alive(0) and supervisor.alive(1)
            assert supervisor.healthy
        finally:
            executor.close()

    def test_stats_surface_liveness_after_recovery(self):
        rng = random.Random(3)
        table = ProfileTable()
        _populate(rng, table, users=16, items=40)
        executor = ProcessExecutor(retry_backoff=0.01)
        coordinator = ClusterCoordinator(table, num_shards=3, executor=executor)
        try:
            _kill(executor, 2)
            coordinator.process_engine_job(_job(rng, users=16))
            stats = executor.stats()
            assert all(stat.alive for stat in stats)
            assert [stat.restarts for stat in stats] == [0, 0, 1]
            assert all(stat.last_ping_ms >= 0.0 for stat in stats)
            assert executor.supervisor.recovery_times[0] > 0.0
        finally:
            coordinator.close()

    def test_server_stats_count_drops_and_recoveries(self):
        system = HyRecSystem(
            HyRecConfig(
                engine="sharded",
                num_shards=2,
                executor="process",
                retry_backoff=0.01,
            ),
            seed=5,
        )
        try:
            rng = random.Random(5)
            for uid in range(12):
                for item in rng.sample(range(30), 6):
                    system.record_rating(uid, item, 1.0)
            executor = system.server.cluster.executor
            _kill(executor, 0)
            system.request(3)
            stats = system.server.stats
            assert stats.recoveries == 1
            assert stats.dropped_requests == 0
        finally:
            system.close()
