"""Tests for the HyRec widget (client-side execution)."""

from __future__ import annotations

import pytest

from repro.core.client import HyRecWidget, make_job
from repro.core.recommend import Recommendation
from repro.core.similarity import jaccard
from repro.sim.devices import Device, LAPTOP


def simple_job(k=2, r=3):
    return make_job(
        user_token="u_me",
        user_profile={"1": 1.0, "2": 1.0, "9": 0.0},
        candidates={
            "u_a": {"1": 1.0, "2": 1.0, "3": 1.0},  # very similar
            "u_b": {"1": 1.0, "4": 1.0},  # somewhat similar
            "u_c": {"7": 1.0, "8": 1.0},  # disjoint
        },
        k=k,
        r=r,
    )


class TestProcessJob:
    def test_neighbors_ranked_by_similarity(self):
        result = HyRecWidget().process_job(simple_job())
        assert result.neighbor_tokens == ["u_a", "u_b"]
        assert result.neighbor_scores[0] > result.neighbor_scores[1]

    def test_recommends_unseen_items_by_popularity(self):
        result = HyRecWidget().process_job(simple_job(r=5))
        # Items 3, 4, 7, 8 are unseen; 9 is rated (disliked) and 1, 2
        # are rated: none of the rated ones may appear.
        assert set(result.recommended_items) <= {"3", "4", "7", "8"}
        assert "1" not in result.recommended_items

    def test_echoes_user_token(self):
        result = HyRecWidget().process_job(simple_job())
        assert result.user_token == "u_me"

    def test_never_selects_self_token(self):
        job = make_job(
            user_token="u_me",
            user_profile={"1": 1.0},
            candidates={"u_me": {"1": 1.0}, "u_x": {"1": 1.0}},
            k=2,
            r=1,
        )
        result = HyRecWidget().process_job(job)
        assert "u_me" not in result.neighbor_tokens

    def test_widget_is_stateless(self):
        widget = HyRecWidget()
        first = widget.process_job(simple_job())
        second = widget.process_job(simple_job())
        assert first == second

    def test_dislikes_do_not_count_as_popularity(self):
        job = make_job(
            user_token="u",
            user_profile={},
            candidates={"a": {"5": 0.0}, "b": {"6": 1.0}},
            k=1,
            r=5,
        )
        result = HyRecWidget().process_job(job)
        assert result.recommended_items == ["6"]

    def test_metric_from_job_payload(self):
        """The widget honors the server-configured metric name."""
        job = make_job(
            user_token="u",
            user_profile={"1": 1.0, "2": 1.0, "3": 1.0, "4": 1.0},
            candidates={"other": {"1": 1.0, "2": 1.0}},
            k=1,
            r=1,
            metric="jaccard",
        )
        result = HyRecWidget().process_job(job)
        # jaccard({1..4},{1,2}) = 2/4; cosine would give 2/sqrt(8).
        assert result.neighbor_scores[0] == pytest.approx(0.5)

    def test_similarity_override_hook(self):
        widget = HyRecWidget(similarity=jaccard)
        job = simple_job()
        result = widget.process_job(job)
        assert result.neighbor_tokens[0] == "u_a"

    def test_recommender_override_hook(self):
        def recommend_nothing(user_rated, candidate_liked, r):
            return [Recommendation(item_id="sentinel", popularity=0)]

        widget = HyRecWidget(recommender=recommend_nothing)
        result = widget.process_job(simple_job())
        assert result.recommended_items == ["sentinel"]


class TestDeviceEstimation:
    def test_op_count_scales_with_profiles(self):
        widget = HyRecWidget()
        small = widget.op_count(simple_job())
        big_job = make_job(
            user_token="u",
            user_profile={str(i): 1.0 for i in range(100)},
            candidates={
                f"c{j}": {str(i): 1.0 for i in range(100)} for j in range(10)
            },
            k=2,
            r=3,
        )
        assert widget.op_count(big_job) > small

    def test_estimated_time_requires_device(self):
        with pytest.raises(RuntimeError, match="no device model"):
            HyRecWidget().estimated_time(simple_job())

    def test_estimated_time_positive(self):
        widget = HyRecWidget(device=Device(LAPTOP))
        assert widget.estimated_time(simple_job()) > 0
