"""Tests for the HyRec server (orchestration, privacy, validation)."""

from __future__ import annotations

import pytest

from repro.core.config import HyRecConfig
from repro.core.jobs import JobResult
from repro.core.server import HyRecServer
from repro.messages import encode_json


class TestRegistration:
    def test_record_rating_creates_user(self):
        server = HyRecServer(seed=1)
        server.record_rating(1, 10, 1.0)
        assert server.num_users == 1
        assert server.profiles.get(1).liked_items() == {10}

    def test_new_user_gets_random_bootstrap_knn(self):
        server = HyRecServer(HyRecConfig(k=3), seed=1)
        for uid in range(10):
            server.record_rating(uid, uid, 1.0)
        # Users joining after enough others exist get a full bootstrap.
        assert len(server.knn_table.neighbors_of(9)) == 3
        assert 9 not in server.knn_table.neighbors_of(9)

    def test_first_user_has_no_bootstrap(self):
        server = HyRecServer(seed=1)
        server.record_rating(0, 1, 1.0)
        assert server.knn_table.neighbors_of(0) == []

    def test_reregistration_keeps_profile(self):
        server = HyRecServer(seed=1)
        server.record_rating(1, 10, 1.0)
        server.register_user(1)
        assert server.profiles.get(1).liked_items() == {10}


class TestOnlineRequest:
    def test_job_contains_user_profile(self, loaded_server):
        job = loaded_server.handle_online_request(0)
        assert job.user_profile == {"10": 1.0, "11": 1.0, "20": 0.0}

    def test_job_candidates_are_anonymous(self, loaded_server):
        job = loaded_server.handle_online_request(0)
        raw_ids = {str(uid) for uid in (0, 1, 2, 3)}
        for token in job.candidates:
            assert token not in raw_ids
            assert token.startswith("u")

    def test_job_excludes_requesting_user(self, loaded_server):
        job = loaded_server.handle_online_request(0)
        own = loaded_server.anonymizer.token_for_user(0)
        assert own not in job.candidates
        assert job.user_token == own

    def test_job_carries_config(self, loaded_server):
        job = loaded_server.handle_online_request(1)
        assert job.k == 2
        assert job.r == 3
        assert job.metric == "cosine"

    def test_traffic_metered_both_ways(self, loaded_server):
        job = loaded_server.handle_online_request(0)
        loaded_server.render_online_response(job)
        down = loaded_server.meter.reading("server->client")
        assert down.messages == 1
        assert down.wire_bytes > 0
        result = JobResult(
            user_token=job.user_token, neighbor_tokens=[], recommended_items=[]
        )
        loaded_server.handle_knn_update(0, result)
        up = loaded_server.meter.reading("client->server")
        assert up.messages == 1

    def test_wire_payload_never_leaks_user_ids(self, loaded_server):
        """No raw user id may appear as a candidate key on the wire."""
        job = loaded_server.handle_online_request(0)
        wire = encode_json(job.to_payload()).decode()
        for uid in (1, 2, 3):
            token = loaded_server.anonymizer.token_for_user(uid)
            # The token is on the wire; the plain '"<uid>":' key is not.
            if token in wire:
                assert f'"{uid}":{{' not in wire


class TestKnnUpdate:
    def _round_trip(self, server, uid=0):
        from repro.core.client import HyRecWidget

        job = server.handle_online_request(uid)
        result = HyRecWidget().process_job(job)
        return server.handle_knn_update(uid, result)

    def test_update_fills_knn_table(self, loaded_server):
        self._round_trip(loaded_server, uid=0)
        neighbors = loaded_server.knn_table.neighbors_of(0)
        assert 0 < len(neighbors) <= loaded_server.config.k
        assert 0 not in neighbors

    def test_similar_user_selected(self, loaded_server):
        """User 1 shares items 10, 11 with user 0: must be a neighbor."""
        self._round_trip(loaded_server, uid=0)
        assert 1 in loaded_server.knn_table.neighbors_of(0)

    def test_recommendations_resolved_to_item_ids(self, loaded_server):
        recommendations = self._round_trip(loaded_server, uid=3)
        assert all(isinstance(item, int) for item in recommendations)

    def test_malicious_self_neighbor_filtered(self, loaded_server):
        own = loaded_server.anonymizer.token_for_user(0)
        other = loaded_server.anonymizer.token_for_user(1)
        result = JobResult(
            user_token=own, neighbor_tokens=[own, other], recommended_items=[]
        )
        loaded_server.handle_knn_update(0, result)
        assert loaded_server.knn_table.neighbors_of(0) == [1]

    def test_unknown_token_rejected(self, loaded_server):
        result = JobResult(
            user_token="u0_zz",
            neighbor_tokens=["u0_nosuchtoken"],
            recommended_items=[],
        )
        with pytest.raises(KeyError):
            loaded_server.handle_knn_update(0, result)

    def test_oversized_neighbor_list_truncated(self, loaded_server):
        tokens = [
            loaded_server.anonymizer.token_for_user(uid) for uid in (1, 2, 3)
        ]
        result = JobResult(
            user_token=loaded_server.anonymizer.token_for_user(0),
            neighbor_tokens=tokens,
            recommended_items=[],
        )
        loaded_server.handle_knn_update(0, result)
        assert len(loaded_server.knn_table.neighbors_of(0)) <= loaded_server.config.k


class TestReshuffling:
    def test_periodic_reshuffle_changes_epoch(self):
        server = HyRecServer(HyRecConfig(k=2, reshuffle_every=3), seed=1)
        for uid in range(6):
            server.record_rating(uid, uid, 1.0)
        for _ in range(6):
            server.handle_online_request(0)
        assert server.anonymizer.epoch == 2
        assert server.stats.reshuffles == 2

    def test_job_and_result_share_epoch(self):
        from repro.core.client import HyRecWidget

        server = HyRecServer(HyRecConfig(k=2, reshuffle_every=1), seed=1)
        for uid in range(5):
            server.record_rating(uid, uid % 3, 1.0)
        widget = HyRecWidget()
        # Reshuffle happens at request start; tokens in the job stay
        # valid through the synchronous result update.
        for _ in range(4):
            job = server.handle_online_request(1)
            result = widget.process_job(job)
            server.handle_knn_update(1, result)  # must not raise

    def test_anonymize_items_round_trip(self):
        from repro.core.client import HyRecWidget

        server = HyRecServer(HyRecConfig(k=2, r=2, anonymize_items=True), seed=1)
        for uid in range(4):
            server.record_rating(uid, 100 + uid, 1.0)
            server.record_rating(uid, 200, 1.0)
        job = server.handle_online_request(0)
        # Item keys on the wire are tokens, not raw ids.
        for profile in job.candidates.values():
            for key in profile:
                assert key.startswith("i")
        result = HyRecWidget().process_job(job)
        recommendations = server.handle_knn_update(0, result)
        assert all(isinstance(item, int) for item in recommendations)
        assert all(item in (100, 101, 102, 103, 200) for item in recommendations)


class TestStats:
    def test_counters(self, loaded_server):
        from repro.core.client import HyRecWidget

        widget = HyRecWidget()
        for uid in (0, 1):
            job = loaded_server.handle_online_request(uid)
            loaded_server.handle_knn_update(uid, widget.process_job(job))
        stats = loaded_server.stats
        assert stats.online_requests == 2
        assert stats.knn_updates == 2
        assert stats.reshuffles == 0
