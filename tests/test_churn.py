"""Tests for the churn process and churn-aware overlay behaviour."""

from __future__ import annotations

import pytest

from repro.baselines.p2p import P2PRecommender
from repro.gossip.churn import ChurnProcess


class TestChurnProcess:
    def test_initial_population_online(self):
        churn = ChurnProcess([1, 2, 3], 0.1, 0.5, seed=0)
        assert churn.online == {1, 2, 3}
        assert churn.online_fraction == 1.0

    def test_no_churn_is_stable(self):
        churn = ChurnProcess(list(range(50)), 0.0, 1.0, seed=0)
        for _ in range(10):
            departed, returned = churn.step()
            assert not departed and not returned
        assert churn.online_fraction == 1.0

    def test_full_leave_empties_population(self):
        churn = ChurnProcess(list(range(20)), 1.0, 0.0, seed=0)
        churn.step()
        assert churn.online == set()
        assert churn.online_fraction == 0.0

    def test_stationary_fraction(self):
        churn = ChurnProcess(list(range(600)), 0.2, 0.3, seed=1)
        for _ in range(60):
            churn.step()
        expected = churn.expected_online_fraction()
        assert expected == pytest.approx(0.6)
        # Average the tail to smooth the stochastic wobble.
        tail = churn.stats.online_history[-20:]
        observed = sum(tail) / (20 * 600)
        assert observed == pytest.approx(expected, abs=0.08)

    def test_partition_invariant(self):
        churn = ChurnProcess(list(range(40)), 0.3, 0.3, seed=2)
        for _ in range(15):
            churn.step()
            assert churn.online | churn.offline == set(range(40))
            assert churn.online & churn.offline == set()

    def test_stats_counters(self):
        churn = ChurnProcess(list(range(30)), 0.5, 0.5, seed=3)
        churn.step()
        churn.step()
        assert churn.stats.cycles == 2
        assert churn.stats.departures > 0
        assert len(churn.stats.online_history) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnProcess([1], -0.1, 0.5)
        with pytest.raises(ValueError):
            ChurnProcess([1], 0.5, 1.5)


class TestOverlaySuspension:
    def build(self, trace):
        p2p = P2PRecommender(k=4, seed=0)
        for rating in trace:
            p2p.record_rating(rating.user, rating.item, rating.value)
        p2p.run_cycles(8)
        return p2p

    def test_offline_node_keeps_profile_and_view(self, ml1_small):
        p2p = self.build(ml1_small)
        victim = next(iter(p2p.profiles))
        view_before = list(p2p.overlay.nodes[victim].neighbors)
        p2p.set_offline(victim)
        p2p.run_cycles(3)
        assert victim in p2p.profiles  # profile lives on the machine
        assert p2p.overlay.nodes[victim].neighbors == view_before

    def test_offline_node_evicted_from_peers(self, ml1_small):
        p2p = self.build(ml1_small)
        victim = next(iter(p2p.profiles))
        p2p.set_offline(victim)
        p2p.run_cycles(6)
        holders = [
            uid
            for uid, node in p2p.overlay.nodes.items()
            if uid != victim and victim in node.neighbors
        ]
        # Everyone who tried to reach the victim dropped it; stragglers
        # are possible only among nodes that never selected it.
        assert len(holders) < p2p.num_nodes * 0.2

    def test_online_users_listing(self, ml1_small):
        p2p = self.build(ml1_small)
        users = list(p2p.profiles)
        p2p.set_offline(users[0])
        online = p2p.online_users()
        assert users[0] not in online
        assert len(online) == len(users) - 1

    def test_resume_rejoins_gossip(self, ml1_small):
        p2p = self.build(ml1_small)
        victim = next(iter(p2p.profiles))
        p2p.set_offline(victim)
        p2p.run_cycles(2)
        p2p.set_online(victim)
        assert p2p.overlay.is_online(victim)
        p2p.run_cycles(4)
        # The returned node participates again: its view gets refreshed
        # against currently-live peers.
        assert p2p.overlay.nodes[victim].neighbors

    def test_apply_churn_bulk(self, ml1_small):
        p2p = self.build(ml1_small)
        users = sorted(p2p.profiles)
        p2p.apply_churn(departed=set(users[:3]), returned=set())
        assert len(p2p.online_users()) == len(users) - 3
        p2p.apply_churn(departed=set(), returned=set(users[:3]))
        assert len(p2p.online_users()) == len(users)
