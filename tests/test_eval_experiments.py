"""Smoke tests for every table/figure experiment at tiny scale.

Each test runs the full experiment pipeline (generation, replay,
measurement, report formatting) at a scale where it finishes in
seconds, and asserts the structural and directional properties the
paper's shapes rest on.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_p2p_bandwidth,
    run_sampler_ablation,
    run_similarity_ablation,
    run_table2,
    run_table3,
)
from repro.eval.fig8_fig9 import build_population, scalability_factor


class TestTable2:
    def test_stats_and_report(self):
        result = run_table2(scale=0.02, seed=1, names=["ML1", "Digg"])
        assert result.stats["ML1"].num_users > 0
        # Profile-size shape: ML1 dense, Digg sparse.
        assert (
            result.stats["ML1"].avg_ratings_per_user
            > 3 * result.stats["Digg"].avg_ratings_per_user
        )
        report = result.format_report()
        assert "ML1" in report and "Digg" in report


class TestTable3:
    def test_paper_calibrated_matches_paper(self):
        result = run_table3(mode="paper-calibrated")
        assert result.reductions["ML1"][0] == pytest.approx(0.086, abs=0.005)
        assert result.reductions["ML3"] == pytest.approx([0.492] * 3, abs=0.001)
        assert "Table 3" in result.format_report()

    def test_measured_mode_runs(self):
        result = run_table3(mode="measured", scale=0.01, names=["ML1"])
        assert 0.0 <= result.reductions["ML1"][0] <= 0.492
        # More frequent recomputation saves more, up to the cap.
        r48, r24, r12 = result.reductions["ML1"]
        assert r48 <= r24 <= r12

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run_table3(mode="wrong")


class TestFig3Fig4:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(scale=0.04, seed=2, probes=5)

    def test_all_series_present(self, fig3):
        assert set(fig3.series) == {
            "HyRec k=10",
            "HyRec k=10 IR=7",
            "HyRec k=20",
            "Offline Ideal k=10",
            "Ideal upper bound",
        }

    def test_view_similarity_grows(self, fig3):
        for name, series in fig3.series.items():
            assert series[-1][1] >= series[0][1], name

    def test_ideal_dominates_everyone(self, fig3):
        ideal = dict(fig3.series["Ideal upper bound"])
        for name, series in fig3.series.items():
            if name == "Ideal upper bound":
                continue
            for day, value in series:
                assert value <= ideal[day] + 0.02, (name, day)

    def test_report_formats(self, fig3):
        assert "Figure 3" in fig3.format_report()

    def test_fig4_activity_correlation(self):
        result = run_fig4(scale=0.04, seed=2)
        assert result.points
        # Most users near their ideal on a small world (paper: >70%
        # ratio for the vast majority).
        assert result.fraction_above(0.7) > 0.6
        assert "Figure 4" in result.format_report()


class TestFig5:
    def test_converges_below_bound(self):
        result = run_fig5(scale=0.1, seed=1, ks=(5,), buckets=6)
        series = result.series["k=5"]
        bound = result.upper_bounds["k=5"]
        assert result.final_mean("k=5") < bound
        assert "Figure 5" in result.format_report()
        assert len(series) >= 3


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(scale=0.04, seed=3)

    def test_all_systems_present(self, fig6):
        assert set(fig6.results) == {
            "HyRec",
            "Offline Ideal p=24h",
            "Offline Ideal p=1h",
            "Online Ideal",
        }

    def test_hits_monotone_in_n(self, fig6):
        for quality in fig6.results.values():
            counts = [quality.hits_at[n] for n in range(1, fig6.n_max + 1)]
            assert counts == sorted(counts)

    def test_online_ideal_at_least_offline_24h(self, fig6):
        # 10% slack: tiny smoke-test populations make hit counts noisy.
        assert (
            fig6.results["Online Ideal"].hits_at[10]
            >= fig6.results["Offline Ideal p=24h"].hits_at[10] * 0.9
        )

    def test_report(self, fig6):
        assert "Figure 6" in fig6.format_report()


class TestFig7:
    def test_orderings(self):
        result = run_fig7(
            scales={"ML1": 0.1, "Digg": 0.008},
            names=["ML1", "Digg"],
            seed=1,
            k=5,
        )
        for dataset in ("ML1", "Digg"):
            walltimes = result.walltimes[dataset]
            assert set(walltimes) == {
                "Exhaustive",
                "MahoutSingle",
                "ClusMahout",
                "CRec",
            }
            assert all(v > 0 for v in walltimes.values())
        assert "Figure 7" in result.format_report()


class TestFig8Fig9:
    def test_fig8_hyrec_beats_crec_and_ideal_is_worst(self):
        result = run_fig8(
            profile_sizes=(10, 100),
            num_users=80,
            requests=30,
            seed=1,
        )
        assert result.mean_ms["HyRec k=10"][100] < result.mean_ms["CRec k=10"][100]
        assert (
            result.mean_ms["Online Ideal k=10"][100]
            > result.mean_ms["HyRec k=10"][100]
        )
        assert "Figure 8" in result.format_report()

    def test_fig9_saturation_shapes(self):
        result = run_fig9(
            concurrencies=(1, 16, 128),
            profile_sizes=(10,),
            num_users=60,
            calibration_requests=30,
            seed=1,
        )
        for name, curve in result.curves.items():
            assert curve[-1].mean_response_ms > curve[0].mean_response_ms, name
        assert "Figure 9" in result.format_report()

    def test_scalability_factor_direction(self):
        factors = scalability_factor(
            hyrec_profile_size=200,
            crec_profile_size=10,
            num_users=80,
            requests=60,
        )
        # HyRec at 20x the profile size must still hold a meaningful
        # share of CRec's small-profile capacity (the Section 5.5
        # claim's direction).  The threshold is loose because this is
        # a timing measurement at smoke-test scale.
        assert factors["capacity_ratio"] * 20 > 1.2

    def test_build_population_validates(self):
        with pytest.raises(ValueError):
            build_population(num_users=5, profile_size=10, k=10)


class TestFig10:
    def test_sizes_grow_and_compress(self):
        result = run_fig10(
            profile_sizes=(10, 100), num_users=60, jobs_per_point=5, seed=1
        )
        assert result.raw_bytes[100] > result.raw_bytes[10]
        assert result.gzip_bytes[100] < result.raw_bytes[100]
        assert 0.5 < result.compression_ratio(100) < 0.95
        assert "Figure 10" in result.format_report()


class TestFig11To13:
    def test_fig11_ordering(self):
        result = run_fig11()
        progress = result.progress
        for index in range(len(result.loads)):
            assert (
                progress["Baseline"][index]
                > progress["Decentralized"][index]
                > progress["HyRec operation"][index]
            )
        # Load degrades the monitor in every configuration.
        for series in progress.values():
            assert series[-1] < series[0]
        assert "Figure 11" in result.format_report()

    def test_fig12_paper_targets(self):
        result = run_fig12(loads=(0.0, 0.5, 1.0))
        smartphone = result.times_ms["smartphone"]
        laptop = result.times_ms["laptop"]
        assert laptop[1] < 10.0  # <10ms at 50% load
        assert smartphone[1] < 60.0  # <60ms at 50% load
        assert laptop[2] / laptop[0] < 1.35  # gentle slope
        assert "Figure 12" in result.format_report()

    def test_fig13_growth_factors(self):
        result = run_fig13(profile_sizes=(10, 100, 500))
        assert result.growth_factor("laptop k=10") < 1.55
        assert 6.0 < result.growth_factor("smartphone k=10") < 8.5
        # k=20 jobs cost more than k=10 at equal profile size.
        assert (
            result.times_ms["laptop k=20"][500]
            > result.times_ms["laptop k=10"][500]
        )
        assert "Figure 13" in result.format_report()


class TestP2PBandwidth:
    def test_hyrec_orders_of_magnitude_cheaper(self):
        result = run_p2p_bandwidth(scale=0.002, seed=1, measured_cycles=8)
        assert result.p2p_bytes_per_node > 0
        assert result.hyrec_bytes_per_widget > 0
        # The paper's headline: HyRec is a tiny fraction of P2P.
        assert result.ratio < 0.05
        assert "5.6" in result.format_report()


class TestAblations:
    def test_sampler_ablation_full_wins(self):
        result = run_sampler_ablation(scale=0.03, seed=4)
        full = result.view_similarity["full (2-hop + random)"]
        for name, value in result.view_similarity.items():
            assert value <= full + 0.05, name
        assert result.ideal >= full - 1e-9
        assert "Ablation" in result.format_report()

    def test_similarity_ablation_all_metrics_run(self):
        result = run_similarity_ablation(scale=0.03, seed=4)
        assert set(result.view_similarity) == {"cosine", "jaccard", "overlap"}
        for name in result.view_similarity:
            assert result.view_similarity[name] <= result.ideal[name] + 1e-9
        assert "Ablation" in result.format_report()
