"""Unit and property tests for Algorithm 2 (item recommendation)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.recommend import Recommendation, recommend_most_popular

item_sets = st.frozensets(st.integers(min_value=0, max_value=40), max_size=15)
liked_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=30),
    values=item_sets,
    max_size=15,
)


class TestRecommendMostPopular:
    def test_counts_popularity(self):
        candidates = {
            1: frozenset({10, 11}),
            2: frozenset({10}),
            3: frozenset({11}),
        }
        result = recommend_most_popular(frozenset(), candidates, r=2)
        assert [(r.item_id, r.popularity) for r in result] == [(10, 2), (11, 2)]

    def test_excludes_rated_items(self):
        """Anything in Pu -- liked OR disliked -- is never recommended."""
        candidates = {1: frozenset({10, 11, 12})}
        result = recommend_most_popular(frozenset({10, 12}), candidates, r=5)
        assert [r.item_id for r in result] == [11]

    def test_tie_break_by_item_id(self):
        candidates = {1: frozenset({30, 20, 10})}
        result = recommend_most_popular(frozenset(), candidates, r=3)
        assert [r.item_id for r in result] == [10, 20, 30]

    def test_r_limits_results(self):
        candidates = {1: frozenset(range(20))}
        result = recommend_most_popular(frozenset(), candidates, r=4)
        assert len(result) == 4

    def test_accepts_iterable_of_sets(self):
        result = recommend_most_popular(
            frozenset(), [frozenset({1}), frozenset({1, 2})], r=2
        )
        assert result[0] == Recommendation(item_id=1, popularity=2)

    def test_invalid_r_raises(self):
        with pytest.raises(ValueError, match="r must be at least 1"):
            recommend_most_popular(frozenset(), {}, r=0)

    def test_empty_candidates(self):
        assert recommend_most_popular(frozenset({1}), {}, r=3) == []

    def test_everything_already_rated(self):
        candidates = {1: frozenset({5, 6})}
        assert recommend_most_popular(frozenset({5, 6}), candidates, r=3) == []


class TestRecommendProperties:
    @given(rated=item_sets, candidates=liked_maps, r=st.integers(1, 10))
    def test_never_recommends_rated(self, rated, candidates, r):
        result = recommend_most_popular(rated, candidates, r=r)
        assert all(rec.item_id not in rated for rec in result)

    @given(rated=item_sets, candidates=liked_maps, r=st.integers(1, 10))
    def test_result_bounded_by_r(self, rated, candidates, r):
        assert len(recommend_most_popular(rated, candidates, r=r)) <= r

    @given(rated=item_sets, candidates=liked_maps, r=st.integers(1, 10))
    def test_popularity_sorted_descending(self, rated, candidates, r):
        result = recommend_most_popular(rated, candidates, r=r)
        pops = [rec.popularity for rec in result]
        assert pops == sorted(pops, reverse=True)

    @given(rated=item_sets, candidates=liked_maps, r=st.integers(1, 10))
    def test_popularity_counts_are_exact(self, rated, candidates, r):
        result = recommend_most_popular(rated, candidates, r=r)
        for rec in result:
            true_count = sum(
                1 for liked in candidates.values() if rec.item_id in liked
            )
            assert rec.popularity == true_count

    @given(rated=item_sets, candidates=liked_maps, r=st.integers(1, 10))
    def test_recommended_items_come_from_candidates(self, rated, candidates, r):
        all_liked = set()
        for liked in candidates.values():
            all_liked |= liked
        result = recommend_most_popular(rated, candidates, r=r)
        assert all(rec.item_id in all_liked for rec in result)

    @given(rated=item_sets, candidates=liked_maps)
    def test_no_duplicate_items(self, rated, candidates):
        result = recommend_most_popular(rated, candidates, r=10)
        items = [rec.item_id for rec in result]
        assert len(items) == len(set(items))
