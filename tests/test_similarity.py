"""Unit and property tests for the similarity metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.similarity import (
    cosine,
    get_metric,
    jaccard,
    metric_names,
    overlap,
    register_metric,
)

item_sets = st.frozensets(st.integers(min_value=0, max_value=60), max_size=25)


class TestCosine:
    def test_identical_sets_score_one(self):
        assert cosine({1, 2, 3}, {1, 2, 3}) == pytest.approx(1.0)

    def test_disjoint_sets_score_zero(self):
        assert cosine({1, 2}, {3, 4}) == 0.0

    def test_empty_set_scores_zero(self):
        assert cosine(set(), {1, 2}) == 0.0
        assert cosine({1, 2}, set()) == 0.0
        assert cosine(set(), set()) == 0.0

    def test_known_value(self):
        # |{2}| / sqrt(2 * 3)
        assert cosine({1, 2}, {2, 3, 4}) == pytest.approx(1 / math.sqrt(6))

    def test_subset_relationship(self):
        # A subset of B: cos = |A| / sqrt(|A| |B|) = sqrt(|A| / |B|)
        assert cosine({1, 2}, {1, 2, 3, 4}) == pytest.approx(math.sqrt(0.5))


class TestJaccard:
    def test_identical_sets_score_one(self):
        assert jaccard({5, 6}, {5, 6}) == 1.0

    def test_disjoint_sets_score_zero(self):
        assert jaccard({1}, {2}) == 0.0

    def test_known_value(self):
        # |{2}| / |{1,2,3,4}|
        assert jaccard({1, 2}, {2, 3, 4}) == pytest.approx(0.25)

    def test_empty_sets(self):
        assert jaccard(set(), {1}) == 0.0


class TestOverlap:
    def test_subset_scores_one(self):
        assert overlap({1, 2}, {1, 2, 3, 4, 5}) == 1.0

    def test_known_value(self):
        assert overlap({1, 2, 3}, {3, 4}) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert overlap(set(), set()) == 0.0


class TestMetricProperties:
    @given(a=item_sets, b=item_sets)
    def test_cosine_symmetric(self, a, b):
        assert cosine(a, b) == pytest.approx(cosine(b, a))

    @given(a=item_sets, b=item_sets)
    def test_jaccard_symmetric(self, a, b):
        assert jaccard(a, b) == pytest.approx(jaccard(b, a))

    @given(a=item_sets, b=item_sets)
    def test_overlap_symmetric(self, a, b):
        assert overlap(a, b) == pytest.approx(overlap(b, a))

    @given(a=item_sets, b=item_sets)
    def test_all_metrics_bounded(self, a, b):
        for metric in (cosine, jaccard, overlap):
            value = metric(a, b)
            assert 0.0 <= value <= 1.0 + 1e-12

    @given(a=item_sets)
    def test_self_similarity_is_one_when_nonempty(self, a):
        for metric in (cosine, jaccard, overlap):
            expected = 1.0 if a else 0.0
            assert metric(a, a) == pytest.approx(expected)

    @given(a=item_sets, b=item_sets)
    def test_jaccard_lower_bound_of_cosine(self, a, b):
        # For binary sets, jaccard <= cosine <= overlap always holds.
        assert jaccard(a, b) <= cosine(a, b) + 1e-12
        assert cosine(a, b) <= overlap(a, b) + 1e-12

    @given(a=item_sets, b=item_sets)
    def test_zero_iff_no_intersection(self, a, b):
        has_overlap = bool(a & b)
        assert (cosine(a, b) > 0) == has_overlap


class TestRegistry:
    def test_builtins_registered(self):
        assert {"cosine", "jaccard", "overlap"} <= set(metric_names())

    def test_get_metric_returns_callable(self):
        assert get_metric("cosine") is cosine

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="unknown similarity metric"):
            get_metric("euclidean")

    def test_register_custom_metric(self):
        name = "test-only-dice"

        def dice(a, b):
            if not a or not b:
                return 0.0
            return 2 * len(a & b) / (len(a) + len(b))

        if name not in metric_names():
            register_metric(name, dice)
        assert get_metric(name)({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_reregistering_builtin_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_metric("cosine", cosine)
