"""Unit tests for the sharded cluster engine's building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    BatchScheduler,
    ClusterCoordinator,
    SerialExecutor,
    ShardPlacement,
    ShardedLikedMatrix,
    ThreadPoolExecutor,
    make_executor,
    merge_popularity,
    merge_topk,
)
from repro.core.tables import ProfileTable
from repro.engine import LikedMatrix, select_top_items
from repro.engine.jobs import EngineJob


class TestShardPlacement:
    def test_deterministic_and_in_range(self):
        placement = ShardPlacement(4)
        for uid in range(500):
            shard = placement.shard_of(uid)
            assert 0 <= shard < 4
            assert shard == placement.shard_of(uid)

    def test_vectorized_matches_scalar(self):
        placement = ShardPlacement(8)
        ids = np.arange(0, 3000, 7, dtype=np.int64)
        vectorized = placement.shards_of(ids)
        assert [placement.shard_of(int(u)) for u in ids] == vectorized.tolist()

    def test_dense_ranges_stay_balanced(self):
        # The avalanche hash must not map arithmetic id structure onto
        # shard structure (uid % n would put a strided trace entirely
        # on one shard).
        placement = ShardPlacement(8)
        counts = np.bincount(
            placement.shards_of(np.arange(8000, dtype=np.int64)), minlength=8
        )
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 1.5 * counts.mean()

    def test_single_shard_owns_everything(self):
        placement = ShardPlacement(1)
        assert placement.shards_of(np.arange(50)).tolist() == [0] * 50

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlacement(0)


class TestShardedLikedMatrix:
    def _loaded(self, num_shards: int = 4):
        table = ProfileTable()
        sharded = ShardedLikedMatrix(table, num_shards)
        for uid in range(20):
            for item in range(uid % 5 + 1):
                table.record(uid, item, 1.0)
        return table, sharded

    def test_writes_route_to_owning_shard_only(self):
        table, sharded = self._loaded()
        writes = [shard.writes_applied for shard in sharded.shards]
        assert sum(writes) == sum(uid % 5 + 1 for uid in range(20))
        owner = sharded.shard_of(3)
        before = [shard.writes_applied for shard in sharded.shards]
        table.record(3, 99, 1.0)
        after = [shard.writes_applied for shard in sharded.shards]
        assert after[owner] == before[owner] + 1
        assert sum(after) == sum(before) + 1

    def test_rows_match_unsharded_matrix(self):
        table, sharded = self._loaded()
        reference = LikedMatrix(table)
        for uid in range(20):
            shard = sharded.shards[sharded.shard_of(uid)]
            shard_row = shard.liked_row(uid)
            reference_row = reference.liked_row(uid)
            assert sorted(shard.item_array()[shard_row].tolist()) == sorted(
                reference.item_array()[reference_row].tolist()
            )

    def test_partition_preserves_order_and_covers(self):
        _, sharded = self._loaded()
        ids = list(range(19, -1, -1))
        parts = sharded.partition(ids)
        assert len(parts) == 4
        seen = []
        for shard, (part_ids, positions) in enumerate(parts):
            assert [sharded.shard_of(int(u)) for u in part_ids] == [
                shard
            ] * part_ids.size
            # Positions index the input sequence, ascending.
            assert [ids[p] for p in positions.tolist()] == part_ids.tolist()
            assert positions.tolist() == sorted(positions.tolist())
            seen.extend(part_ids.tolist())
        assert sorted(seen) == sorted(ids)

    def test_stats_count_rows_after_reads(self):
        table, sharded = self._loaded()
        # Materialize every row through a read.
        for uid in range(20):
            sharded.shards[sharded.shard_of(uid)].liked_row(uid)
        stats = sharded.stats()
        assert sum(stat.users for stat in stats) == 20
        assert sum(stat.arena_live for stat in stats) == sum(
            uid % 5 + 1 for uid in range(20)
        )
        assert all(stat.shard == index for index, stat in enumerate(stats))


class TestMergeTopK:
    def test_ties_across_shards_break_on_position(self):
        # Same score in different shards: the lower position (earlier
        # token in the job's ascending-token order) must win, exactly
        # like the single-matrix stable sort's (-score, token) order.
        shard_a = (np.array([0.5, 0.25]), np.array([1, 3]))
        shard_b = (np.array([0.5, 0.25]), np.array([0, 2]))
        positions, scores = merge_topk(
            [shard_a[0], shard_b[0]], [shard_a[1], shard_b[1]], k=3
        )
        assert positions.tolist() == [0, 1, 2]
        assert scores.tolist() == [0.5, 0.5, 0.25]

    def test_zero_scores_tie_on_position(self):
        # -0.0 == 0.0 must not split the tie group.
        positions, _ = merge_topk(
            [np.array([0.0]), np.array([-0.0])],
            [np.array([1]), np.array([0])],
            k=2,
        )
        assert positions.tolist() == [0, 1]

    def test_k_larger_than_total_candidates(self):
        positions, scores = merge_topk(
            [np.array([1.0]), np.array([0.5])],
            [np.array([0]), np.array([1])],
            k=50,
        )
        assert positions.tolist() == [0, 1]
        assert scores.tolist() == [1.0, 0.5]

    def test_empty_shards_are_transparent(self):
        empty_f = np.zeros(0, dtype=np.float64)
        empty_i = np.zeros(0, dtype=np.int64)
        positions, scores = merge_topk(
            [empty_f, np.array([0.9]), empty_f],
            [empty_i, np.array([4]), empty_i],
            k=2,
        )
        assert positions.tolist() == [4]
        assert scores.tolist() == [0.9]

    def test_no_candidates_at_all(self):
        positions, scores = merge_topk([], [], k=5)
        assert positions.size == 0 and scores.size == 0

    def test_single_shard_degenerate_case(self):
        positions, scores = merge_topk(
            [np.array([0.9, 0.5, 0.5])], [np.array([0, 2, 3])], k=2
        )
        assert positions.tolist() == [0, 2]
        assert scores.tolist() == [0.9, 0.5]


class TestMergePopularity:
    def test_counts_sum_across_shards(self):
        # Parts are gathered liked-item *columns* per shard; the merge
        # is one histogram over the shared column space.
        merged = merge_popularity(
            [np.array([3, 1, 3]), np.array([0, 3, 1])]
        )
        assert merged.tolist() == [1, 2, 0, 3]

    def test_single_part_passes_through(self):
        merged = merge_popularity(
            [np.zeros(0, dtype=np.int64), np.array([2, 2, 0])]
        )
        assert merged.tolist() == [1, 0, 2]

    def test_all_empty(self):
        assert merge_popularity([]).size == 0
        assert merge_popularity([np.zeros(0, dtype=np.int64)]).size == 0

    def test_item_tiebreak_is_string_order(self):
        # Counts tie: item "10" sorts before "9" as a string -- the
        # Python engine's (-count, str(item)) key, shared verbatim.
        ranked = select_top_items(np.array([9, 10]), np.array([3, 3]), r=2)
        assert ranked == ["10", "9"]


def _job(user_id, candidates, tokens=None, k=3, r=4):
    tokens = tokens if tokens is not None else [f"u{c:04d}" for c in candidates]
    pairs = sorted(zip(tokens, candidates))
    return EngineJob(
        user_id=user_id,
        user_token=f"u{user_id:04d}",
        candidate_ids=tuple(uid for _, uid in pairs),
        candidate_tokens=tuple(token for token, _ in pairs),
        k=k,
        r=r,
    )


def _toy_coordinator(num_shards=4, executor=None):
    table = ProfileTable()
    coordinator = ClusterCoordinator(table, num_shards, executor=executor)
    for uid in range(12):
        for item in range(uid % 4 + 1):
            table.record(uid, item, 1.0)
        table.record(uid, 50 + uid, 1.0)
    return table, coordinator


class TestBatchScheduler:
    def test_window_auto_flushes(self):
        _, coordinator = _toy_coordinator()
        scheduler = BatchScheduler(coordinator, batch_window=3)
        tickets = [
            scheduler.submit(_job(uid, [u for u in range(12) if u != uid]))
            for uid in range(3)
        ]
        assert all(ticket.done for ticket in tickets)
        assert scheduler.batches_dispatched == 1
        assert scheduler.largest_batch == 3

    def test_result_flushes_partial_window(self):
        _, coordinator = _toy_coordinator()
        scheduler = BatchScheduler(coordinator, batch_window=64)
        ticket = scheduler.submit(_job(0, [1, 2, 3]))
        assert not ticket.done
        assert scheduler.pending == 1
        result = ticket.result()
        assert ticket.done
        assert result.user_token == "u0000"
        assert scheduler.pending == 0

    def test_run_spans_multiple_windows(self):
        _, coordinator = _toy_coordinator()
        scheduler = BatchScheduler(coordinator, batch_window=4)
        jobs = [_job(uid, [u for u in range(10) if u != uid]) for uid in range(10)]
        results = scheduler.run(jobs)
        assert [res.user_token for res in results] == [
            job.user_token for job in jobs
        ]
        assert scheduler.batches_dispatched == 3  # 4 + 4 + 2
        assert scheduler.jobs_dispatched == 10

    def test_invalid_window(self):
        _, coordinator = _toy_coordinator()
        with pytest.raises(ValueError):
            BatchScheduler(coordinator, batch_window=0)


class TestExecutors:
    def test_make_executor_names(self):
        from repro.cluster import ProcessExecutor

        assert isinstance(make_executor("serial"), SerialExecutor)
        thread = make_executor("thread")
        assert isinstance(thread, ThreadPoolExecutor)
        thread.close()
        process = make_executor("process", ipc_write_batch=7)
        assert isinstance(process, ProcessExecutor)
        assert process.ipc_write_batch == 7
        process.close()  # spawns nothing until a coordinator attaches it
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_process_executor_matches_serial(self):
        from repro.cluster import ProcessExecutor

        jobs = [_job(uid, [u for u in range(12) if u != uid]) for uid in range(12)]
        _, serial_coord = _toy_coordinator(executor=SerialExecutor())
        _, process_coord = _toy_coordinator(executor=ProcessExecutor())
        try:
            assert serial_coord.process_batch(jobs) == process_coord.process_batch(
                jobs
            )
        finally:
            process_coord.close()

    def test_thread_pool_matches_serial(self):
        jobs = [_job(uid, [u for u in range(12) if u != uid]) for uid in range(12)]
        _, serial_coord = _toy_coordinator(executor=SerialExecutor())
        thread_executor = ThreadPoolExecutor()
        _, thread_coord = _toy_coordinator(executor=thread_executor)
        try:
            assert serial_coord.process_batch(jobs) == thread_coord.process_batch(
                jobs
            )
        finally:
            thread_coord.close()

    def test_results_preserve_submission_order(self):
        executor = ThreadPoolExecutor(workers=4)
        try:
            assert executor.run([lambda i=i: i for i in range(32)]) == list(
                range(32)
            )
        finally:
            executor.close()


class TestCoordinator:
    def test_batch_equals_one_by_one(self):
        # Batch composition must never change a job's result.
        jobs = [_job(uid, [u for u in range(12) if u != uid]) for uid in range(8)]
        _, coordinator = _toy_coordinator()
        batched = coordinator.process_batch(jobs)
        _, fresh = _toy_coordinator()
        assert batched == [fresh.process_engine_job(job) for job in jobs]

    def test_empty_batch_and_empty_candidates(self):
        _, coordinator = _toy_coordinator()
        assert coordinator.process_batch([]) == []
        result = coordinator.process_engine_job(_job(0, []))
        assert result.neighbor_tokens == []
        assert result.recommended_items == []

    def test_counts_processed_work(self):
        _, coordinator = _toy_coordinator()
        coordinator.process_batch([_job(0, [1, 2]), _job(1, [2, 3])])
        assert coordinator.batches_processed == 1
        assert coordinator.jobs_processed == 2
