"""Engine parity: the vectorized engine must be indistinguishable.

The contract of ``HyRecConfig(engine="vectorized")`` is *bit-for-bit*
equivalence with the Python engine: same neighbors in the same order
(including tie-breaks), same scores, same recommendations, and the
same metered wire bytes.  These tests check the contract at the widget
level (randomized property test over wire jobs) and at the replay
level (full systems on a trace).
"""

from __future__ import annotations

import random

import pytest

from repro.core.client import HyRecWidget, make_job
from repro.core.config import HyRecConfig
from repro.core.similarity import register_metric
from repro.core.system import HyRecSystem
from repro.core.weighted import payload_cosine
from repro.datasets.schema import Rating, Trace
from repro.engine import EngineJob, VectorizedWidget


def _random_profile(rng: random.Random, n_items: int, max_size: int = 25) -> dict[str, float]:
    size = rng.randrange(0, max_size)
    items = rng.sample(range(n_items), min(size, n_items))
    return {str(i): float(rng.random() < 0.7) for i in items}


def _random_trace(rng: random.Random, users: int, items: int, n: int) -> Trace:
    ratings = []
    now = 0.0
    for _ in range(n):
        now += rng.random() * 50
        ratings.append(
            Rating(
                timestamp=now,
                user=rng.randrange(users),
                item=rng.randrange(items),
                value=float(rng.random() < 0.75),
            )
        )
    return Trace("parity", ratings)


class TestWidgetParity:
    @pytest.mark.parametrize("metric", ["cosine", "jaccard", "overlap"])
    def test_randomized_jobs_produce_identical_results(self, metric):
        rng = random.Random(hash(metric) & 0xFFFF)
        python_widget = HyRecWidget()
        vector_widget = VectorizedWidget()
        for trial in range(120):
            n_items = rng.choice([1, 8, 60, 250])
            candidates = {
                f"u0_{i:04x}": _random_profile(rng, n_items)
                for i in range(rng.randrange(0, 20))
            }
            # Sometimes plant exact duplicates to force score ties.
            tokens = list(candidates)
            if len(tokens) >= 2 and rng.random() < 0.5:
                candidates[tokens[0]] = dict(candidates[tokens[1]])
            # Sometimes the user's own token rides along in the sample.
            if candidates and rng.random() < 0.3:
                candidates["u0_self"] = _random_profile(rng, n_items)
            job = make_job(
                "u0_self",
                _random_profile(rng, n_items),
                candidates,
                k=rng.choice([1, 3, 10, 50]),  # 50 > |candidates| always
                r=rng.choice([1, 5, 20]),
                metric=metric,
            )
            expected = python_widget.process_job(job)
            got = vector_widget.process_job(job)
            assert got == expected, f"trial {trial} diverged"

    def test_empty_profiles_and_no_candidates(self):
        job = make_job("u0_a", {}, {}, k=3, r=3)
        assert VectorizedWidget().process_job(job) == HyRecWidget().process_job(job)
        job = make_job("u0_a", {}, {"u0_b": {}, "u0_c": {"1": 1.0}}, k=3, r=3)
        assert VectorizedWidget().process_job(job) == HyRecWidget().process_job(job)

    def test_scores_match_within_1e_12(self):
        # The contract is bitwise equality; this guards the weaker
        # documented bound explicitly for regression clarity.
        rng = random.Random(2)
        job = make_job(
            "u0_q",
            _random_profile(rng, 40),
            {f"u0_{i}": _random_profile(rng, 40) for i in range(15)},
            k=15,
        )
        py = HyRecWidget().process_job(job)
        vec = VectorizedWidget().process_job(job)
        assert py.neighbor_tokens == vec.neighbor_tokens
        for a, b in zip(py.neighbor_scores, vec.neighbor_scores):
            assert abs(a - b) <= 1e-12
            assert a == b  # and in fact bitwise

    def test_custom_metric_falls_back_to_python_path(self):
        try:
            register_metric("parity_dice", lambda a, b: (
                2 * len(a & b) / (len(a) + len(b)) if a and b else 0.0
            ))
        except ValueError:
            pass  # already registered by a previous test run
        rng = random.Random(4)
        job = make_job(
            "u0_q",
            _random_profile(rng, 30),
            {f"u0_{i}": _random_profile(rng, 30) for i in range(8)},
            metric="parity_dice",
        )
        assert VectorizedWidget().process_job(job) == HyRecWidget().process_job(job)

    def test_custom_hooks_fall_back_to_python_path(self):
        rng = random.Random(6)
        job = make_job(
            "u0_q",
            _random_profile(rng, 30),
            {f"u0_{i}": _random_profile(rng, 30) for i in range(8)},
        )
        vec = VectorizedWidget(payload_similarity=payload_cosine)
        py = HyRecWidget(payload_similarity=payload_cosine)
        assert not vec.can_vectorize("cosine")
        assert vec.process_job(job) == py.process_job(job)


class TestReplayParity:
    @pytest.mark.parametrize("metric", ["cosine", "jaccard"])
    def test_replay_identical_to_python_engine(self, metric):
        trace = _random_trace(random.Random(13), users=30, items=90, n=400)
        python_system = HyRecSystem(
            HyRecConfig(k=5, r=6, metric=metric, engine="python"), seed=17
        )
        vector_system = HyRecSystem(
            HyRecConfig(k=5, r=6, metric=metric, engine="vectorized"), seed=17
        )
        python_outcomes, vector_outcomes = [], []
        python_system.replay(trace, on_request=python_outcomes.append)
        vector_system.replay(trace, on_request=vector_outcomes.append)

        assert len(python_outcomes) == len(vector_outcomes)
        for py, vec in zip(python_outcomes, vector_outcomes):
            assert isinstance(vec.job, EngineJob)  # fast path actually ran
            assert py.recommendations == vec.recommendations
            assert py.result.neighbor_tokens == vec.result.neighbor_tokens
            assert py.result.neighbor_scores == vec.result.neighbor_scores
            assert py.result.recommended_items == vec.result.recommended_items
        assert (
            python_system.server.knn_table.as_dict()
            == vector_system.server.knn_table.as_dict()
        )

    @pytest.mark.parametrize("compress", [True, False])
    def test_wire_metering_is_byte_identical(self, compress, toy_trace):
        python_system = HyRecSystem(
            HyRecConfig(k=2, r=3, compress=compress, engine="python"), seed=1
        )
        vector_system = HyRecSystem(
            HyRecConfig(k=2, r=3, compress=compress, engine="vectorized"), seed=1
        )
        python_system.replay(toy_trace)
        vector_system.replay(toy_trace)
        python_meter = python_system.server.meter
        vector_meter = vector_system.server.meter
        assert python_meter.total_wire_bytes == vector_meter.total_wire_bytes
        for channel in ("server->client", "client->server"):
            assert (
                python_meter.reading(channel) == vector_meter.reading(channel)
            )

    def test_item_anonymization_routes_through_python_path(self, toy_trace):
        from repro.core.jobs import PersonalizationJob

        system = HyRecSystem(
            HyRecConfig(k=2, r=3, anonymize_items=True, engine="vectorized"),
            seed=1,
        )
        outcomes = []
        system.replay(toy_trace, on_request=outcomes.append)
        assert outcomes
        assert all(isinstance(o.job, PersonalizationJob) for o in outcomes)


class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            HyRecConfig(engine="gpu")

    def test_python_engine_has_no_matrix(self):
        system = HyRecSystem(HyRecConfig(engine="python"), seed=0)
        assert system.server.liked_matrix is None

    def test_default_engine_is_vectorized(self):
        # Flipped from "python" after the parity suite soaked: the
        # engines are bit-for-bit identical, so the faster one serves.
        assert HyRecConfig().engine == "vectorized"
        system = HyRecSystem(HyRecConfig(), seed=0)
        assert system.server.liked_matrix is not None
        assert isinstance(system.widget, VectorizedWidget)

    def test_vectorized_engine_builds_matrix(self):
        system = HyRecSystem(HyRecConfig(engine="vectorized"), seed=0)
        assert system.server.liked_matrix is not None
        assert isinstance(system.widget, VectorizedWidget)
