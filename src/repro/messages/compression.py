"""Gzip compression and per-channel bandwidth accounting."""

from __future__ import annotations

import gzip
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.messages.json_codec import encode_json

#: Minimal gzip member header: deflate, no flags, mtime 0, unknown OS.
GZIP_HEADER = b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"


def deflate_segment(raw: bytes, level: int = 1) -> bytes:
    """Compress ``raw`` into a sync-flushed raw-deflate segment.

    The segment ends on a byte boundary (``Z_SYNC_FLUSH`` emits the
    ``00 00 FF FF`` empty stored block), so any number of such
    segments can be concatenated into one valid deflate stream.  This
    is what lets the HyRec server cache each profile's *compressed*
    bytes and assemble whole gzip responses with byte joins -- the
    same trick behind nginx's ``gzip_static`` and CDN edge assembly.
    """
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    return compressor.compress(raw) + compressor.flush(zlib.Z_SYNC_FLUSH)


class FragmentGzipWriter:
    """Build one gzip member from literals and pre-deflated segments.

    ``write()`` compresses fresh bytes (request-specific envelope:
    braces, tokens, counters); ``write_deflated()`` splices in a
    cached :func:`deflate_segment` without touching zlib.  ``finish()``
    terminates the deflate stream and appends the gzip CRC32/ISIZE
    trailer computed over the logical (uncompressed) payload.
    """

    def __init__(self, level: int = 1) -> None:
        self._parts: list[bytes] = [GZIP_HEADER]
        self._crc = 0
        self._size = 0
        self._compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
        self._finished = False

    @property
    def raw_size(self) -> int:
        """Uncompressed bytes written so far."""
        return self._size

    def write(self, raw: bytes) -> None:
        """Compress ``raw`` into the stream now."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self._parts.append(self._compressor.compress(raw))
        self._crc = zlib.crc32(raw, self._crc)
        self._size += len(raw)

    def write_deflated(self, segment: bytes, raw: bytes) -> None:
        """Splice a cached segment; ``raw`` is its uncompressed form.

        The pending literal block is flushed with ``Z_FULL_FLUSH``
        first: that both aligns the stream to a byte boundary *and*
        resets the envelope compressor's dictionary, so no later
        back-reference can reach across the spliced content (whose
        length the compressor never sees).
        """
        if self._finished:
            raise RuntimeError("writer already finished")
        self._parts.append(self._compressor.flush(zlib.Z_FULL_FLUSH))
        self._parts.append(segment)
        self._crc = zlib.crc32(raw, self._crc)
        self._size += len(raw)

    def finish(self) -> bytes:
        """Terminate the member; returns the complete gzip bytes."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self._finished = True
        self._parts.append(self._compressor.flush(zlib.Z_FINISH))
        self._parts.append(
            struct.pack("<II", self._crc & 0xFFFFFFFF, self._size & 0xFFFFFFFF)
        )
        return b"".join(self._parts)


def gzip_compress(data: bytes, level: int = 1) -> bytes:
    """Compress ``data`` as the HyRec server does on the fly.

    Level 1 is the realistic choice for per-request on-the-fly
    compression (it is what web servers configure for dynamic
    responses) and it already achieves the ~70% ratio the paper
    reports on JSON profile payloads.  ``mtime=0`` keeps the gzip
    header deterministic so that measured message sizes are
    reproducible.
    """
    return gzip.compress(data, compresslevel=level, mtime=0)


def gzip_decompress(data: bytes) -> bytes:
    """Inverse of :func:`gzip_compress` (what the browser does natively)."""
    return gzip.decompress(data)


def wire_sizes(payload: Any) -> tuple[int, int]:
    """Return ``(raw_json_bytes, gzipped_bytes)`` for a payload.

    This is exactly the pair of curves plotted in Figure 10.
    """
    raw = encode_json(payload)
    return len(raw), len(gzip_compress(raw))


@dataclass
class MeterReading:
    """Byte/message counters for one traffic channel."""

    messages: int = 0
    raw_bytes: int = 0
    wire_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Fraction of bytes saved by gzip (0 when nothing was sent)."""
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.wire_bytes / self.raw_bytes


@dataclass
class MessageMeter:
    """Accumulates traffic per named channel (e.g. per direction).

    Used for Figure 10 (server responses), Section 5.6 (per-widget
    totals) and the P2P-vs-HyRec comparison.
    """

    channels: dict[str, MeterReading] = field(default_factory=dict)

    def record_payload(
        self, channel: str, payload: Any, compress: bool = True
    ) -> tuple[int, int]:
        """Encode ``payload``, count its bytes, return ``(raw, wire)``."""
        raw = encode_json(payload)
        wire = gzip_compress(raw) if compress else raw
        return self.record_bytes(channel, len(raw), len(wire))

    def record_bytes(self, channel: str, raw: int, wire: int) -> tuple[int, int]:
        """Count a message of known sizes on ``channel``."""
        reading = self.channels.setdefault(channel, MeterReading())
        reading.messages += 1
        reading.raw_bytes += raw
        reading.wire_bytes += wire
        return raw, wire

    def reading(self, channel: str) -> MeterReading:
        """Counters for ``channel`` (zeros if never used)."""
        return self.channels.get(channel, MeterReading())

    @property
    def total_wire_bytes(self) -> int:
        """Bytes actually on the wire, across all channels."""
        return sum(reading.wire_bytes for reading in self.channels.values())

    @property
    def total_messages(self) -> int:
        """Messages across all channels."""
        return sum(reading.messages for reading in self.channels.values())

    def reset(self) -> None:
        """Clear every channel."""
        self.channels.clear()
