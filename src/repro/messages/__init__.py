"""Wire format: JSON messages, gzip compression, bandwidth metering.

The paper's implementation serializes everything to JSON (Jackson on
the server, native ``JSON.parse`` in the browser) and compresses
responses on the fly with gzip (Section 4.2).  Figure 10 plots raw
versus compressed message size against profile size, and Section 5.6's
headline bandwidth numbers (24MB for P2P vs 8kB for HyRec on Digg) are
sums of these wire sizes.  This package reproduces that stack with the
standard library's ``json`` and ``zlib``.
"""

from repro.messages.json_codec import decode_json, encode_json
from repro.messages.compression import (
    FragmentGzipWriter,
    MessageMeter,
    MeterReading,
    deflate_segment,
    gzip_compress,
    gzip_decompress,
    wire_sizes,
)

__all__ = [
    "decode_json",
    "encode_json",
    "FragmentGzipWriter",
    "MessageMeter",
    "MeterReading",
    "deflate_segment",
    "gzip_compress",
    "gzip_decompress",
    "wire_sizes",
]
