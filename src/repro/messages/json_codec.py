"""Compact JSON encoding (the Jackson-equivalent layer)."""

from __future__ import annotations

import json
from typing import Any


def encode_json(payload: Any) -> bytes:
    """Serialize ``payload`` to compact UTF-8 JSON bytes.

    Keys are sorted so that encoding is deterministic -- bandwidth
    measurements are then reproducible byte-for-byte across runs.
    """
    return json.dumps(
        payload, separators=(",", ":"), sort_keys=True, ensure_ascii=False
    ).encode("utf-8")


def decode_json(data: bytes) -> Any:
    """Parse UTF-8 JSON bytes back into Python objects."""
    return json.loads(data.decode("utf-8"))
