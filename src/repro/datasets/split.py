"""Time-ordered train/test split (the paper's quality protocol).

Section 5.1: "We split each dataset into a training and a test set
according to time.  The training set contains the first 80% of the
ratings while the test set contains the remaining 20%."  This follows
the LARS evaluation methodology [37].
"""

from __future__ import annotations

from repro.datasets.schema import Trace


def time_split(trace: Trace, train_fraction: float = 0.8) -> tuple[Trace, Trace]:
    """Split ``trace`` at the ``train_fraction`` point of its timeline.

    Ratings are already time-sorted inside a :class:`Trace`, so the
    cut is a simple index split; every training rating is no later
    than every test rating.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    cut = int(len(trace) * train_fraction)
    train = trace.subset(trace.ratings[:cut], "train")
    test = trace.subset(trace.ratings[cut:], "test")
    return train, test
