"""Workload substrate: synthetic MovieLens and Digg rating traces.

The paper evaluates HyRec on four real traces (Table 2):

======= ======= ======= =========== ============
Dataset Users   Items   Ratings     Avg ratings
======= ======= ======= =========== ============
ML1     943     1,700   100,000     106
ML2     6,040   4,000   1,000,000   166
ML3     69,878  10,000  10,000,000  143
Digg    59,167  7,724   782,807     13
======= ======= ======= =========== ============

Those traces cannot be redistributed here, so this package generates
*synthetic* traces calibrated to the same statistics: user/item/rating
counts, average profile size, time span (7 months for MovieLens, 2
weeks for Digg), a power-law item popularity, skewed user activity,
and taste clusters that give collaborative filtering real structure to
find.  Every generator accepts a ``scale`` factor so experiments can
run at laptop size while keeping the distributional shape.
"""

from repro.datasets.schema import DatasetStats, Rating, Trace
from repro.datasets.binarize import binarize_trace, binarize_value, user_means
from repro.datasets.movielens import (
    ML1,
    ML2,
    ML3,
    MovieLensSpec,
    generate_movielens,
)
from repro.datasets.digg import DIGG, DiggSpec, generate_digg
from repro.datasets.split import time_split
from repro.datasets.synthetic import (
    StreamingLoader,
    SyntheticSpec,
    generate_synthetic,
)
from repro.datasets.loader import DATASETS, dataset_names, load_dataset
from repro.datasets.io import load_trace, save_trace

__all__ = [
    "DatasetStats",
    "Rating",
    "Trace",
    "binarize_trace",
    "binarize_value",
    "user_means",
    "ML1",
    "ML2",
    "ML3",
    "MovieLensSpec",
    "generate_movielens",
    "DIGG",
    "DiggSpec",
    "generate_digg",
    "time_split",
    "StreamingLoader",
    "SyntheticSpec",
    "generate_synthetic",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "load_trace",
    "save_trace",
]
