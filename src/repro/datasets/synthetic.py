"""Million-user synthetic zipf populations and the streaming loader.

The Table 2 generators (:mod:`repro.datasets.movielens`,
:mod:`repro.datasets.digg`) materialize a full
:class:`~repro.datasets.schema.Trace` in memory -- fine at 10**5
ratings, hopeless at the 10**6-user scale the memory benchmarks need,
where the trace itself would dwarf the engine state being measured.
This module provides the scale path:

* :class:`SyntheticSpec` -- a zipf-distributed population: user
  activity and item popularity both follow power laws (exponents per
  axis), likes are a Bernoulli coin, and a seeded permutation
  decorrelates a user's id from their activity rank so hot users
  spread across placement buckets instead of clustering at low ids.
* :class:`StreamingLoader` -- generates the write stream in bounded
  numpy chunks and feeds them straight into any sink exposing
  ``record_rating(user, item, value, timestamp)`` (servers, systems)
  or ``record(...)`` (a bare :class:`~repro.core.tables.ProfileTable`).
  Memory is O(chunk), never O(total_writes), and the stream is
  bit-identical for any chunk size (numpy ``Generator`` draws are
  sequential, so splitting ``random(n)`` across chunks does not change
  the values).
* :func:`generate_synthetic` -- the small-scale escape hatch: the same
  stream materialized as a ``Trace`` for tests and parity checks.

Determinism: all randomness derives from ``(seed, label)`` via
:func:`repro.sim.randomness.derive_seed`, so two runs with the same
spec replay identically regardless of what other components draw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.datasets.schema import Rating, Trace
from repro.sim.randomness import derive_seed

__all__ = [
    "SyntheticSpec",
    "StreamingLoader",
    "generate_synthetic",
    "zipf_cdf",
]

#: Materializing more than this many writes as ``Rating`` objects is
#: almost certainly a mistake -- each one costs ~100x its array form.
_MATERIALIZE_CEILING = 2_000_000


def zipf_cdf(n: int, exponent: float) -> np.ndarray:
    """Cumulative distribution of a zipf law over ranks ``0..n-1``.

    Rank ``r`` has unnormalized mass ``1 / (r + 1) ** exponent``; the
    returned float64 array is the normalized cumulative sum, with the
    final entry pinned to exactly 1.0 so ``searchsorted`` can never
    fall off the end.
    """
    if n < 1:
        raise ValueError("zipf support must have at least one rank")
    if exponent < 0:
        raise ValueError("zipf exponent cannot be negative")
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    cdf[-1] = 1.0
    return cdf


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape of a synthetic zipf population.

    ``num_users`` / ``catalog`` size the id spaces; ``total_writes``
    is the length of the rating stream.  ``user_exponent`` skews how
    writes concentrate on active users (0 = uniform), and
    ``item_exponent`` skews item popularity the same way.
    ``like_rate`` is the probability that a write is a like (value
    1.0) rather than a dislike (0.0).  All randomness descends from
    ``seed``.
    """

    num_users: int = 100_000
    catalog: int = 50_000
    total_writes: int = 1_000_000
    user_exponent: float = 1.1
    item_exponent: float = 1.0
    like_rate: float = 0.8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("need at least one user")
        if self.catalog < 1:
            raise ValueError("need at least one catalog item")
        if self.total_writes < 1:
            raise ValueError("need at least one write")
        if self.user_exponent < 0 or self.item_exponent < 0:
            raise ValueError("zipf exponents cannot be negative")
        if not 0.0 <= self.like_rate <= 1.0:
            raise ValueError("like_rate must be a probability")

    def scaled(self, factor: float) -> "SyntheticSpec":
        """A proportionally smaller (or larger) population."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            num_users=max(1, int(self.num_users * factor)),
            catalog=max(1, int(self.catalog * factor)),
            total_writes=max(1, int(self.total_writes * factor)),
        )


class StreamingLoader:
    """Generate a spec's write stream in bounded chunks and feed sinks.

    One loader instance describes one deterministic stream; its
    generator methods can be consumed any number of times and always
    replay the same writes.  Nothing proportional to
    ``spec.total_writes`` is ever allocated -- peak footprint is the
    two rank->id permutations (one int64 entry per user/item) plus one
    chunk of draw arrays.
    """

    def __init__(self, spec: SyntheticSpec, chunk_size: int = 65_536) -> None:
        if chunk_size < 1:
            raise ValueError("chunk size must be positive")
        self.spec = spec
        self.chunk_size = chunk_size
        self._user_cdf = zipf_cdf(spec.num_users, spec.user_exponent)
        self._item_cdf = zipf_cdf(spec.catalog, spec.item_exponent)
        # Activity rank -> public id.  Without this shuffle the most
        # active user would always be uid 0 and the population's heat
        # would be a function of id order -- invisible to hash-bucket
        # placement but misleading everywhere ids are eyeballed.
        self._user_ids = np.random.default_rng(
            derive_seed(spec.seed, "synthetic:user-ids")
        ).permutation(spec.num_users)
        self._item_ids = np.random.default_rng(
            derive_seed(spec.seed, "synthetic:item-ids")
        ).permutation(spec.catalog)

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(user_ids, items, values, timestamps)`` arrays.

        Timestamps are the write's stream position in seconds, so the
        stream is already in replay order and any materialized subset
        sorts back into it.
        """
        spec = self.spec
        # One generator per draw stream: each stream is consumed
        # strictly sequentially, so chunk boundaries cannot change the
        # values (a single shared generator would interleave the three
        # streams differently per chunk size).
        user_rng = np.random.default_rng(derive_seed(spec.seed, "synthetic:users"))
        item_rng = np.random.default_rng(derive_seed(spec.seed, "synthetic:items"))
        like_rng = np.random.default_rng(derive_seed(spec.seed, "synthetic:likes"))
        position = 0
        while position < spec.total_writes:
            n = min(self.chunk_size, spec.total_writes - position)
            user_ranks = np.searchsorted(
                self._user_cdf, user_rng.random(n), side="right"
            )
            item_ranks = np.searchsorted(
                self._item_cdf, item_rng.random(n), side="right"
            )
            values = (like_rng.random(n) < spec.like_rate).astype(np.float64)
            timestamps = np.arange(position, position + n, dtype=np.float64)
            yield (
                self._user_ids[user_ranks],
                self._item_ids[item_ranks],
                values,
                timestamps,
            )
            position += n

    def load_into(self, sink: object) -> int:
        """Stream every write into ``sink``; returns the write count.

        ``sink`` may be anything exposing ``record_rating`` (a
        :class:`~repro.core.server.HyRecServer`,
        :class:`~repro.core.system.HyRecSystem`, ...) or ``record``
        (a bare :class:`~repro.core.tables.ProfileTable`); both take
        ``(user_id, item, value, timestamp)``.
        """
        record = getattr(sink, "record_rating", None)
        if record is None:
            record = getattr(sink, "record", None)
        if record is None:
            raise TypeError(
                f"sink {type(sink).__name__} has neither record_rating nor record"
            )
        written = 0
        for users, items, values, timestamps in self.chunks():
            for user, item, value, ts in zip(
                users.tolist(), items.tolist(), values.tolist(), timestamps.tolist()
            ):
                record(user, item, value, ts)
            written += users.size
        return written


def generate_synthetic(
    spec: SyntheticSpec, chunk_size: int = 65_536
) -> Trace:
    """Materialize the stream as a :class:`Trace` (small scales only).

    Produces exactly the writes :class:`StreamingLoader` would stream
    for the same spec -- the parity tests lean on that equivalence.
    Refuses specs past ``2e6`` writes; use the loader at scale.
    """
    if spec.total_writes > _MATERIALIZE_CEILING:
        raise ValueError(
            f"refusing to materialize {spec.total_writes:,} writes as objects; "
            "use StreamingLoader at this scale"
        )
    ratings = []
    for users, items, values, timestamps in StreamingLoader(spec, chunk_size).chunks():
        ratings.extend(
            Rating(timestamp=ts, user=user, item=item, value=value)
            for user, item, value, ts in zip(
                users.tolist(), items.tolist(), values.tolist(), timestamps.tolist()
            )
        )
    return Trace(f"synthetic-{spec.num_users}u", ratings)
