"""Dataset registry: one entry per Table 2 workload."""

from __future__ import annotations

from typing import Callable, Union

from repro.datasets.binarize import binarize_trace
from repro.datasets.digg import DIGG, DiggSpec, generate_digg
from repro.datasets.movielens import ML1, ML2, ML3, MovieLensSpec, generate_movielens
from repro.datasets.schema import Trace

Spec = Union[MovieLensSpec, DiggSpec]

#: Name -> (spec, generator) for every workload in Table 2.
DATASETS: dict[str, tuple[Spec, Callable[..., Trace]]] = {
    "ML1": (ML1, generate_movielens),
    "ML2": (ML2, generate_movielens),
    "ML3": (ML3, generate_movielens),
    "Digg": (DIGG, generate_digg),
}


def dataset_names() -> list[str]:
    """All registered workload names, in Table 2 order."""
    return list(DATASETS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    binarize: bool = True,
) -> Trace:
    """Generate a (scaled) workload by Table 2 name.

    ``binarize=True`` applies the paper's liked/disliked projection so
    the returned trace is directly replayable by the recommenders.
    """
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    spec, generator = DATASETS[name]
    trace = generator(spec.scaled(scale), seed=seed)
    if binarize:
        trace = binarize_trace(trace)
    return trace
