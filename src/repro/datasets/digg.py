"""Synthetic Digg-shaped trace generator.

Digg was a social news site; the paper's trace covers ~60,000 users,
~7,700 stories and ~780,000 votes over two weeks in 2010.  The
properties that matter to HyRec's evaluation are:

* **tiny profiles** -- 13 ratings per user on average, which drives
  the small Digg cost reductions in Table 3 and the 8kB-per-widget
  bandwidth number of Section 5.6;
* **item churn** -- stories are born and die within days, so offline
  KNN tables rot quickly;
* **binary votes** -- a digg is a like; we add a small fraction of
  "bury" votes (dislikes) so similarity still has negative signal.

Users again live in latent interest clusters (politics, tech, ...) so
collaborative filtering has structure to exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.datasets.schema import Rating, Trace
from repro.sim.clock import DAY
from repro.sim.randomness import derive_rng


@dataclass(frozen=True)
class DiggSpec:
    """Target statistics for one synthetic Digg trace."""

    name: str
    num_users: int
    num_items: int
    num_ratings: int
    duration_days: float = 14.0
    num_clusters: int = 12
    cluster_affinity: float = 0.65
    #: Mean active lifetime of a story, in days.
    item_lifetime_days: float = 1.5
    #: Fraction of votes that are dislikes ("bury").
    dislike_fraction: float = 0.15
    activity_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1 or self.num_ratings < 1:
            raise ValueError("spec counts must be positive")
        if not 0.0 <= self.dislike_fraction <= 1.0:
            raise ValueError("dislike_fraction must be within [0, 1]")

    def scaled(self, scale: float) -> "DiggSpec":
        """Shrink the trace while keeping average profile size ~13.

        Items scale with the square root of ``scale`` (see
        :meth:`MovieLensSpec.scaled <repro.datasets.movielens.MovieLensSpec.scaled>`)
        so that story churn remains meaningful at small scales.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        return replace(
            self,
            num_users=max(10, round(self.num_users * scale)),
            num_items=max(20, round(self.num_items * scale**0.5)),
            num_ratings=max(50, round(self.num_ratings * scale)),
            num_clusters=max(2, min(self.num_clusters, round(self.num_users * scale) // 5)),
        )


#: The Digg workload of Table 2.
DIGG = DiggSpec("Digg", num_users=59_167, num_items=7_724, num_ratings=782_807)


def generate_digg(spec: DiggSpec, seed: int = 0) -> Trace:
    """Generate one synthetic Digg trace for ``spec``.

    Deterministic in ``(spec, seed)``.
    """
    rng_structure = derive_rng(seed, f"{spec.name}:structure")
    rng_events = derive_rng(seed, f"{spec.name}:events")

    duration_s = spec.duration_days * DAY

    user_cluster = [
        rng_structure.randrange(spec.num_clusters) for _ in range(spec.num_users)
    ]
    item_cluster = [
        rng_structure.randrange(spec.num_clusters) for _ in range(spec.num_items)
    ]

    # Stories appear throughout the window and stay "hot" briefly.
    publish_time = [
        rng_structure.random() * duration_s for _ in range(spec.num_items)
    ]
    lifetime = [
        rng_structure.expovariate(1.0 / (spec.item_lifetime_days * DAY))
        for _ in range(spec.num_items)
    ]
    hotness = [
        math.exp(rng_structure.gauss(0.0, 1.2)) for _ in range(spec.num_items)
    ]

    items_of_cluster: list[list[int]] = [[] for _ in range(spec.num_clusters)]
    for item, cluster in enumerate(item_cluster):
        items_of_cluster[cluster].append(item)
    for cluster, members in enumerate(items_of_cluster):
        if not members:
            item = rng_structure.randrange(spec.num_items)
            items_of_cluster[item_cluster[item]].remove(item)
            item_cluster[item] = cluster
            members.append(item)

    activity = [
        math.exp(rng_events.gauss(0.0, spec.activity_sigma))
        for _ in range(spec.num_users)
    ]
    total_activity = sum(activity)

    # Per-user vote budget proportional to activity, exact total.
    rating_counts = [0] * spec.num_users
    remaining = spec.num_ratings
    for user in range(spec.num_users):
        share = round(spec.num_ratings * activity[user] / total_activity)
        share = min(share, remaining)
        rating_counts[user] = share
        remaining -= share
    user = 0
    while remaining > 0:
        rating_counts[user % spec.num_users] += 1
        remaining -= 1
        user += 1
    for u in range(spec.num_users):
        if rating_counts[u] == 0:
            donor = max(range(spec.num_users), key=lambda x: rating_counts[x])
            if rating_counts[donor] > 1:
                rating_counts[donor] -= 1
                rating_counts[u] = 1

    ratings: list[Rating] = []
    for user_id in range(spec.num_users):
        count = rating_counts[user_id]
        if count == 0:
            continue
        cluster = user_cluster[user_id]
        seen: set[int] = set()
        # Users browse on random days within the window.
        visit_times = sorted(rng_events.random() * duration_s for _ in range(count))
        for timestamp in visit_times:
            item = _draw_story(
                rng_events,
                spec,
                cluster,
                timestamp,
                seen,
                items_of_cluster,
                publish_time,
                lifetime,
                hotness,
            )
            if item is None:
                continue
            seen.add(item)
            match = item_cluster[item] == cluster
            dislike_p = spec.dislike_fraction * (0.6 if match else 1.8)
            value = 0.0 if rng_events.random() < min(0.9, dislike_p) else 1.0
            ratings.append(
                Rating(timestamp=timestamp, user=user_id, item=item, value=value)
            )
    return Trace(spec.name, ratings)


def _draw_story(
    rng,
    spec: DiggSpec,
    cluster: int,
    timestamp: float,
    seen: set[int],
    items_of_cluster: list[list[int]],
    publish_time: list[float],
    lifetime: list[float],
    hotness: list[float],
    max_attempts: int = 20,
) -> int | None:
    """Pick an unseen story, preferring hot, live, in-cluster ones."""
    best: int | None = None
    best_weight = 0.0
    for _ in range(max_attempts):
        if rng.random() < spec.cluster_affinity:
            members = items_of_cluster[cluster]
            item = members[rng.randrange(len(members))]
        else:
            item = rng.randrange(spec.num_items)
        if item in seen:
            continue
        age = timestamp - publish_time[item]
        # A story not yet published or long dead is unattractive but
        # still possible (users browse archives occasionally).
        if 0.0 <= age <= lifetime[item]:
            liveness = 1.0
        else:
            liveness = 0.05
        weight = hotness[item] * liveness * rng.random()
        if weight > best_weight:
            best_weight = weight
            best = item
    return best
