"""Core trace data structures shared by every dataset and replayer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.sim.clock import DAY


@dataclass(frozen=True, order=True)
class Rating:
    """One ``<user, item, value>`` opinion with its timestamp.

    Ordering is by ``(timestamp, user, item, value)`` so that a sorted
    list of ratings is a valid replay order.  ``value`` is the raw
    score (1-5 stars for MovieLens, 0/1 for Digg); binarization to the
    paper's liked/disliked form happens in
    :mod:`repro.datasets.binarize`.
    """

    timestamp: float
    user: int
    item: int
    value: float

    @property
    def liked(self) -> bool:
        """Interpret an already-binary value (1.0 = liked)."""
        return self.value >= 1.0


@dataclass(frozen=True)
class DatasetStats:
    """The Table 2 row describing a trace."""

    name: str
    num_users: int
    num_items: int
    num_ratings: int
    avg_ratings_per_user: float
    duration_days: float

    def as_row(self) -> str:
        """Format like a row of the paper's Table 2."""
        return (
            f"{self.name:<6} {self.num_users:>8,} {self.num_items:>8,} "
            f"{self.num_ratings:>12,} {self.avg_ratings_per_user:>8.1f}"
        )


class Trace:
    """A time-ordered sequence of ratings plus derived statistics.

    The constructor sorts ratings by timestamp; replaying a trace in
    iteration order is therefore always chronologically valid.
    """

    def __init__(self, name: str, ratings: Iterable[Rating]) -> None:
        self.name = name
        self.ratings: list[Rating] = sorted(ratings)
        self._users: frozenset[int] | None = None
        self._items: frozenset[int] | None = None

    def __len__(self) -> int:
        return len(self.ratings)

    def __iter__(self) -> Iterator[Rating]:
        return iter(self.ratings)

    def __getitem__(self, index: int) -> Rating:
        return self.ratings[index]

    @property
    def users(self) -> frozenset[int]:
        """All user ids appearing in the trace."""
        if self._users is None:
            self._users = frozenset(r.user for r in self.ratings)
        return self._users

    @property
    def items(self) -> frozenset[int]:
        """All item ids appearing in the trace."""
        if self._items is None:
            self._items = frozenset(r.item for r in self.ratings)
        return self._items

    @property
    def duration(self) -> float:
        """Span between first and last rating, in seconds."""
        if not self.ratings:
            return 0.0
        return self.ratings[-1].timestamp - self.ratings[0].timestamp

    def stats(self) -> DatasetStats:
        """Compute the Table 2 row for this trace."""
        num_users = len(self.users)
        avg = len(self.ratings) / num_users if num_users else 0.0
        return DatasetStats(
            name=self.name,
            num_users=num_users,
            num_items=len(self.items),
            num_ratings=len(self.ratings),
            avg_ratings_per_user=avg,
            duration_days=self.duration / DAY,
        )

    def ratings_by_user(self) -> dict[int, list[Rating]]:
        """Group ratings per user, preserving chronological order."""
        grouped: dict[int, list[Rating]] = {}
        for rating in self.ratings:
            grouped.setdefault(rating.user, []).append(rating)
        return grouped

    def subset(self, ratings: Sequence[Rating], suffix: str) -> "Trace":
        """Build a derived trace (e.g. a train/test half) of this one."""
        return Trace(f"{self.name}-{suffix}", ratings)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, ratings={len(self.ratings):,}, "
            f"users={len(self.users):,}, items={len(self.items):,})"
        )
