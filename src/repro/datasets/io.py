"""Trace persistence: share the exact workload an experiment used.

The synthetic generators are deterministic in ``(spec, seed)``, but
pinning a byte-exact trace to disk is still useful -- for diffing
across library versions, feeding external tools, or loading a real
MovieLens/Digg export into this pipeline.  The format is the classic
four-column CSV (``user,item,value,timestamp``), gzip-compressed when
the path ends in ``.gz``.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Union

from repro.datasets.schema import Rating, Trace

PathLike = Union[str, Path]

_HEADER = ["user", "item", "value", "timestamp"]


def save_trace(trace: Trace, path: PathLike) -> int:
    """Write ``trace`` as (optionally gzipped) CSV; returns row count.

    Ratings are written in chronological order, so a saved file is
    directly replayable after loading.
    """
    path = Path(path)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for rating in trace:
        writer.writerow(
            [rating.user, rating.item, repr(rating.value), repr(rating.timestamp)]
        )
    data = buffer.getvalue().encode("utf-8")
    if path.suffix == ".gz":
        path.write_bytes(gzip.compress(data, mtime=0))
    else:
        path.write_bytes(data)
    return len(trace)


def load_trace(path: PathLike, name: str | None = None) -> Trace:
    """Read a trace saved by :func:`save_trace` (or any matching CSV).

    Args:
        path: CSV or ``.gz`` CSV file with a ``user,item,value,
            timestamp`` header.
        name: Trace name; defaults to the file stem.
    """
    path = Path(path)
    raw = path.read_bytes()
    if raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    reader = csv.reader(io.StringIO(raw.decode("utf-8")))
    header = next(reader, None)
    if header != _HEADER:
        raise ValueError(
            f"unexpected header {header!r} in {path}; expected {_HEADER}"
        )
    ratings = []
    for row in reader:
        if not row:
            continue
        user, item, value, timestamp = row
        ratings.append(
            Rating(
                timestamp=float(timestamp),
                user=int(user),
                item=int(item),
                value=float(value),
            )
        )
    trace_name = name if name is not None else path.stem.removesuffix(".csv")
    return Trace(trace_name, ratings)
