"""Synthetic MovieLens-shaped trace generator.

The real ML datasets cannot be redistributed, so this generator
produces traces with the same *load-bearing* structure:

* exact user/item/rating counts of the chosen spec (scaled);
* a 7-month collection window (210 days);
* power-law item popularity (a handful of blockbusters, a long tail);
* log-normal user activity (a few very active raters);
* latent *taste clusters*: users and items belong to genre-like
  clusters, users rate in-cluster items more often and more highly.
  This is what gives user-based CF a signal to find -- without it,
  KNN quality experiments would be meaningless;
* 1-5 star ratings whose per-user mean splits roughly in half under
  the paper's binarization rule;
* session-structured timestamps: each user joins at some point in the
  window and rates in short bursts, so "profile size" correlates with
  "number of HyRec iterations" exactly as Figure 4 assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.datasets.schema import Rating, Trace
from repro.sim.clock import DAY, MINUTE
from repro.sim.randomness import derive_rng


@dataclass(frozen=True)
class MovieLensSpec:
    """Target statistics for one synthetic MovieLens trace."""

    name: str
    num_users: int
    num_items: int
    num_ratings: int
    duration_days: float = 210.0
    num_clusters: int = 18
    #: Probability that a rating goes to an in-cluster item.
    cluster_affinity: float = 0.7
    #: Zipf exponent of item popularity.
    popularity_exponent: float = 0.9
    #: Sigma of the log-normal user-activity distribution.
    activity_sigma: float = 0.9
    #: Ratings per user session burst.
    session_size: int = 8

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1 or self.num_ratings < 1:
            raise ValueError("spec counts must be positive")
        if not 0.0 <= self.cluster_affinity <= 1.0:
            raise ValueError("cluster_affinity must be within [0, 1]")
        if self.num_clusters < 1:
            raise ValueError("need at least one cluster")

    def scaled(self, scale: float) -> "MovieLensSpec":
        """Shrink (or grow) the trace while keeping its shape.

        Users and ratings scale linearly (so the average profile size
        -- Table 2's load-bearing column -- is preserved); items scale
        with the square root of ``scale`` so the catalog stays large
        enough to hold those profiles even at small scales.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        return replace(
            self,
            name=self.name,
            num_users=max(10, round(self.num_users * scale)),
            num_items=max(20, round(self.num_items * scale**0.5)),
            num_ratings=max(50, round(self.num_ratings * scale)),
            num_clusters=max(2, min(self.num_clusters, round(self.num_users * scale) // 5)),
        )


#: The three MovieLens workloads of Table 2.
ML1 = MovieLensSpec("ML1", num_users=943, num_items=1700, num_ratings=100_000)
ML2 = MovieLensSpec("ML2", num_users=6040, num_items=4000, num_ratings=1_000_000)
ML3 = MovieLensSpec("ML3", num_users=69_878, num_items=10_000, num_ratings=10_000_000)


def _zipf_weights(count: int, exponent: float) -> list[float]:
    """Zipf weight per rank (1-indexed), unnormalized."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def _weighted_index(cumulative: list[float], point: float) -> int:
    """Binary search a cumulative-weight table for ``point``."""
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] < point:
            low = mid + 1
        else:
            high = mid
    return low


class _WeightedSampler:
    """Draw indices proportionally to fixed weights, O(log n) each."""

    def __init__(self, weights: list[float]) -> None:
        if not weights:
            raise ValueError("need at least one weight")
        self.cumulative: list[float] = []
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError("weights cannot be negative")
            total += weight
        if total <= 0:
            raise ValueError("total weight must be positive")
        running = 0.0
        for weight in weights:
            running += weight
            self.cumulative.append(running)
        self.total = running

    def sample(self, rng) -> int:
        return _weighted_index(self.cumulative, rng.random() * self.total)


def generate_movielens(spec: MovieLensSpec, seed: int = 0) -> Trace:
    """Generate one synthetic MovieLens trace for ``spec``.

    The same ``(spec, seed)`` pair always yields the identical trace.
    """
    rng_structure = derive_rng(seed, f"{spec.name}:structure")
    rng_events = derive_rng(seed, f"{spec.name}:events")

    duration_s = spec.duration_days * DAY

    # --- latent structure -------------------------------------------------
    user_cluster = [
        rng_structure.randrange(spec.num_clusters) for _ in range(spec.num_users)
    ]
    item_cluster = [
        rng_structure.randrange(spec.num_clusters) for _ in range(spec.num_items)
    ]
    items_of_cluster: list[list[int]] = [[] for _ in range(spec.num_clusters)]
    for item, cluster in enumerate(item_cluster):
        items_of_cluster[cluster].append(item)
    # Guarantee every cluster owns at least one item.
    for cluster, members in enumerate(items_of_cluster):
        if not members:
            item = rng_structure.randrange(spec.num_items)
            items_of_cluster[item_cluster[item]].remove(item)
            item_cluster[item] = cluster
            members.append(item)

    item_quality = [rng_structure.gauss(0.0, 0.6) for _ in range(spec.num_items)]
    user_bias = [rng_structure.gauss(0.0, 0.4) for _ in range(spec.num_users)]

    # --- activity & popularity skew ---------------------------------------
    activity = [
        math.exp(rng_structure.gauss(0.0, spec.activity_sigma))
        for _ in range(spec.num_users)
    ]
    user_sampler = _WeightedSampler(activity)

    popularity = _zipf_weights(spec.num_items, spec.popularity_exponent)
    # Shuffle popularity ranks so item id does not encode popularity.
    rng_structure.shuffle(popularity)
    global_item_sampler = _WeightedSampler(popularity)
    cluster_samplers = [
        _WeightedSampler([popularity[item] for item in members])
        for members in items_of_cluster
    ]

    # --- allocate rating counts per user ----------------------------------
    rating_counts = [0] * spec.num_users
    for _ in range(spec.num_ratings):
        rating_counts[user_sampler.sample(rng_events)] += 1
    # Every user rates at least once so Table 2's user count holds.
    for user in range(spec.num_users):
        if rating_counts[user] == 0:
            donor = max(range(spec.num_users), key=lambda u: rating_counts[u])
            rating_counts[donor] -= 1
            rating_counts[user] = 1

    # --- emit ratings -------------------------------------------------------
    ratings: list[Rating] = []
    for user in range(spec.num_users):
        count = rating_counts[user]
        if count == 0:
            continue
        cluster = user_cluster[user]
        seen: set[int] = set()
        # Users keep joining almost to the end of the window: the
        # late-arriving cohort is the one offline back-ends fail
        # (Section 5.3's new-user argument for Figure 6).
        arrival = rng_events.random() * duration_s * 0.9
        num_sessions = max(1, count // spec.session_size)
        session_times = sorted(
            arrival + rng_events.random() * (duration_s - arrival)
            for _ in range(num_sessions)
        )
        for index in range(count):
            session = session_times[index % num_sessions]
            timestamp = session + (index // num_sessions) * (
                2.0 * MINUTE * (0.5 + rng_events.random())
            )
            timestamp = min(timestamp, duration_s)
            item = _draw_item(
                rng_events,
                spec,
                cluster,
                seen,
                cluster_samplers,
                global_item_sampler,
                items_of_cluster,
            )
            if item is None:
                continue
            seen.add(item)
            match_bonus = 0.9 if item_cluster[item] == cluster else -0.3
            raw = (
                3.1
                + user_bias[user]
                + item_quality[item]
                + match_bonus
                + rng_events.gauss(0.0, 0.7)
            )
            value = float(min(5, max(1, round(raw))))
            ratings.append(
                Rating(timestamp=timestamp, user=user, item=item, value=value)
            )
    return Trace(spec.name, ratings)


def _draw_item(
    rng,
    spec: MovieLensSpec,
    cluster: int,
    seen: set[int],
    cluster_samplers: list[_WeightedSampler],
    global_sampler: _WeightedSampler,
    items_of_cluster: list[list[int]],
    max_attempts: int = 12,
) -> int | None:
    """Pick an unseen item, preferring the user's cluster."""
    for _ in range(max_attempts):
        if rng.random() < spec.cluster_affinity:
            members = items_of_cluster[cluster]
            item = members[cluster_samplers[cluster].sample(rng)]
        else:
            item = global_sampler.sample(rng)
        if item not in seen:
            return item
    # Dense profile: fall back to scanning for any unseen item.
    for item in items_of_cluster[cluster]:
        if item not in seen:
            return item
    for item in range(spec.num_items):
        if item not in seen:
            return item
    return None
