"""Rating binarization (Section 5.1 of the paper).

    "For each item (movie) in a user profile, we set the rating to 1
    (liked) if the initial rating of the user for that item is above
    the average rating of the user across all her items, and to 0
    (disliked) otherwise."

The user mean is computed over the *whole* trace (the paper binarizes
the dataset once, up front), and the comparison is strict: a rating
exactly equal to the user's mean becomes a dislike.
"""

from __future__ import annotations

from repro.datasets.schema import Rating, Trace


def user_means(trace: Trace) -> dict[int, float]:
    """Average raw rating value per user over the full trace."""
    totals: dict[int, float] = {}
    counts: dict[int, int] = {}
    for rating in trace:
        totals[rating.user] = totals.get(rating.user, 0.0) + rating.value
        counts[rating.user] = counts.get(rating.user, 0) + 1
    return {user: totals[user] / counts[user] for user in totals}


def binarize_value(value: float, user_mean: float) -> float:
    """Project one raw rating to 1.0 (liked) or 0.0 (disliked)."""
    return 1.0 if value > user_mean else 0.0


def binarize_trace(trace: Trace) -> Trace:
    """Return a copy of ``trace`` with all values projected to {0, 1}.

    Traces that are already binary (every value in {0, 1}) are
    returned re-wrapped but otherwise unchanged, matching how the
    paper handles the Digg workload.
    """
    values = {r.value for r in trace}
    if values <= {0.0, 1.0}:
        return Trace(trace.name, trace.ratings)
    means = user_means(trace)
    binarized = [
        Rating(
            timestamp=r.timestamp,
            user=r.user,
            item=r.item,
            value=binarize_value(r.value, means[r.user]),
        )
        for r in trace
    ]
    return Trace(trace.name, binarized)
