"""HTTP widget client: the JavaScript widget's Python twin.

Fetches a personalization job from a running
:class:`~repro.web.server.HyRecHttpServer`, executes it with the real
:class:`~repro.core.client.HyRecWidget`, and reports the new KNN back
-- one full Figure 1 (bottom) round trip over actual sockets.
"""

from __future__ import annotations

import urllib.parse
import urllib.request
from dataclasses import dataclass

from repro.core.client import HyRecWidget
from repro.core.jobs import JobResult, PersonalizationJob
from repro.messages import decode_json, gzip_decompress


@dataclass
class RoundTripOutcome:
    """Everything one widget round trip produced."""

    job: PersonalizationJob
    result: JobResult
    recommendations: list[int]
    request_bytes: int
    response_bytes: int


class HttpWidgetClient:
    """A stateless browser widget speaking the Table 1 API over HTTP."""

    def __init__(self, base_url: str, widget: HyRecWidget | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.widget = widget if widget is not None else HyRecWidget()

    def _get(self, path: str) -> tuple[bytes, int]:
        url = f"{self.base_url}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read()
            if response.headers.get("Content-Encoding") == "gzip":
                return gzip_decompress(body), len(body)
            return body, len(body)

    def fetch_job(self, uid: int) -> tuple[PersonalizationJob, int]:
        """GET ``/online/?uid=`` and decode the personalization job."""
        body, wire = self._get(f"/online/?uid={uid}")
        return PersonalizationJob.from_payload(decode_json(body)), wire

    def push_result(self, uid: int, result: JobResult) -> tuple[list[int], int]:
        """GET ``/neighbors/?uid=&id0=..`` with the widget's KNN."""
        params: list[tuple[str, str]] = [("uid", str(uid))]
        for index, token in enumerate(result.neighbor_tokens):
            params.append((f"id{index}", token))
        for index, item in enumerate(result.recommended_items):
            params.append((f"rec{index}", item))
        query = urllib.parse.urlencode(params)
        body, wire = self._get(f"/neighbors/?{query}")
        decoded = decode_json(body)
        return list(decoded.get("recommended", [])), wire

    def round_trip(self, uid: int) -> RoundTripOutcome:
        """Fetch a job, run it in the widget, push the result back."""
        job, response_bytes = self.fetch_job(uid)
        result = self.widget.process_job(job)
        recommendations, request_bytes = self.push_result(uid, result)
        return RoundTripOutcome(
            job=job,
            result=result,
            recommendations=recommendations,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
        )

    def stats(self) -> dict:
        """GET ``/stats/`` (demo/test helper)."""
        body, _ = self._get("/stats/")
        return decode_json(body)
