"""Threaded HTTP server exposing the HyRec web API.

Endpoints (Table 1 of the paper):

* ``GET /online/?uid=<uid>`` -- returns a personalization job as
  gzipped JSON (``Content-Encoding: gzip`` when the server config has
  compression on, exactly like the paper's on-the-fly gzip).
* ``GET /neighbors/?uid=<uid>&id0=..&id1=..[&rec0=..]`` -- applies a
  widget's KNN update; returns ``{"ok": true, "recommended": [...]}``.
* ``POST /neighbors/?uid=<uid>`` with a JSON :class:`JobResult` body
  -- same, for widgets that prefer a body over a query string.
* ``GET /stats/`` -- server counters (users, requests, traffic), handy
  for demos and tests.
* ``GET /metrics`` -- Prometheus text exposition of the deployment's
  metrics registry (request/latency histograms, per-shard scoring
  counters sampled inside worker processes, wire meters); scrapeable
  by a stock Prometheus, see ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlparse

from repro.core.api import WebApi
from repro.core.server import HyRecServer
from repro.messages import encode_json
from repro.obs.exposition import metrics_text


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`WebApi` via the server."""

    #: Quieten the default stderr request logging.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def api(self) -> WebApi:
        return self.server.api  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        params = dict(parse_qsl(parsed.query))
        try:
            if parsed.path.rstrip("/") == "/online":
                self._respond(self.api.online(int(params["uid"])))
            elif parsed.path.rstrip("/") == "/neighbors":
                uid = int(params.pop("uid"))
                self._respond(self.api.neighbors(uid, params))
            elif parsed.path.rstrip("/") == "/stats":
                self._respond_stats()
            elif parsed.path.rstrip("/") == "/metrics":
                self._respond_metrics()
            else:
                self.send_error(404, "unknown endpoint")
        except (KeyError, ValueError) as error:
            self.send_error(400, f"bad request: {error}")

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        params = dict(parse_qsl(parsed.query))
        try:
            if parsed.path.rstrip("/") == "/neighbors":
                uid = int(params["uid"])
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                self._respond(self.api.neighbors_from_body(uid, body))
            else:
                self.send_error(404, "unknown endpoint")
        except (KeyError, ValueError) as error:
            self.send_error(400, f"bad request: {error}")

    def _respond(self, payload: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        if self.api.compress:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _respond_stats(self) -> None:
        server: HyRecServer = self.api.server
        stats = {
            "users": server.num_users,
            "online_requests": server.stats.online_requests,
            "knn_updates": server.stats.knn_updates,
            "wire_bytes": server.meter.total_wire_bytes,
        }
        body = encode_json(stats)
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_metrics(self) -> None:
        body = metrics_text(self.api.server).encode("utf-8")
        self.send_response(200)
        # The version parameter is the Prometheus text format's own
        # version stamp, expected verbatim by scrapers.
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class HyRecHttpServer:
    """Lifecycle wrapper: bind, serve in a daemon thread, shut down.

    >>> from repro.core.server import HyRecServer
    >>> http_server = HyRecHttpServer(HyRecServer())
    >>> port = http_server.start()
    >>> # ... clients talk to http://127.0.0.1:<port> ...
    >>> http_server.stop()
    """

    def __init__(self, server: HyRecServer, host: str = "127.0.0.1", port: int = 0):
        self.hyrec = server
        self.api = WebApi(server)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.api = self.api  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, actual port) after binding."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> int:
        """Serve in a background daemon thread; returns the port."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="hyrec-http", daemon=True
        )
        self._thread.start()
        return self.address[1]

    def stop(self) -> None:
        """Shut down the serve loop and join the thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
