"""Demo entry point: serve HyRec over HTTP with a synthetic workload.

    python -m repro.web.app --dataset ML1 --scale 0.05 --port 8080

Loads the chosen Table 2 workload into a fresh server, starts the
HTTP deployment, and (unless ``--no-widgets``) drives a few widget
round trips so the KNN table warms up.  Point your own client at the
printed URL; the endpoints are the paper's Table 1 API.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import HyRecConfig
from repro.core.server import HyRecServer
from repro.datasets import dataset_names, load_dataset
from repro.metrics import format_bytes
from repro.web.async_server import AsyncHyRecServer
from repro.web.client import HttpWidgetClient
from repro.web.server import HyRecHttpServer


def build_server(
    dataset: str,
    scale: float,
    seed: int,
    config: HyRecConfig | None = None,
    *,
    k: int = 10,
    r: int = 10,
) -> HyRecServer:
    """A HyRec server preloaded with one synthetic workload.

    Pass a full ``config`` to pick engine/executor/observability knobs;
    the ``k``/``r`` shorthands build a default single-process config.
    """
    if config is None:
        config = HyRecConfig(k=k, r=r)
    trace = load_dataset(dataset, scale=scale, seed=seed)
    server = HyRecServer(config, seed=seed)
    for rating in trace:
        server.record_rating(rating.user, rating.item, rating.value, rating.timestamp)
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.web.app", description="Run a demo HyRec HTTP server."
    )
    parser.add_argument("--dataset", choices=dataset_names(), default="ML1")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--r", type=int, default=10)
    parser.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    parser.add_argument(
        "--engine",
        choices=("python", "vectorized", "sharded"),
        default="vectorized",
        help="request-path execution engine",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (engine=sharded)"
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard-task executor (engine=sharded)",
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help="collect request-lifecycle spans (see /metrics neighbors "
        "docs/observability.md for exporting them)",
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=0.0,
        help="log requests slower than this many ms (0 = off)",
    )
    parser.add_argument(
        "--frontdoor",
        choices=("async", "threaded"),
        default="async",
        help="async = admission control + response cache (docs/http.md); "
        "threaded = the zero-moving-parts stdlib server",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=0.0,
        help="response-cache staleness bound in seconds (async front door; "
        "0 = cache off, byte-exact responses)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=1024, help="max cached responses"
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="concurrent engine requests (async front door)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="queued requests before shedding 503s (async front door)",
    )
    parser.add_argument(
        "--retry-after",
        type=int,
        default=1,
        help="Retry-After seconds on shed responses",
    )
    parser.add_argument(
        "--warmup", type=int, default=3, help="widget round trips per user at start"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds to serve before exiting (default: until interrupted)",
    )
    args = parser.parse_args(argv)

    config = HyRecConfig(
        k=args.k,
        r=args.r,
        engine=args.engine,
        num_shards=args.shards,
        executor=args.executor,
        tracing=args.tracing,
        slow_request_ms=args.slow_request_ms,
        cache_ttl=args.cache_ttl,
        cache_capacity=args.cache_capacity,
        http_max_concurrency=args.max_concurrency,
        http_max_pending=args.max_pending,
        http_retry_after=args.retry_after,
    )
    server = build_server(args.dataset, args.scale, args.seed, config)
    if args.frontdoor == "async":
        http_server: AsyncHyRecServer | HyRecHttpServer = AsyncHyRecServer(
            server, port=args.port
        )
    else:
        http_server = HyRecHttpServer(server, port=args.port)
    http_server.start()
    print(
        f"HyRec serving {args.dataset} (scale {args.scale}) at {http_server.url}"
        f" ({args.frontdoor} front door)"
    )
    print(
        f"  {server.num_users} users loaded; "
        "endpoints: /online /neighbors /stats /metrics"
    )
    if args.frontdoor == "async" and args.cache_ttl > 0:
        print(
            f"  response cache on: ttl {args.cache_ttl}s, "
            f"capacity {args.cache_capacity}"
        )

    if args.warmup:
        client = HttpWidgetClient(http_server.url)
        users = server.profiles.users()[:10]
        for _ in range(args.warmup):
            for uid in users:
                client.round_trip(uid)
        print(
            f"  warmed up with {args.warmup * len(users)} round trips; "
            f"traffic so far {format_bytes(server.meter.total_wire_bytes)}"
        )

    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        http_server.stop()
        server.close()  # worker shutdown on engine=sharded
        print("server stopped.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
