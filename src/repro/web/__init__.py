"""A real HTTP deployment of the Table 1 web API.

The paper ships HyRec as J2EE servlets (optionally bundled with Jetty)
plus a JavaScript widget.  This package is the Python equivalent: a
threaded standard-library HTTP server mounting
:class:`repro.core.api.WebApi`, and an HTTP widget client that runs
real personalization jobs against it.  ``examples/http_demo.py``
exercises the full loop over localhost -- actual sockets, actual JSON,
actual gzip.
"""

from repro.web.server import HyRecHttpServer
from repro.web.client import HttpWidgetClient

__all__ = ["HyRecHttpServer", "HttpWidgetClient"]
