"""A real HTTP deployment of the Table 1 web API.

The paper ships HyRec as J2EE servlets (optionally bundled with Jetty)
plus a JavaScript widget.  This package is the Python equivalent, in
two tiers:

* :class:`AsyncHyRecServer` (``async_server.py``) -- the production
  front door: an asyncio server with admission control/backpressure
  (bounded pending queue, ``503`` + ``Retry-After`` shedding) and the
  per-user L1 response cache of :mod:`repro.web.cache` with
  write-driven invalidation.  Load-tested end to end by
  :mod:`repro.web.loadtest` / ``benchmarks/bench_http.py``.
* :class:`HyRecHttpServer` (``server.py``) -- the original threaded
  standard-library server; zero moving parts, handy for demos.

Both mount :class:`repro.core.api.WebApi`, so the endpoint surface is
identical; ``docs/http.md`` documents endpoints, cache semantics, and
admission knobs.
"""

from repro.web.async_server import AsyncHyRecServer
from repro.web.cache import CacheStats, ResponseCache
from repro.web.client import HttpWidgetClient
from repro.web.loadtest import HttpLoadDriver, HttpLoadResult, fetch_stats
from repro.web.server import HyRecHttpServer

__all__ = [
    "AsyncHyRecServer",
    "CacheStats",
    "HttpLoadDriver",
    "HttpLoadResult",
    "HttpWidgetClient",
    "HyRecHttpServer",
    "ResponseCache",
    "fetch_stats",
]
