"""Closed- and open-loop HTTP load drivers over real sockets.

The paper load-tests HyRec's servlet frontend with Apache ``ab``
(Figures 8-9); :mod:`repro.sim.loadgen` reproduces that shape against
in-process engines.  This module is the missing end-to-end rung: it
drives the *HTTP deployment itself* -- real TCP connections, real
HTTP/1.1 keep-alive, the full parse/admit/cache/render path -- in the
style of COB-Service's ``test_scalability.py``.

Two modes:

* **Closed loop** (:meth:`HttpLoadDriver.run_closed`): ``concurrency``
  workers, each with one persistent connection, each firing its next
  request as soon as the previous response lands -- ``ab -c C``.
  Offered load adapts to what the server sustains, so sheds only
  happen past the admission bound.
* **Open loop** (:meth:`HttpLoadDriver.run_open`): requests fired on a
  fixed schedule at ``rps`` regardless of completions -- the arrival
  process of real browsers, which is what pushes a server past its
  admission bound and makes the ``503``/``Retry-After`` shed path
  measurable.  Latency is measured from the request's *scheduled*
  send time, so queueing delay is not hidden (no coordinated
  omission).

Both return an :class:`HttpLoadResult` with p50/p95/p99 latency,
throughput, and shed/error counts; ``benchmarks/bench_http.py`` sweeps
them into ``BENCH_http.json``.
"""

from __future__ import annotations

import http.client
import threading
import time
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import urlparse

from repro.messages import decode_json
from repro.obs.timing import nearest_rank


@dataclass(frozen=True)
class HttpLoadResult:
    """Outcome of one HTTP load run."""

    mode: str  # "closed" | "open"
    concurrency: int
    #: Target arrival rate (open loop only; ``None`` for closed loop).
    offered_rps: float | None
    requests: int
    ok: int
    shed: int  # 503 responses (admission control)
    errors: int  # transport failures / unexpected statuses
    duration_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0


def _percentile(sorted_values: list[float], fraction: float) -> float:
    return nearest_rank(sorted_values, fraction)


def _summarize(
    mode: str,
    concurrency: int,
    offered_rps: float | None,
    latencies_s: list[float],
    ok: int,
    shed: int,
    errors: int,
    duration_s: float,
) -> HttpLoadResult:
    latencies = sorted(latencies_s)
    requests = ok + shed + errors
    return HttpLoadResult(
        mode=mode,
        concurrency=concurrency,
        offered_rps=offered_rps,
        requests=requests,
        ok=ok,
        shed=shed,
        errors=errors,
        duration_s=duration_s,
        throughput_rps=ok / duration_s if duration_s > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p95_ms=_percentile(latencies, 0.95) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        mean_ms=(sum(latencies) / len(latencies) * 1e3) if latencies else 0.0,
    )


class HttpLoadDriver:
    """Drive ``GET /online/?uid=`` against a running HTTP deployment.

    ``user_ids`` is the population requests cycle through (round
    robin, so closed-loop runs are deterministic in which uid each
    sequence number hits).  Works against both the threaded server and
    the async front door -- anything speaking the Table 1 API.
    """

    def __init__(self, base_url: str, user_ids: Sequence[int]) -> None:
        if not user_ids:
            raise ValueError("need at least one user to draw requests from")
        parsed = urlparse(base_url)
        if parsed.hostname is None or parsed.port is None:
            raise ValueError(f"need an explicit host:port url, got {base_url!r}")
        self._netloc = (parsed.hostname, parsed.port)
        self._users = list(user_ids)

    def _request(
        self, connection: http.client.HTTPConnection, uid: int
    ) -> int:
        """One GET; returns the HTTP status (raises on transport errors)."""
        connection.request("GET", f"/online/?uid={uid}")
        response = connection.getresponse()
        response.read()  # drain so keep-alive can reuse the socket
        return response.status

    # --- closed loop ------------------------------------------------------------

    def run_closed(
        self, requests: int = 200, concurrency: int = 8
    ) -> HttpLoadResult:
        """``requests`` total requests from ``concurrency`` looping workers."""
        if requests < 1 or concurrency < 1:
            raise ValueError("need requests >= 1 and concurrency >= 1")
        counter_lock = threading.Lock()
        sequence = [0]
        latencies: list[list[float]] = [[] for _ in range(concurrency)]
        outcomes: list[list[int]] = [[0, 0, 0] for _ in range(concurrency)]

        def worker(slot: int) -> None:
            connection = http.client.HTTPConnection(*self._netloc, timeout=30)
            try:
                while True:
                    with counter_lock:
                        if sequence[0] >= requests:
                            return
                        seq = sequence[0]
                        sequence[0] += 1
                    uid = self._users[seq % len(self._users)]
                    start = time.perf_counter()
                    try:
                        status = self._request(connection, uid)
                    except (OSError, http.client.HTTPException):
                        outcomes[slot][2] += 1
                        connection.close()
                        connection = http.client.HTTPConnection(
                            *self._netloc, timeout=30
                        )
                        continue
                    latencies[slot].append(time.perf_counter() - start)
                    if status == 200:
                        outcomes[slot][0] += 1
                    elif status == 503:
                        outcomes[slot][1] += 1
                    else:
                        outcomes[slot][2] += 1
            finally:
                connection.close()

        threads = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(concurrency)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - start
        return _summarize(
            mode="closed",
            concurrency=concurrency,
            offered_rps=None,
            latencies_s=[value for slot in latencies for value in slot],
            ok=sum(o[0] for o in outcomes),
            shed=sum(o[1] for o in outcomes),
            errors=sum(o[2] for o in outcomes),
            duration_s=duration,
        )

    # --- open loop --------------------------------------------------------------

    def run_open(
        self, rps: float, duration_s: float, workers: int = 32
    ) -> HttpLoadResult:
        """Fire at ``rps`` for ``duration_s`` seconds regardless of replies.

        ``workers`` bounds the client-side in-flight window; if every
        worker is busy when a request comes due, the schedule slips
        and the slip shows up in that request's latency (measured from
        the scheduled time).
        """
        if rps <= 0 or duration_s <= 0 or workers < 1:
            raise ValueError("need rps > 0, duration_s > 0, workers >= 1")
        total = max(1, int(rps * duration_s))
        interval = 1.0 / rps
        slots: list[http.client.HTTPConnection | None] = [None] * workers
        free = list(range(workers))
        free_lock = threading.Lock()
        latencies: list[float] = []
        counts = [0, 0, 0]  # ok, shed, errors
        record_lock = threading.Lock()
        inflight: list[threading.Thread] = []

        def fire(slot: int, uid: int, scheduled: float) -> None:
            connection = slots[slot]
            if connection is None:
                connection = http.client.HTTPConnection(*self._netloc, timeout=30)
                slots[slot] = connection
            try:
                status = self._request(connection, uid)
            except (OSError, http.client.HTTPException):
                connection.close()
                slots[slot] = None
                status = -1
            elapsed = time.perf_counter() - scheduled
            with record_lock:
                latencies.append(elapsed)
                if status == 200:
                    counts[0] += 1
                elif status == 503:
                    counts[1] += 1
                else:
                    counts[2] += 1
            with free_lock:
                free.append(slot)

        start = time.perf_counter()
        for seq in range(total):
            scheduled = start + seq * interval
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            while True:
                with free_lock:
                    slot = free.pop() if free else None
                if slot is not None:
                    break
                time.sleep(interval / 4)
            uid = self._users[seq % len(self._users)]
            thread = threading.Thread(
                target=fire, args=(slot, uid, scheduled), daemon=True
            )
            thread.start()
            inflight.append(thread)
        for thread in inflight:
            thread.join(timeout=60)
        duration = time.perf_counter() - start
        for connection in slots:
            if connection is not None:
                connection.close()
        return _summarize(
            mode="open",
            concurrency=workers,
            offered_rps=rps,
            latencies_s=latencies,
            ok=counts[0],
            shed=counts[1],
            errors=counts[2],
            duration_s=duration,
        )


def fetch_stats(base_url: str) -> dict:
    """``GET /stats/`` decoded -- cache/shed counters for benchmarks."""
    parsed = urlparse(base_url)
    connection = http.client.HTTPConnection(
        parsed.hostname, parsed.port, timeout=10
    )
    try:
        connection.request("GET", "/stats/")
        response = connection.getresponse()
        return decode_json(response.read())
    finally:
        connection.close()
