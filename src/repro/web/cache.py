"""Per-user recommendation response cache (the front door's L1).

The async front door (:mod:`repro.web.async_server`) serves
``/online/?uid=`` from this cache whenever a fresh-enough rendered
response exists, skipping the engine entirely.  The design follows the
multi-layer caching of aws-samples/personalization-apis, adapted to
HyRec's single write path:

* **L1 (this module)** -- a bounded, thread-safe LRU of fully rendered
  response bytes keyed by user id.  Hits are served straight off the
  event loop: no admission slot, no engine work, no new wire metering.
* **L2 (already in the server)** -- the per-profile JSON fragment and
  deflate-segment caches that :meth:`HyRecServer.render_online_response
  <repro.core.server.HyRecServer.render_online_response>` splices, so
  even an L1 miss only pays for the response envelope.

Staleness contract (see ``docs/http.md``):

* A ``/neighbors/`` or rating write for user ``u`` *immediately*
  evicts ``u``'s entry (the server's user-write listener feed), so a
  cached response is never stale with respect to its own user's
  writes.
* Other users' writes do not evict; the ``ttl`` bounds that staleness:
  no hit is ever served more than ``ttl`` seconds after the response
  was rendered.

Invalidation is versioned to stay correct under concurrency: renders
race with writes, so :meth:`ResponseCache.put` only stores a response
tagged with the user's invalidation version observed *before* the
render started (:meth:`ResponseCache.version`).  A write landing
mid-render bumps the version and the late ``put`` is discarded --
the cache can never resurrect a response older than the last
invalidation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters (monotone since construction)."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    expirations: int
    size: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class _Entry:
    body: bytes
    rendered_at: float
    version: int


class ResponseCache:
    """Bounded LRU of rendered responses with versioned invalidation.

    ``ttl`` is the staleness bound in seconds; ``capacity`` the L1
    entry budget.  ``clock`` is injectable for tests and must be
    monotone (defaults to :func:`time.monotonic`).

    Thread-safe: lookups come from the event loop, stores from the
    engine worker pool, and invalidations from whichever thread runs
    the write path.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if ttl < 0:
            raise ValueError(f"ttl cannot be negative, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        #: Invalidation version per user; grows with the user set (an
        #: int per user ever written), never with the entry set -- an
        #: evicted entry's version must survive the eviction, or a
        #: racing put could slip a pre-invalidation response back in.
        self._versions: dict[int, int] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._expirations = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache can ever serve a hit (``ttl > 0``)."""
        return self.ttl > 0

    def version(self, user_id: int) -> int:
        """The user's current invalidation version.

        Read it *before* rendering; pass it to :meth:`put` so a write
        landing mid-render discards the stale store.
        """
        with self._lock:
            return self._versions.get(user_id, 0)

    def get(self, user_id: int, now: float | None = None) -> bytes | None:
        """The user's cached response bytes, or ``None``.

        Expired entries (older than ``ttl``) are dropped on sight and
        counted as both an expiration and a miss.
        """
        if not self.enabled:
            return None
        if now is None:
            now = self._clock()
        with self._lock:
            entry = self._entries.get(user_id)
            if entry is None:
                self._misses += 1
                return None
            if now - entry.rendered_at > self.ttl:
                del self._entries[user_id]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(user_id)
            self._hits += 1
            return entry.body

    def put(
        self,
        user_id: int,
        body: bytes,
        version: int,
        now: float | None = None,
    ) -> bool:
        """Store a rendered response; returns whether it was kept.

        ``version`` must be the value :meth:`version` returned before
        the response was rendered -- a mismatch means an invalidation
        raced the render, and the store is discarded.
        """
        if not self.enabled:
            return False
        if now is None:
            now = self._clock()
        with self._lock:
            if self._versions.get(user_id, 0) != version:
                return False
            self._entries[user_id] = _Entry(
                body=body, rendered_at=now, version=version
            )
            self._entries.move_to_end(user_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def invalidate(self, user_id: int) -> None:
        """Evict the user's entry and bump her invalidation version.

        Matches the :meth:`HyRecServer.add_user_write_listener
        <repro.core.server.HyRecServer.add_user_write_listener>`
        signature, so the front door subscribes this method directly.
        """
        with self._lock:
            self._versions[user_id] = self._versions.get(user_id, 0) + 1
            self._entries.pop(user_id, None)
            self._invalidations += 1

    def clear(self) -> None:
        """Drop every entry (versions and counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                expirations=self._expirations,
                size=len(self._entries),
            )
