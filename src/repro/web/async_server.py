"""Asyncio HTTP front door: admission control + response caching.

This is the production path in front of a :class:`HyRecServer` (any
engine, including the sharded/process cluster): a single-threaded
asyncio accept/parse/respond loop, a bounded admission queue feeding a
small engine worker pool, and the per-user L1 response cache of
:mod:`repro.web.cache`.  The threaded
:class:`~repro.web.server.HyRecHttpServer` stays as the zero-moving-
parts demo deployment; both mount the same :class:`~repro.core.api.
WebApi`, so the endpoint surface (the paper's Table 1) is identical.

Request flow::

                       ┌──────────────── event loop ────────────────┐
    socket ── parse ──▶│ /online  cache hit? ──────────────▶ respond │
                       │    │ miss                                   │
                       │    ▼                                        │
                       │ admission (≤ http_max_pending waiting) ─┐   │
                       │    │ full: 503 + Retry-After (shed)     │   │
                       └────┼────────────────────────────────────┼───┘
                            ▼                                    │
                 engine pool (http_max_concurrency threads)      │
                 render via WebApi → cache.put → respond ────────┘

Contracts the test suite pins down:

* **Exactness (cache off).** With ``cache_ttl=0`` every response body
  is byte-identical to calling :class:`~repro.core.api.WebApi`
  in-process in the same order, wire metering included.
* **Bounded staleness (cache on).** A hit is never served more than
  ``cache_ttl`` seconds after its response was rendered, and a user's
  own write always invalidates her entry immediately (the server's
  user-write listener feed).
* **Deterministic shedding.** Engine endpoints past the admission
  bound get ``503`` with a ``Retry-After: http_retry_after`` header
  and count into the shed counter; nothing is queued unboundedly.
* **Health bypass.** ``/stats/`` and ``/metrics`` never enter the
  admission queue and are never cached (the threaded server behaves
  the same way, implicitly); they run on a dedicated thread so a
  saturated engine pool cannot starve them.
* **Graceful drain.** :meth:`AsyncHyRecServer.stop` stops accepting,
  lets every in-flight request finish, then closes idle keep-alive
  connections -- zero in-flight requests dropped.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qsl, urlparse

from repro.core.api import WebApi
from repro.core.server import HyRecServer
from repro.messages import encode_json
from repro.obs.exposition import metrics_text
from repro.obs.registry import MetricSample
from repro.web.cache import ResponseCache

logger = logging.getLogger("repro.web")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class AsyncHyRecServer:
    """Lifecycle wrapper around the asyncio front door.

    Mirrors :class:`~repro.web.server.HyRecHttpServer`: construct over
    a live :class:`HyRecServer`, :meth:`start` (binds and serves on a
    background event-loop thread, returns the port), :meth:`stop`
    (graceful drain).  Admission and cache knobs default to the server
    config (``http_max_concurrency``, ``http_max_pending``,
    ``http_retry_after``, ``cache_ttl``, ``cache_capacity``); keyword
    overrides exist for tests and sweeps.
    """

    def __init__(
        self,
        server: HyRecServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrency: int | None = None,
        max_pending: int | None = None,
        retry_after: int | None = None,
        cache_ttl: float | None = None,
        cache_capacity: int | None = None,
        drain_timeout: float = 10.0,
    ) -> None:
        config = server.config
        self.hyrec = server
        self.api = WebApi(server)
        self._host = host
        self._port = port
        self.max_concurrency = (
            config.http_max_concurrency
            if max_concurrency is None
            else max_concurrency
        )
        self.max_pending = (
            config.http_max_pending if max_pending is None else max_pending
        )
        self.retry_after = (
            config.http_retry_after if retry_after is None else retry_after
        )
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if self.max_pending < 0:
            raise ValueError("max_pending cannot be negative")
        self.drain_timeout = drain_timeout
        self.cache = ResponseCache(
            capacity=(
                config.cache_capacity
                if cache_capacity is None
                else cache_capacity
            ),
            ttl=config.cache_ttl if cache_ttl is None else cache_ttl,
        )
        # Engine pool sized to the concurrency limit -- the semaphore
        # already guarantees at most that many engine calls in flight.
        self._engine_pool = ThreadPoolExecutor(
            max_workers=self.max_concurrency, thread_name_prefix="hyrec-engine"
        )
        # Health endpoints get their own lane so a saturated engine
        # pool can never starve /stats//metrics (the bypass contract).
        self._health_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="hyrec-health"
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        # Admission state; touched only on the event-loop thread.
        self._sem: asyncio.Semaphore | None = None
        self._waiting = 0
        self._executing = 0
        self._active_requests = 0
        self._closing = False
        # Source-of-truth front-door counters (ints under the GIL;
        # /stats and the metrics collector read them).
        self._shed = 0
        self._served: dict[tuple[str, int], int] = {}
        obs = server.obs
        self._latency = obs.registry.histogram(
            "hyrec_http_request_latency_seconds"
        )
        obs.registry.add_collector(self._collect_metrics)
        # Write-driven invalidation: every profile/KNN write for a user
        # evicts her cached response, whatever the TTL.
        server.add_user_write_listener(self.cache.invalidate)

    # --- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, actual port) after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self, timeout: float = 10.0) -> int:
        """Bind and serve on a background event loop; returns the port."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="hyrec-async-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("async server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("async server failed to bind") from (
                self._startup_error
            )
        return self.address[1]

    def stop(self) -> None:
        """Graceful shutdown: drain in-flight requests, then close.

        Idempotent.  Detaches the cache's write listener and the
        metrics collector so a new front door can be mounted on the
        same :class:`HyRecServer`.
        """
        if self._thread is not None:
            loop, stop_event = self._loop, self._stop_event
            if loop is not None and stop_event is not None:
                loop.call_soon_threadsafe(stop_event.set)
            self._thread.join(timeout=self.drain_timeout + 5)
            self._thread = None
        self._engine_pool.shutdown(wait=False)
        self._health_pool.shutdown(wait=False)
        self.hyrec.remove_user_write_listener(self.cache.invalidate)
        self.hyrec.obs.registry.remove_collector(self._collect_metrics)

    def __enter__(self) -> "AsyncHyRecServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as error:  # pragma: no cover - diagnostic
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()
            else:
                logger.exception("async front door crashed")
        finally:
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._sem = asyncio.Semaphore(self.max_concurrency)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        sock = server.sockets[0].getsockname()
        self._address = (sock[0], sock[1])
        self._started.set()
        await self._stop_event.wait()
        # Graceful drain: no new connections, in-flight requests run
        # to completion, then idle keep-alive connections are closed.
        self._closing = True
        server.close()
        await server.wait_closed()
        deadline = (
            asyncio.get_running_loop().time() + self.drain_timeout
        )
        while self._active_requests > 0:
            if asyncio.get_running_loop().time() >= deadline:
                logger.warning(
                    "drain timeout with %d requests in flight",
                    self._active_requests,
                )
                break
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()

    # --- connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not request_line:
                    break
                parts = request_line.split()
                if len(parts) != 3:
                    break
                method = parts[0].decode("latin1")
                target = parts[1].decode("latin1")
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length:
                    body = await reader.readexactly(length)
                self._active_requests += 1
                try:
                    response = await self._dispatch(method, target, body)
                    writer.write(response)
                    await writer.drain()
                finally:
                    self._active_requests -= 1
                if headers.get("connection", "").lower() == "close":
                    break
                if self._closing:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    # --- dispatch --------------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes) -> bytes:
        loop = asyncio.get_running_loop()
        parsed = urlparse(target)
        path = parsed.path.rstrip("/")
        params = dict(parse_qsl(parsed.query))
        start = loop.time()
        try:
            if path == "/stats" and method == "GET":
                payload = await loop.run_in_executor(
                    self._health_pool, self._stats_body
                )
                return self._finish("/stats", 200, start, payload, "application/json")
            if path == "/metrics" and method == "GET":
                payload = await loop.run_in_executor(
                    self._health_pool,
                    lambda: metrics_text(self.hyrec).encode("utf-8"),
                )
                return self._finish(
                    "/metrics",
                    200,
                    start,
                    payload,
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/online" and method == "GET":
                return await self._online(loop, params, start)
            if path == "/neighbors" and method in ("GET", "POST"):
                return await self._neighbors(loop, method, params, body, start)
            return self._finish(path or "/", 404, start, b"unknown endpoint")
        except (KeyError, ValueError) as error:
            return self._finish(
                path or "/", 400, start, f"bad request: {error}".encode()
            )
        except Exception:  # pragma: no cover - diagnostic
            logger.exception("request failed: %s %s", method, target)
            return self._finish(path or "/", 500, start, b"internal error")

    async def _online(self, loop, params: dict[str, str], start: float) -> bytes:
        uid = int(params["uid"])
        extra = []
        if self.cache.enabled:
            cached = self.cache.get(uid)
            if cached is not None:
                return self._finish(
                    "/online",
                    200,
                    start,
                    cached,
                    "application/json",
                    extra=[("X-Cache", "hit")],
                    compressed=self.api.compress,
                )
            extra = [("X-Cache", "miss")]
        admitted = await self._admit()
        if not admitted:
            return self._shed_response("/online", start)
        try:

            def work() -> bytes:
                # Version read precedes the render: a write landing
                # mid-render bumps it and the put below is discarded,
                # so the cache never holds a pre-invalidation response.
                version = self.cache.version(uid)
                rendered = self.api.online(uid)
                self.cache.put(uid, rendered, version)
                return rendered

            payload = await loop.run_in_executor(self._engine_pool, work)
        finally:
            self._release()
        return self._finish(
            "/online",
            200,
            start,
            payload,
            "application/json",
            extra=extra,
            compressed=self.api.compress,
        )

    async def _neighbors(
        self, loop, method: str, params: dict[str, str], body: bytes, start: float
    ) -> bytes:
        uid = int(params.pop("uid"))
        admitted = await self._admit()
        if not admitted:
            return self._shed_response("/neighbors", start)
        try:
            if method == "POST":
                payload = await loop.run_in_executor(
                    self._engine_pool,
                    lambda: self.api.neighbors_from_body(uid, body),
                )
            else:
                payload = await loop.run_in_executor(
                    self._engine_pool, lambda: self.api.neighbors(uid, params)
                )
        finally:
            self._release()
        return self._finish(
            "/neighbors",
            200,
            start,
            payload,
            "application/json",
            compressed=self.api.compress,
        )

    # --- admission control ------------------------------------------------------

    async def _admit(self) -> bool:
        """One engine slot, or ``False`` when the queue is full."""
        assert self._sem is not None
        if self._sem.locked() and self._waiting >= self.max_pending:
            self._shed += 1
            return False
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        self._executing += 1
        return True

    def _release(self) -> None:
        assert self._sem is not None
        self._executing -= 1
        self._sem.release()

    def _shed_response(self, endpoint: str, start: float) -> bytes:
        return self._finish(
            endpoint,
            503,
            start,
            b'{"error": "server overloaded"}',
            "application/json",
            extra=[("Retry-After", str(self.retry_after))],
        )

    # --- responses and telemetry -------------------------------------------------

    def _finish(
        self,
        endpoint: str,
        status: int,
        start: float,
        body: bytes,
        content_type: str = "text/plain; charset=utf-8",
        extra: list[tuple[str, str]] | None = None,
        compressed: bool = False,
    ) -> bytes:
        """Render one response and book its counters/latency."""
        key = (endpoint, status)
        self._served[key] = self._served.get(key, 0) + 1
        self._latency.observe(
            max(0.0, asyncio.get_running_loop().time() - start)
        )
        headers = [("Content-Type", content_type)]
        if compressed:
            headers.append(("Content-Encoding", "gzip"))
        if extra:
            headers.extend(extra)
        headers.append(("Content-Length", str(len(body))))
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin1")
        return head + body

    def _stats_body(self) -> bytes:
        server = self.hyrec
        cache = self.cache.stats
        stats = {
            "users": server.num_users,
            "online_requests": server.stats.online_requests,
            "knn_updates": server.stats.knn_updates,
            "wire_bytes": server.meter.total_wire_bytes,
            "cache_enabled": self.cache.enabled,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_evictions": cache.evictions,
            "cache_invalidations": cache.invalidations,
            "cache_expirations": cache.expirations,
            "cache_size": cache.size,
            "shed_requests": self._shed,
            "pending": self._waiting,
            "in_flight": self._executing,
        }
        return encode_json(stats)

    def _collect_metrics(self) -> list[MetricSample]:
        """Front-door samples for the shared registry (collector).

        Reads the same source-of-truth ints `/stats/` serves, so the
        two surfaces can never disagree.
        """

        def counter(name: str, value: float, **labels: object) -> MetricSample:
            label_set = tuple(
                sorted((key, str(val)) for key, val in labels.items())
            )
            return MetricSample(
                name=name, kind="counter", labels=label_set, value=float(value)
            )

        cache = self.cache.stats
        samples = [
            counter("hyrec_http_shed_total", self._shed),
            counter("hyrec_http_cache_hits_total", cache.hits),
            counter("hyrec_http_cache_misses_total", cache.misses),
            counter("hyrec_http_cache_evictions_total", cache.evictions),
            counter(
                "hyrec_http_cache_invalidations_total", cache.invalidations
            ),
            MetricSample(
                name="hyrec_http_pending_requests",
                kind="gauge",
                value=float(self._waiting),
            ),
            MetricSample(
                name="hyrec_http_in_flight_requests",
                kind="gauge",
                value=float(self._executing),
            ),
        ]
        for (endpoint, status), count in sorted(self._served.items()):
            samples.append(
                counter(
                    "hyrec_http_requests_total",
                    count,
                    endpoint=endpoint,
                    status=status,
                )
            )
        return samples
