"""Batched numpy similarity kernels for the vectorized engine.

These kernels consolidate the ad-hoc numpy blocking that used to live
only inside :mod:`repro.baselines.exact`: one shared implementation of
"intersection counts -> similarity scores" now serves the exact
offline baselines *and* the online request hot path.

Bit-exactness contract
----------------------
Every kernel computes in float64 using the same operations (and the
same operation order) as the pure-Python metrics in
:mod:`repro.core.similarity`:

* set sizes are exact small integers, so their float64 conversions and
  products are exact;
* ``np.sqrt`` and ``math.sqrt`` are both correctly-rounded IEEE-754
  square roots;
* the final division is a single IEEE-754 operation in both paths.

Scores -- and therefore tie-breaks and neighbor rankings -- are
bitwise identical to the Python engine.  ``tests/test_engine_parity.py``
asserts this property across metrics and random workloads.
"""

from __future__ import annotations

import numpy as np

#: Metric names the vectorized kernels implement.  Jobs carrying any
#: other (custom-registered) metric fall back to the Python path.
SUPPORTED_METRICS = ("cosine", "jaccard", "overlap")


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of a CSR-flattened value array.

    Unlike ``np.add.reduceat``, this handles empty rows correctly
    (``reduceat`` yields ``values[i]`` instead of 0 when a segment is
    empty).
    """
    csum = np.zeros(values.size + 1, dtype=np.int64)
    np.cumsum(values, out=csum[1:])
    return csum[indptr[1:]] - csum[indptr[:-1]]


def intersection_counts(
    query_flags: np.ndarray, indices: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """``|Q ∩ row_i|`` for every CSR row in one vectorized pass.

    Args:
        query_flags: 0/1 (or bool) membership array over the column
            space, with ``query_flags[c]`` truthy iff column ``c`` is
            in the query set.
        indices: Concatenated column indices of all rows.
        indptr: Row offsets into ``indices`` (``len(rows) + 1``).
    """
    if indices.size == 0:
        return np.zeros(indptr.size - 1, dtype=np.int64)
    hits = query_flags[indices].astype(np.int64, copy=False)
    return segment_sums(hits, indptr)


def similarity_scores(
    metric: str,
    inter: np.ndarray,
    sizes_a: np.ndarray | float,
    sizes_b: np.ndarray,
) -> np.ndarray:
    """Batch similarity scores from intersection counts and set sizes.

    Args:
        metric: One of :data:`SUPPORTED_METRICS`.
        inter: Intersection counts; any shape broadcastable with the
            size arrays (a vector for one query against many rows, a
            matrix for the all-pairs baselines).
        sizes_a: ``|L_a|`` -- scalar or array broadcastable with
            ``inter``.
        sizes_b: ``|L_b|`` per compared row.

    Empty sets and empty intersections score 0.0, exactly like the
    Python metrics.
    """
    if metric not in SUPPORTED_METRICS:
        raise KeyError(
            f"unknown vectorized metric {metric!r}; "
            f"available: {', '.join(SUPPORTED_METRICS)}"
        )
    inter = np.asarray(inter, dtype=np.float64)
    a = np.asarray(sizes_a, dtype=np.float64)
    b = np.asarray(sizes_b, dtype=np.float64)
    if metric == "cosine":
        denom = np.sqrt(a * b)
    elif metric == "jaccard":
        denom = a + b - inter
    else:  # overlap
        denom = np.minimum(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where((inter > 0) & (denom > 0), inter / denom, 0.0)


def select_top_items(
    item_ids: np.ndarray, counts: np.ndarray, r: int
) -> list[str]:
    """Top-``r`` items by ``(-count, str(item))`` -- the engine tie-break.

    ``item_ids``/``counts`` carry the *positive* popularity counts of a
    recommendation step (already excluding the requester's rated
    items).  Item ids arrive in arbitrary order, so ties cannot ride on
    a stable sort: everything whose count could reach the top ``r``
    (at or above the r-th best count) is selected with a partition,
    then that small boundary set is resolved with the exact Python key
    the classic engine uses, ``(-count, str(item))``.
    """
    if item_ids.size == 0:
        return []
    if item_ids.size > r:
        kth = -np.partition(-counts, r - 1)[r - 1]
        keep = counts >= kth
        item_ids = item_ids[keep]
        counts = counts[keep]
    ranked = sorted(
        ((int(count), str(int(item))) for count, item in zip(counts, item_ids)),
        key=lambda entry: (-entry[0], entry[1]),
    )
    return [item for _, item in ranked[:r]]


def rank_descending(scores: np.ndarray) -> np.ndarray:
    """Indices of ``scores`` ordered by descending score, stable.

    With the compared rows pre-sorted by their deterministic tie-break
    key (ascending token / user id), the stable sort reproduces the
    Python engine's ``(-score, key)`` ordering exactly.
    """
    return np.argsort(-scores, kind="stable")
