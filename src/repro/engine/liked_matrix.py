"""An incrementally-maintained CSR-style view of the Profile Table.

:class:`LikedMatrix` mirrors every user's liked-item set as a segment
of one contiguous int64 *arena* of column indices over a dynamically
interned item vocabulary -- row storage is CSR, but rows are
addressable individually so single-user updates stay O(|row|).

It subscribes to :meth:`repro.core.tables.ProfileTable.record`, so a
write invalidates exactly the affected row (O(1)); the row is re-sliced
into the arena lazily on the next read.  Superseded segments become
garbage and the arena compacts itself once garbage outgrows the live
data, keeping memory within ~2x of the live footprint.

Because all rows live in one array, :meth:`gather_liked` assembles the
``(indices, indptr, sizes)`` CSR triple for an arbitrary candidate set
with pure numpy gather arithmetic (``repeat`` + ``cumsum`` + one fancy
index) -- no per-candidate Python work and no concatenation of
thousands of tiny arrays.  That triple is exactly what the batch
kernels in :mod:`repro.engine.kernels` consume, so a request scores
its whole candidate set in a handful of numpy calls.

Membership tests use an epoch-stamped scratch array so building the
query-set flags is O(|query|), not O(#items), per request.

Next to the CSR rows the matrix also maintains the transposed (CSC)
view: per-item *postings* of the users who currently like the item,
kept in sync from the same write stream (a like appends, an un-like
swap-deletes).  Postings turn batch KNN against a large candidate set
into one ``bincount`` over the query items' posting lists -- the
inverted-index formulation production recommenders use (cf. Agarwal
et al.'s item-item serving stack) -- whose cost scales with the query
profile's popularity mass instead of the candidate count.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.core.tables import ProfileTable
from repro.engine.kernels import segment_sums

_EMPTY = np.zeros(0, dtype=np.int64)


class ItemVocabulary:
    """Dynamic ``item id -> column`` interning, shareable across matrices.

    A single matrix owns a private vocabulary; the sharded engine hands
    one instance to every shard so that column indices mean the same
    item everywhere -- queries then map to columns once per request and
    per-shard popularity counts merge with a dense integer add.

    Sharing discipline: interning is read-mostly but *not* read-only
    under concurrency.  Most interning happens on the single-threaded
    write path (every rated item passes through ``column_of`` when its
    write is routed), and query projections intern on the coordinator
    thread before shard tasks launch -- but a shard task lazily
    materializing rows of a table that predates the matrix can still
    intern from a pool thread.  That is why :meth:`intern` double-checks
    under a lock.
    """

    __slots__ = ("_col_of", "_item_of", "_item_arr", "_lock")

    def __init__(self) -> None:
        self._col_of: dict[int, int] = {}
        self._item_of: list[int] = []
        self._item_arr = _EMPTY
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._item_of)

    def intern(self, item: int) -> int:
        """Column of ``item``, assigning the next column on first sight.

        The hit path is lock-free; the miss path double-checks under a
        lock so concurrent shard tasks lazily materializing rows of a
        pre-populated table cannot assign one column to two items.
        The item is appended before the column is published, so a
        reader holding a column always finds its item.
        """
        col = self._col_of.get(item)
        if col is None:
            with self._lock:
                col = self._col_of.get(item)
                if col is None:
                    col = len(self._item_of)
                    self._item_of.append(item)
                    self._col_of[item] = col
        return col

    def column_of(self, item: int) -> int | None:
        """Column of ``item`` or ``None`` if never interned."""
        return self._col_of.get(item)

    def item_of(self, col: int) -> int:
        """Inverse of :meth:`intern`."""
        return self._item_of[col]

    def item_array(self) -> np.ndarray:
        """``col -> item id`` as an int64 array (cached between interns)."""
        if self._item_arr.size != len(self._item_of):
            self._item_arr = np.asarray(self._item_of, dtype=np.int64)
        return self._item_arr

    def columns_of(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, *skipping* un-interned ones.

        An item nobody ever rated has no column and can appear in no
        row, so dropping it changes no intersection count.
        """
        col_of = self._col_of
        cols = [
            col
            for col in (col_of.get(item) for item in items)
            if col is not None
        ]
        if not cols:
            return _EMPTY
        return np.asarray(cols, dtype=np.int64)

    def intern_columns(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, interning any new ones.

        Used for *query* projections computed before shard tasks run:
        a query item must hold the same column a candidate row will
        intern for it later in the batch, so skipping is not an option
        there.
        """
        if not items:
            return _EMPTY
        intern = self.intern
        return np.asarray([intern(item) for item in items], dtype=np.int64)


class LikedMatrix:
    """Integer-array projection of a :class:`ProfileTable`'s liked sets."""

    def __init__(
        self,
        table: ProfileTable,
        initial_capacity: int = 1024,
        *,
        subscribe: bool = True,
        row_filter: Callable[[int], bool] | None = None,
        vocab: ItemVocabulary | None = None,
    ) -> None:
        """
        Args:
            table: The profile table this matrix mirrors.
            initial_capacity: Starting arena size (grows as needed).
            subscribe: Attach the write hook to ``table`` directly.  A
                :class:`~repro.cluster.ShardedLikedMatrix` sets this to
                ``False`` and routes each write to the owning shard's
                :meth:`apply_write` itself, so non-owning shards never
                see (or pay for) the write.
            row_filter: Restricts which users this matrix considers its
                own when rebuilding the CSC postings from the shared
                table (shards own a hash slice of the user space).
                Rows of non-owned users are never materialized because
                callers only ever ask a shard about its own users.
            vocab: Item vocabulary to intern columns in.  Defaults to
                a private one; the sharded engine passes one shared
                instance to all shards so columns agree across them.
        """
        self._table = table
        self._row_filter = row_filter
        self.vocab = vocab if vocab is not None else ItemVocabulary()
        # CSR arena: row segments are arena[start : start + length].
        self._arena = np.zeros(max(16, initial_capacity), dtype=np.int64)
        self._used = 0
        self._garbage = 0
        self._start: dict[int, int] = {}
        self._length: dict[int, int] = {}
        # Rated rows are only read one user at a time (the requester's
        # exclusion set), so plain per-user arrays suffice.
        self._rated_rows: dict[int, np.ndarray] = {}
        self._scratch = np.zeros(0, dtype=np.int64)
        self._stamp = 0
        # CSC postings: per-column array of users currently liking the
        # item (amortized append; order is irrelevant).  Built lazily
        # on first use because the table may predate the matrix.
        self._postings: list[np.ndarray] = []
        self._post_len: list[int] = []
        self._postings_dirty = True
        self.compactions = 0
        self.writes_applied = 0
        if subscribe:
            table.add_listener(self._on_record)
        # A table can be populated before the matrix attaches (tests,
        # snapshots): rows are built lazily from the live profiles, so
        # no eager absorption pass is needed.

    # --- vocabulary ---------------------------------------------------------

    @property
    def num_cols(self) -> int:
        """Number of distinct items interned so far."""
        return len(self.vocab)

    @property
    def num_rows(self) -> int:
        """Number of user rows currently materialized in the arena."""
        return len(self._start)

    @property
    def arena_live(self) -> int:
        """Live (non-garbage) index entries in the arena."""
        return self._used - self._garbage

    @property
    def arena_garbage(self) -> int:
        """Superseded index entries awaiting compaction."""
        return self._garbage

    def column_of(self, item: int) -> int:
        """Column index of ``item``, interning it on first sight."""
        return self.vocab.intern(item)

    def item_of(self, col: int) -> int:
        """Inverse of :meth:`column_of`."""
        return self.vocab.item_of(col)

    def item_array(self) -> np.ndarray:
        """``col -> item id`` as an int64 array (cached between interns)."""
        return self.vocab.item_array()

    def _sync_postings(self) -> None:
        """Extend the posting lists to cover the whole vocabulary.

        With a shared vocabulary, columns can be interned by sibling
        shards between this matrix's posting reads; those columns have
        (correctly) empty postings here.
        """
        while len(self._postings) < len(self.vocab):
            self._postings.append(np.zeros(4, dtype=np.int64))
            self._post_len.append(0)

    # --- write propagation --------------------------------------------------

    def _on_record(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable write hook: apply the like/un-like transition.

        Materialized rows are updated in place (a numpy segment copy,
        not a Python rebuild): a new like re-slices the row with the
        column appended, an un-like swap-deletes inside the segment,
        and a re-rate that doesn't flip the opinion costs nothing.
        """
        self.writes_applied += 1
        col = self.column_of(item)
        liked_now = value == 1.0
        liked_before = previous == 1.0
        if liked_now and not liked_before:
            self._row_append(user_id, col)
        elif liked_before and not liked_now:
            self._row_remove(user_id, col)
        rated = self._rated_rows.get(user_id)
        if rated is not None and previous is None:
            self._rated_rows[user_id] = np.append(rated, col)
        if not self._postings_dirty:
            if liked_now and not liked_before:
                self._posting_append(col, user_id)
            elif liked_before and not liked_now:
                self._posting_remove(col, user_id)

    def apply_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """Public entry for externally-routed writes (sharded setups).

        Identical to the table-subscribed hook; exists so a placement
        router built with ``subscribe=False`` has a stable name to
        deliver writes to.
        """
        self._on_record(user_id, item, value, previous)

    def refresh(self, user_id: int) -> None:
        """Force a rebuild of ``user_id``'s rows on next read.

        Only needed if a profile was mutated behind the table's back
        (i.e. not through :meth:`ProfileTable.record`).  Postings are
        rebuilt wholesale on the next CSC query, since the out-of-band
        write carries no before/after transition.
        """
        self._invalidate(user_id)
        self._postings_dirty = True

    def _invalidate(self, user_id: int) -> None:
        length = self._length.pop(user_id, None)
        if length is not None:
            self._start.pop(user_id)
            self._garbage += length
        self._rated_rows.pop(user_id, None)

    def _row_append(self, user_id: int, col: int) -> None:
        """Re-slice the user's liked row with ``col`` appended."""
        length = self._length.get(user_id)
        if length is None:
            return  # not materialized; built lazily on next read
        start = self._start[user_id]
        if (
            self._used + length + 1 > self._arena.size
            or self._garbage > max(1024, self._used - self._garbage)
        ):
            self._compact(length + 1)
            start = self._start[user_id]
        new_start = self._used
        arena = self._arena
        arena[new_start : new_start + length] = arena[start : start + length]
        arena[new_start + length] = col
        self._used = new_start + length + 1
        self._garbage += length
        self._start[user_id] = new_start
        self._length[user_id] = length + 1

    def _row_remove(self, user_id: int, col: int) -> None:
        """Swap-delete ``col`` inside the user's liked segment."""
        length = self._length.get(user_id)
        if length is None:
            return
        start = self._start[user_id]
        segment = self._arena[start : start + length]
        where = np.nonzero(segment == col)[0]
        if where.size:  # row order carries no meaning
            segment[where[0]] = segment[length - 1]
            self._length[user_id] = length - 1
            self._garbage += 1

    # --- arena management ---------------------------------------------------

    def _compact(self, extra: int) -> None:
        """Drop garbage segments and ensure room for ``extra`` more."""
        live = self._used - self._garbage
        capacity = max(self._arena.size, 2 * (live + extra), 16)
        fresh = np.zeros(capacity, dtype=np.int64)
        cursor = 0
        for uid, start in self._start.items():
            length = self._length[uid]
            fresh[cursor : cursor + length] = self._arena[start : start + length]
            self._start[uid] = cursor
            cursor += length
        self._arena = fresh
        self._used = cursor
        self._garbage = 0
        self.compactions += 1

    def _materialize(self, user_id: int) -> None:
        """Slice the user's liked set into the arena."""
        liked = self._table.get(user_id).liked_items()
        length = len(liked)
        if (
            self._used + length > self._arena.size
            or self._garbage > max(1024, self._used - self._garbage)
        ):
            self._compact(length)
        start = self._used
        arena = self._arena
        for offset, item in enumerate(liked):
            arena[start + offset] = self.column_of(item)
        self._used += length
        self._start[user_id] = start
        self._length[user_id] = length

    # --- rows ---------------------------------------------------------------

    def liked_row(self, user_id: int) -> np.ndarray:
        """Column indices of the user's liked items (an arena view)."""
        start = self._start.get(user_id)
        if start is None:
            self._materialize(user_id)
            start = self._start[user_id]
        return self._arena[start : start + self._length[user_id]]

    def rated_row(self, user_id: int) -> np.ndarray:
        """Column indices of every item the user has an opinion on."""
        row = self._rated_rows.get(user_id)
        if row is None:
            rated = self._table.get(user_id).rated_items()
            row = np.fromiter(
                (self.column_of(item) for item in rated),
                dtype=np.int64,
                count=len(rated),
            )
            self._rated_rows[user_id] = row
        return row

    def known_columns(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, *skipping* un-interned ones."""
        return self.vocab.columns_of(items)

    def gather_liked(
        self, user_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple ``(indices, indptr, sizes)`` over the given users.

        One Python pass collects the per-row arena offsets; the index
        assembly itself is pure numpy, so cost scales with the total
        number of liked items, not the number of candidates.
        """
        count = len(user_ids)
        starts = np.empty(count, dtype=np.int64)
        sizes = np.empty(count, dtype=np.int64)
        start_of = self._start
        arena_before = self._arena
        for i, uid in enumerate(user_ids):
            start = start_of.get(uid)
            if start is None:
                self._materialize(uid)
                start = start_of[uid]
            starts[i] = start
            sizes[i] = self._length[uid]
        if self._arena is not arena_before:
            # A materialization compacted the arena mid-gather, moving
            # earlier segments; re-read the (now stable) offsets.
            for i, uid in enumerate(user_ids):
                starts[i] = start_of[uid]
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        total = int(indptr[-1])
        if total == 0:
            return _EMPTY, indptr, sizes
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - indptr[:-1], sizes)
        return self._arena[positions], indptr, sizes

    def liked_sizes(self, user_ids: Sequence[int]) -> np.ndarray:
        """``|L_u|`` per user, without assembling the CSR indices."""
        count = len(user_ids)
        sizes = np.empty(count, dtype=np.int64)
        length_of = self._length
        for i, uid in enumerate(user_ids):
            length = length_of.get(uid)
            if length is None:
                self._materialize(uid)
                length = length_of[uid]
            sizes[i] = length
        return sizes

    # --- batched membership -------------------------------------------------

    def _ensure_scratch(self) -> None:
        """Grow the epoch-stamped scratch to cover the vocabulary."""
        if self._scratch.size < self.num_cols:
            grown = np.zeros(
                max(self.num_cols, 2 * self._scratch.size + 64), dtype=np.int64
            )
            grown[: self._scratch.size] = self._scratch
            self._scratch = grown

    def batch_intersections(
        self, query_cols: np.ndarray, indices: np.ndarray, indptr: np.ndarray
    ) -> np.ndarray:
        """``|query ∩ row_i|`` for every CSR row, in one pass.

        Uses an epoch-stamped scratch array: marking the query set is
        O(|query|) and nothing is ever zeroed, so back-to-back requests
        do not pay O(#items) each.
        """
        if indices.size == 0 or query_cols.size == 0:
            return np.zeros(indptr.size - 1, dtype=np.int64)
        self._ensure_scratch()
        self._stamp += 1
        self._scratch[query_cols] = self._stamp
        hits = (self._scratch[indices] == self._stamp).astype(np.int64)
        return segment_sums(hits, indptr)

    def mark_hits(
        self, query_cols: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        """Write membership flags of ``indices`` in the query set to ``out``.

        The building block batched multi-query intersections are made
        of: callers mark one query, flag its rows' indices, and defer
        the per-row summation so a whole batch shares *one*
        :func:`~repro.engine.kernels.segment_sums` pass.  Same
        epoch-stamped scratch as :meth:`batch_intersections`.
        """
        if indices.size == 0:
            return
        self._ensure_scratch()
        self._stamp += 1
        self._scratch[query_cols] = self._stamp
        out[:] = self._scratch[indices] == self._stamp

    # --- postings (CSC) -----------------------------------------------------

    def _posting_append(self, col: int, user_id: int) -> None:
        if col >= len(self._postings):
            self._sync_postings()
        posting = self._postings[col]
        length = self._post_len[col]
        if length == posting.size:
            grown = np.zeros(2 * posting.size, dtype=np.int64)
            grown[:length] = posting
            self._postings[col] = posting = grown
        posting[length] = user_id
        self._post_len[col] = length + 1

    def _posting_remove(self, col: int, user_id: int) -> None:
        if col >= len(self._postings):
            self._sync_postings()
        posting = self._postings[col]
        length = self._post_len[col]
        where = np.nonzero(posting[:length] == user_id)[0]
        if where.size:  # swap-delete: posting order carries no meaning
            posting[where[0]] = posting[length - 1]
            self._post_len[col] = length - 1

    def _rebuild_postings(self) -> None:
        """Recompute every posting from the live (owned) profiles."""
        self._sync_postings()
        for col in range(len(self._postings)):
            self._post_len[col] = 0
        owns = self._row_filter
        for user_id in self._table:
            if owns is not None and not owns(user_id):
                continue
            for item in self._table.get(user_id).liked_items():
                self._posting_append(self.column_of(item), user_id)
        self._postings_dirty = False

    def posting(self, item: int) -> np.ndarray:
        """Users currently liking ``item`` (unordered; a live view)."""
        self._postings_ready()
        col = self.vocab.column_of(item)
        if col is None or col >= len(self._postings):
            return _EMPTY
        return self._postings[col][: self._post_len[col]]

    def _postings_ready(self) -> None:
        """Bring the CSC postings up to date for a read.

        Rebuilds from the live profiles when an out-of-band write
        dirtied them; otherwise just extends the lists over columns
        sibling shards interned since the last read.
        """
        if self._postings_dirty:
            self._rebuild_postings()
        else:
            self._sync_postings()

    def _csc_candidates(
        self,
        query_cols: np.ndarray,
        nnz: int,
        candidate_ids: Sequence[int] | np.ndarray,
    ) -> np.ndarray | None:
        """The candidate-id array if the inverted index wins, else None.

        One shared decision for both adaptive entry points: the CSC
        bincount costs O(query posting mass) and requires non-negative
        user ids; the CSR scan costs O(candidate nnz).  Small jobs
        never bother building postings at all.
        """
        if nnz < 4096 or not query_cols.size:
            return None
        self._postings_ready()
        post_len = self._post_len
        posting_mass = sum(post_len[col] for col in query_cols.tolist())
        ids = np.asarray(candidate_ids, dtype=np.int64)
        if posting_mass < nnz and int(ids.min()) >= 0:
            return ids
        return None

    def intersections_auto(
        self,
        query_cols: np.ndarray,
        candidate_ids: Sequence[int] | np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
    ) -> np.ndarray:
        """Pick the cheaper intersection kernel for this request.

        The CSR scan costs O(candidate nnz); the CSC bincount costs
        O(query posting mass).  Typical online requests (~``2k + k^2``
        candidates) stay on CSR -- the gathered indices are already in
        hand for the recommendation step -- while jobs scoring a large
        slice of the user base switch to the inverted index once the
        posting mass undercuts the candidate mass.
        """
        ids = self._csc_candidates(query_cols, indices.size, candidate_ids)
        if ids is not None:
            return self.batch_intersections_csc(query_cols, ids)
        return self.batch_intersections(query_cols, indices, indptr)

    def knn_intersections(
        self, query_cols: np.ndarray, candidate_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(intersections, sizes)`` for a KNN-only job.

        The entry point for callers that rank neighbors without also
        computing recommendations (offline back-ends, benchmarks):
        unlike :meth:`intersections_auto` there is no gathered CSR in
        hand, so the kernel choice weighs the query's posting mass
        against the candidates' total liked mass before deciding
        whether assembling the CSR triple is worth it.
        """
        ids_list = (
            candidate_ids
            if isinstance(candidate_ids, list)
            else list(candidate_ids)
        )
        sizes = self.liked_sizes(ids_list)
        ids = self._csc_candidates(query_cols, int(sizes.sum()), ids_list)
        if ids is not None:
            return self.batch_intersections_csc(query_cols, ids), sizes
        indices, indptr, _ = self.gather_liked(ids_list)
        return self.batch_intersections(query_cols, indices, indptr), sizes

    def batch_intersections_csc(
        self, query_cols: np.ndarray, candidate_ids: np.ndarray
    ) -> np.ndarray:
        """``|query ∩ L_c|`` per candidate via the inverted index.

        One ``bincount`` over the concatenated postings of the query's
        items: cost scales with the query profile's popularity mass,
        *independent of the candidate count* -- the right kernel shape
        when a job scores most of the user base (user ids must be
        non-negative, which every workload in this repo satisfies).
        Results are identical to :meth:`batch_intersections`.
        """
        self._postings_ready()
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if candidate_ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        if query_cols.size == 0:
            return np.zeros(candidate_ids.size, dtype=np.int64)
        parts = [
            self._postings[col][: self._post_len[col]]
            for col in query_cols.tolist()
        ]
        likers = np.concatenate(parts) if parts else _EMPTY
        if likers.size == 0:
            return np.zeros(candidate_ids.size, dtype=np.int64)
        per_user = np.bincount(likers, minlength=int(candidate_ids.max()) + 1)
        return per_user[candidate_ids]
