"""An incrementally-maintained CSR-style view of the Profile Table.

:class:`LikedMatrix` mirrors every user's liked-item set as a segment
of one contiguous integer *arena* of column indices over a dynamically
interned item vocabulary -- row storage is CSR, but rows are
addressable individually so single-user updates stay O(|row|).

It subscribes to :meth:`repro.core.tables.ProfileTable.record`, so a
write invalidates exactly the affected row (O(1)); the row is re-sliced
into the arena lazily on the next read.  Superseded segments become
garbage and the arena compacts itself once garbage outgrows the live
data, keeping memory within ~2x of the live footprint.

Because all rows live in one array, :meth:`gather_liked` assembles the
``(indices, indptr, sizes)`` CSR triple for an arbitrary candidate set
with pure numpy gather arithmetic (``repeat`` + ``cumsum`` + one fancy
index) -- no per-candidate Python work and no concatenation of
thousands of tiny arrays.  That triple is exactly what the batch
kernels in :mod:`repro.engine.kernels` consume, so a request scores
its whole candidate set in a handful of numpy calls.

Membership tests use an epoch-stamped scratch array so building the
query-set flags is O(|query|), not O(#items), per request.

Next to the CSR rows the matrix also maintains the transposed (CSC)
view: per-item *postings* of the users who currently like the item,
kept in sync from the same write stream (a like appends, an un-like
swap-deletes).  Postings turn batch KNN against a large candidate set
into one ``bincount`` over the query items' posting lists -- the
inverted-index formulation production recommenders use (cf. Agarwal
et al.'s item-item serving stack) -- whose cost scales with the query
profile's popularity mass instead of the candidate count.

Memory model
------------
The matrix is a *cache* over the table, and at million-user scale it
must behave like one.  A :class:`MemoryPolicy` (off by default -- the
default configuration is bit-for-bit identical to the uncapped matrix)
adds three bounded-memory levers:

* **Row eviction.**  With ``max_resident_rows`` and/or ``ttl_seconds``
  set, materialized rows carry a recency stamp (last write, direct
  row read, or materialization) in an ordered LRU dict.  Rows over the
  cap -- or idle past the TTL -- are dropped back to garbage; the
  :class:`~repro.core.tables.ProfileTable` remains the source of
  truth, so an evicted row *warm-rebuilds* lazily on its next read via
  :meth:`_materialize`.  Eviction never runs while a gather loop is
  mid-flight (``_gather_depth``), so CSR offsets handed to numpy are
  never invalidated under a caller.
* **Shrinking compaction.**  :meth:`_compact` releases capacity when
  the live footprint drops well below it (2x hysteresis over the
  usual 2x-live target), so evicting rows actually returns memory
  instead of leaving a high-water-mark arena behind.
* **Dtype narrowing.**  ``narrow_dtypes`` stores the arena, postings
  and rated rows as int32 (half the footprint).  Column indices are
  dense interned ints and user ids are checked against the int32
  range on the write path, so values are exactly representable and
  every kernel result -- and the int64 wire encoding -- is bit-for-bit
  unchanged.

Postings are deliberately *not* evicted: they mirror live table state
(not resident rows), so the CSC kernel stays exact while CSR rows come
and go.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.tables import ProfileTable
from repro.engine.kernels import segment_sums

_EMPTY = np.zeros(0, dtype=np.int64)

#: Largest value an int32 cell can hold; user ids must stay under this
#: for ``narrow_dtypes`` to be sound (checked on the write path).
_INT32_MAX = 2**31 - 1

#: Dense-id threshold for the CSC bincount: a dense count array is
#: allowed when the id span is at most ``max(65536, 8 * n)`` for ``n``
#: participating ids -- i.e. a fixed 512 KiB floor, beyond which the
#: span may only exceed the data size 8-fold.  Sparser id spaces use
#: the compressed (unique + searchsorted) counting path instead.
_DENSE_ID_FLOOR = 1 << 16


def _dense_id_ok(span: int, participants: int) -> bool:
    """True if a length-``span`` dense count array is proportionate."""
    return span <= max(_DENSE_ID_FLOOR, 8 * participants)


@dataclass(frozen=True)
class MemoryPolicy:
    """Bounded-memory levers for a :class:`LikedMatrix`.

    The zero policy (all defaults) is behaviourally identical to no
    policy at all; parity suites run with eviction off and narrowing
    off, and every lever is individually opt-in.

    Attributes:
        max_resident_rows: Evict least-recently-used rows beyond this
            many resident users (0 = uncapped).
        ttl_seconds: Evict rows idle longer than this (0 = no TTL).
            Idleness is measured against the injected ``clock`` --
            recency refreshes on writes, direct row reads, and
            (re)materializations.
        narrow_dtypes: Store arena / postings / rated rows as int32
            instead of int64.  Exact while user ids and column counts
            fit int32 (enforced on the write path).
    """

    max_resident_rows: int = 0
    ttl_seconds: float = 0.0
    narrow_dtypes: bool = False

    @property
    def evicts(self) -> bool:
        """Whether this policy ever drops resident rows."""
        return self.max_resident_rows > 0 or self.ttl_seconds > 0.0

    def dtype(self) -> np.dtype:
        """Storage dtype this policy selects for row/posting arrays."""
        return np.dtype(np.int32 if self.narrow_dtypes else np.int64)


class ItemVocabulary:
    """Dynamic ``item id -> column`` interning, shareable across matrices.

    A single matrix owns a private vocabulary; the sharded engine hands
    one instance to every shard so that column indices mean the same
    item everywhere -- queries then map to columns once per request and
    per-shard popularity counts merge with a dense integer add.

    Sharing discipline: interning is read-mostly but *not* read-only
    under concurrency.  Most interning happens on the single-threaded
    write path (every rated item passes through ``column_of`` when its
    write is routed), and query projections intern on the coordinator
    thread before shard tasks launch -- but a shard task lazily
    materializing rows of a table that predates the matrix can still
    intern from a pool thread.  That is why :meth:`intern` double-checks
    under a lock.
    """

    __slots__ = ("_col_of", "_item_of", "_item_arr", "_lock")

    def __init__(self) -> None:
        self._col_of: dict[int, int] = {}
        self._item_of: list[int] = []
        self._item_arr = _EMPTY
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._item_of)

    def intern(self, item: int) -> int:
        """Column of ``item``, assigning the next column on first sight.

        The hit path is lock-free; the miss path double-checks under a
        lock so concurrent shard tasks lazily materializing rows of a
        pre-populated table cannot assign one column to two items.
        The item is appended before the column is published, so a
        reader holding a column always finds its item.
        """
        col = self._col_of.get(item)
        if col is None:
            with self._lock:
                col = self._col_of.get(item)
                if col is None:
                    col = len(self._item_of)
                    self._item_of.append(item)
                    self._col_of[item] = col
        return col

    def column_of(self, item: int) -> int | None:
        """Column of ``item`` or ``None`` if never interned."""
        return self._col_of.get(item)

    def item_of(self, col: int) -> int:
        """Inverse of :meth:`intern`."""
        return self._item_of[col]

    def item_array(self) -> np.ndarray:
        """``col -> item id`` as an int64 array (cached between interns)."""
        if self._item_arr.size != len(self._item_of):
            self._item_arr = np.asarray(self._item_of, dtype=np.int64)
        return self._item_arr

    def columns_of(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, *skipping* un-interned ones.

        An item nobody ever rated has no column and can appear in no
        row, so dropping it changes no intersection count.
        """
        col_of = self._col_of
        cols = [
            col
            for col in (col_of.get(item) for item in items)
            if col is not None
        ]
        if not cols:
            return _EMPTY
        return np.asarray(cols, dtype=np.int64)

    def intern_columns(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, interning any new ones.

        Used for *query* projections computed before shard tasks run:
        a query item must hold the same column a candidate row will
        intern for it later in the batch, so skipping is not an option
        there.
        """
        if not items:
            return _EMPTY
        intern = self.intern
        return np.asarray([intern(item) for item in items], dtype=np.int64)


class LikedMatrix:
    """Integer-array projection of a :class:`ProfileTable`'s liked sets."""

    def __init__(
        self,
        table: ProfileTable,
        initial_capacity: int = 1024,
        *,
        subscribe: bool = True,
        row_filter: Callable[[int], bool] | None = None,
        vocab: ItemVocabulary | None = None,
        memory: MemoryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """
        Args:
            table: The profile table this matrix mirrors.
            initial_capacity: Starting arena size (grows as needed).
            subscribe: Attach the write hook to ``table`` directly.  A
                :class:`~repro.cluster.ShardedLikedMatrix` sets this to
                ``False`` and routes each write to the owning shard's
                :meth:`apply_write` itself, so non-owning shards never
                see (or pay for) the write.
            row_filter: Restricts which users this matrix considers its
                own when rebuilding the CSC postings from the shared
                table (shards own a hash slice of the user space).
                Rows of non-owned users are never materialized because
                callers only ever ask a shard about its own users.
            vocab: Item vocabulary to intern columns in.  Defaults to
                a private one; the sharded engine passes one shared
                instance to all shards so columns agree across them.
            memory: Bounded-memory policy (eviction + narrowing); see
                :class:`MemoryPolicy`.  ``None`` keeps the classic
                unbounded, int64 behaviour bit-for-bit.
            clock: Monotonic time source for TTL recency stamps
                (injectable for deterministic tests).
        """
        self._table = table
        self._row_filter = row_filter
        self.vocab = vocab if vocab is not None else ItemVocabulary()
        self._memory = memory
        self._clock = clock
        self._dtype = (
            memory.dtype() if memory is not None else np.dtype(np.int64)
        )
        self._evict_enabled = memory is not None and memory.evicts
        # Recency (LRU) order over resident users: dict insertion order
        # is eviction order, values are last-touch clock stamps for the
        # TTL sweep.  Empty -- and never touched -- when eviction is off.
        self._lru: dict[int, float] = {}
        self._gather_depth = 0
        # CSR arena: row segments are arena[start : start + length].
        self._arena = np.zeros(max(16, initial_capacity), dtype=self._dtype)
        self._used = 0
        self._garbage = 0
        self._start: dict[int, int] = {}
        self._length: dict[int, int] = {}
        # Rated rows are only read one user at a time (the requester's
        # exclusion set), so plain per-user arrays suffice.  Arrays are
        # amortized-doubling capacity buffers; _rated_len holds the
        # filled prefix length.
        self._rated_rows: dict[int, np.ndarray] = {}
        self._rated_len: dict[int, int] = {}
        self._scratch = np.zeros(0, dtype=np.int64)
        self._stamp = 0
        # CSC postings: per-column array of users currently liking the
        # item (amortized append; order is irrelevant).  Built lazily
        # on first use because the table may predate the matrix.
        self._postings: list[np.ndarray] = []
        self._post_len: list[int] = []
        self._postings_dirty = True
        self.compactions = 0
        self.evictions = 0
        self.writes_applied = 0
        if subscribe:
            table.add_listener(self._on_record)
        # A table can be populated before the matrix attaches (tests,
        # snapshots): rows are built lazily from the live profiles, so
        # no eager absorption pass is needed.

    # --- vocabulary ---------------------------------------------------------

    @property
    def num_cols(self) -> int:
        """Number of distinct items interned so far."""
        return len(self.vocab)

    @property
    def num_rows(self) -> int:
        """Number of user rows currently materialized in the arena."""
        return len(self._start)

    @property
    def arena_live(self) -> int:
        """Live (non-garbage) index entries in the arena."""
        return self._used - self._garbage

    @property
    def arena_garbage(self) -> int:
        """Superseded index entries awaiting compaction."""
        return self._garbage

    @property
    def arena_capacity(self) -> int:
        """Allocated arena cells (live + garbage + free tail)."""
        return self._arena.size

    @property
    def memory_policy(self) -> MemoryPolicy | None:
        """The active bounded-memory policy, if any."""
        return self._memory

    def column_of(self, item: int) -> int:
        """Column index of ``item``, interning it on first sight."""
        return self.vocab.intern(item)

    def item_of(self, col: int) -> int:
        """Inverse of :meth:`column_of`."""
        return self.vocab.item_of(col)

    def item_array(self) -> np.ndarray:
        """``col -> item id`` as an int64 array (cached between interns)."""
        return self.vocab.item_array()

    def _sync_postings(self) -> None:
        """Extend the posting lists to cover the whole vocabulary.

        With a shared vocabulary, columns can be interned by sibling
        shards between this matrix's posting reads; those columns have
        (correctly) empty postings here.
        """
        while len(self._postings) < len(self.vocab):
            self._postings.append(np.zeros(4, dtype=self._dtype))
            self._post_len.append(0)

    # --- memory policy ------------------------------------------------------

    def set_memory_policy(self, memory: MemoryPolicy | None) -> None:
        """Install (or clear) the bounded-memory policy at runtime.

        Used by shard workers, which construct their matrix before the
        coordinator's Hello delivers the configured policy.  Switching
        the storage dtype converts the arena, postings and rated rows
        in place; narrowing verifies every stored id fits int32 first.
        """
        new_dtype = (
            memory.dtype() if memory is not None else np.dtype(np.int64)
        )
        if new_dtype != self._dtype:
            if new_dtype == np.int32:
                self._check_narrowable()
            self._arena = self._arena.astype(new_dtype)
            self._postings = [p.astype(new_dtype) for p in self._postings]
            self._rated_rows = {
                uid: row.astype(new_dtype)
                for uid, row in self._rated_rows.items()
            }
            self._dtype = new_dtype
        self._memory = memory
        self._evict_enabled = memory is not None and memory.evicts
        if self._evict_enabled:
            # Adopt already-resident rows into the recency order so the
            # cap applies to them too (stamped "now": they were alive
            # the moment the policy arrived).
            now = self._clock()
            for uid in self._start:
                self._lru.setdefault(uid, now)
            for uid in self._rated_rows:
                self._lru.setdefault(uid, now)
            self._enforce_memory()
        else:
            self._lru.clear()

    def _check_narrowable(self) -> None:
        """Raise unless every stored id/column fits in int32."""
        if self._used and int(self._arena[: self._used].max()) > _INT32_MAX:
            raise ValueError("arena columns exceed the int32 range")
        for col, posting in enumerate(self._postings):
            length = self._post_len[col]
            if length and int(posting[:length].max()) > _INT32_MAX:
                raise ValueError("posting user ids exceed the int32 range")

    def _touch(self, user_id: int) -> None:
        """Move ``user_id`` to the back of the recency order."""
        lru = self._lru
        lru.pop(user_id, None)
        lru[user_id] = self._clock()

    def _evict_row(self, user_id: int) -> None:
        """Drop a resident row; it warm-rebuilds from the table on read."""
        self._invalidate(user_id)
        self.evictions += 1

    def _enforce_memory(self) -> None:
        """Apply TTL + cap eviction, then reclaim arena garbage.

        Never runs mid-gather (``_gather_depth``): evicting or
        compacting there would invalidate arena offsets already
        collected for the numpy fancy index.  The most recently touched
        row always survives (cap >= 1, and a fresh stamp beats any
        TTL cutoff), so callers may touch-then-enforce around a row
        they are about to return.
        """
        if not self._evict_enabled or self._gather_depth:
            return
        policy = self._memory
        lru = self._lru
        if policy.ttl_seconds > 0.0 and lru:
            cutoff = self._clock() - policy.ttl_seconds
            while lru:
                user_id = next(iter(lru))
                if lru[user_id] > cutoff:
                    break
                self._evict_row(user_id)
        cap = policy.max_resident_rows
        if cap > 0:
            while len(lru) > cap:
                self._evict_row(next(iter(lru)))
        if self._garbage > max(1024, self._used - self._garbage):
            self._compact(0)

    def memory_stats(self) -> dict[str, int | str]:
        """Point-in-time memory accounting for benchmarks and /stats."""
        postings_bytes = sum(p.nbytes for p in self._postings)
        rated_bytes = sum(r.nbytes for r in self._rated_rows.values())
        return {
            "rows_resident": len(self._start),
            "arena_entries": self._used,
            "arena_capacity": self._arena.size,
            "arena_live": self.arena_live,
            "arena_garbage": self._garbage,
            "arena_bytes": int(self._arena.nbytes),
            "postings_bytes": int(postings_bytes),
            "rated_bytes": int(rated_bytes),
            "evictions": self.evictions,
            "compactions": self.compactions,
            "dtype": str(self._dtype),
        }

    # --- write propagation --------------------------------------------------

    def _on_record(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable write hook: apply the like/un-like transition.

        Materialized rows are updated in place (a numpy segment copy,
        not a Python rebuild): a new like re-slices the row with the
        column appended, an un-like swap-deletes inside the segment,
        and a re-rate that doesn't flip the opinion costs nothing.
        """
        self.writes_applied += 1
        col = self.column_of(item)
        liked_now = value == 1.0
        liked_before = previous == 1.0
        if liked_now and not liked_before:
            self._row_append(user_id, col)
        elif liked_before and not liked_now:
            self._row_remove(user_id, col)
        rated = self._rated_rows.get(user_id)
        if rated is not None and previous is None:
            length = self._rated_len[user_id]
            if length == rated.size:
                grown = np.zeros(max(4, 2 * rated.size), dtype=self._dtype)
                grown[:length] = rated[:length]
                self._rated_rows[user_id] = rated = grown
            rated[length] = col
            self._rated_len[user_id] = length + 1
        if not self._postings_dirty:
            if liked_now and not liked_before:
                self._posting_append(col, user_id)
            elif liked_before and not liked_now:
                self._posting_remove(col, user_id)
        if self._evict_enabled:
            if user_id in self._length or user_id in self._rated_rows:
                self._touch(user_id)
            self._enforce_memory()

    def apply_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """Public entry for externally-routed writes (sharded setups).

        Identical to the table-subscribed hook; exists so a placement
        router built with ``subscribe=False`` has a stable name to
        deliver writes to.
        """
        self._on_record(user_id, item, value, previous)

    def refresh(self, user_id: int) -> None:
        """Force a rebuild of ``user_id``'s rows on next read.

        Only needed if a profile was mutated behind the table's back
        (i.e. not through :meth:`ProfileTable.record`).  Postings are
        rebuilt wholesale on the next CSC query, since the out-of-band
        write carries no before/after transition.
        """
        self._invalidate(user_id)
        self._postings_dirty = True

    def _invalidate(self, user_id: int) -> None:
        length = self._length.pop(user_id, None)
        if length is not None:
            self._start.pop(user_id)
            self._garbage += length
        self._rated_rows.pop(user_id, None)
        self._rated_len.pop(user_id, None)
        self._lru.pop(user_id, None)

    def _row_append(self, user_id: int, col: int) -> None:
        """Re-slice the user's liked row with ``col`` appended."""
        length = self._length.get(user_id)
        if length is None:
            return  # not materialized; built lazily on next read
        start = self._start[user_id]
        if (
            self._used + length + 1 > self._arena.size
            or self._garbage > max(1024, self._used - self._garbage)
        ):
            self._compact(length + 1)
            start = self._start[user_id]
        new_start = self._used
        arena = self._arena
        arena[new_start : new_start + length] = arena[start : start + length]
        arena[new_start + length] = col
        self._used = new_start + length + 1
        self._garbage += length
        self._start[user_id] = new_start
        self._length[user_id] = length + 1

    def _row_remove(self, user_id: int, col: int) -> None:
        """Swap-delete ``col`` inside the user's liked segment."""
        length = self._length.get(user_id)
        if length is None:
            return
        start = self._start[user_id]
        segment = self._arena[start : start + length]
        where = np.nonzero(segment == col)[0]
        if where.size:  # row order carries no meaning
            segment[where[0]] = segment[length - 1]
            self._length[user_id] = length - 1
            self._garbage += 1

    # --- arena management ---------------------------------------------------

    def _compact(self, extra: int) -> None:
        """Drop garbage segments, ensure room for ``extra``, return slack.

        Capacity targets 2x the live footprint.  It never shrinks by
        less than half the current allocation (hysteresis), so steady
        workloads keep the classic grow-only behaviour while bulk
        eviction actually hands memory back.
        """
        live = self._used - self._garbage
        target = max(2 * (live + extra), 16)
        if 2 * target <= self._arena.size:
            capacity = target
        else:
            capacity = max(self._arena.size, target)
        fresh = np.zeros(capacity, dtype=self._dtype)
        cursor = 0
        for uid, start in self._start.items():
            length = self._length[uid]
            fresh[cursor : cursor + length] = self._arena[start : start + length]
            self._start[uid] = cursor
            cursor += length
        self._arena = fresh
        self._used = cursor
        self._garbage = 0
        self.compactions += 1

    def _materialize(self, user_id: int) -> None:
        """Slice the user's liked set into the arena."""
        liked = self._table.get(user_id).liked_items()
        length = len(liked)
        if (
            self._used + length > self._arena.size
            or self._garbage > max(1024, self._used - self._garbage)
        ):
            self._compact(length)
        start = self._used
        arena = self._arena
        for offset, item in enumerate(liked):
            arena[start + offset] = self.column_of(item)
        self._used += length
        self._start[user_id] = start
        self._length[user_id] = length
        if self._evict_enabled:
            self._touch(user_id)

    # --- rows ---------------------------------------------------------------

    def liked_row(self, user_id: int) -> np.ndarray:
        """Column indices of the user's liked items (an arena view)."""
        if user_id not in self._start:
            self._materialize(user_id)
        if self._evict_enabled:
            # Refresh recency, then let eviction/compaction settle
            # *before* slicing -- the just-touched row survives both.
            self._touch(user_id)
            self._enforce_memory()
        start = self._start[user_id]
        return self._arena[start : start + self._length[user_id]]

    def rated_row(self, user_id: int) -> np.ndarray:
        """Column indices of every item the user has an opinion on."""
        row = self._rated_rows.get(user_id)
        if row is None:
            rated = self._table.get(user_id).rated_items()
            row = np.fromiter(
                (self.column_of(item) for item in rated),
                dtype=self._dtype,
                count=len(rated),
            )
            self._rated_rows[user_id] = row
            self._rated_len[user_id] = row.size
            if self._evict_enabled:
                self._touch(user_id)
                self._enforce_memory()
                row = self._rated_rows[user_id]
        return row[: self._rated_len[user_id]]

    def known_columns(self, items: Sequence[int]) -> np.ndarray:
        """Columns of the given items, *skipping* un-interned ones."""
        return self.vocab.columns_of(items)

    def gather_liked(
        self, user_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple ``(indices, indptr, sizes)`` over the given users.

        One Python pass collects the per-row arena offsets; the index
        assembly itself is pure numpy, so cost scales with the total
        number of liked items, not the number of candidates.
        """
        count = len(user_ids)
        starts = np.empty(count, dtype=np.int64)
        sizes = np.empty(count, dtype=np.int64)
        start_of = self._start
        arena_before = self._arena
        self._gather_depth += 1
        try:
            for i, uid in enumerate(user_ids):
                start = start_of.get(uid)
                if start is None:
                    self._materialize(uid)
                    start = start_of[uid]
                starts[i] = start
                sizes[i] = self._length[uid]
            if self._arena is not arena_before:
                # A materialization compacted the arena mid-gather,
                # moving earlier segments; re-read the (now stable)
                # offsets.
                for i, uid in enumerate(user_ids):
                    starts[i] = start_of[uid]
            indptr = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            total = int(indptr[-1])
            if total == 0:
                indices = _EMPTY
            else:
                positions = np.arange(total, dtype=np.int64)
                positions += np.repeat(starts - indptr[:-1], sizes)
                indices = self._arena[positions]  # fancy index: a copy
        finally:
            self._gather_depth -= 1
        if self._evict_enabled:
            self._enforce_memory()
        return indices, indptr, sizes

    def liked_sizes(self, user_ids: Sequence[int]) -> np.ndarray:
        """``|L_u|`` per user, without assembling the CSR indices."""
        count = len(user_ids)
        sizes = np.empty(count, dtype=np.int64)
        length_of = self._length
        self._gather_depth += 1
        try:
            for i, uid in enumerate(user_ids):
                length = length_of.get(uid)
                if length is None:
                    self._materialize(uid)
                    length = length_of[uid]
                sizes[i] = length
        finally:
            self._gather_depth -= 1
        if self._evict_enabled:
            self._enforce_memory()
        return sizes

    # --- batched membership -------------------------------------------------

    def _ensure_scratch(self) -> None:
        """Grow the epoch-stamped scratch to cover the vocabulary."""
        if self._scratch.size < self.num_cols:
            grown = np.zeros(
                max(self.num_cols, 2 * self._scratch.size + 64), dtype=np.int64
            )
            grown[: self._scratch.size] = self._scratch
            self._scratch = grown

    def batch_intersections(
        self, query_cols: np.ndarray, indices: np.ndarray, indptr: np.ndarray
    ) -> np.ndarray:
        """``|query ∩ row_i|`` for every CSR row, in one pass.

        Uses an epoch-stamped scratch array: marking the query set is
        O(|query|) and nothing is ever zeroed, so back-to-back requests
        do not pay O(#items) each.
        """
        if indices.size == 0 or query_cols.size == 0:
            return np.zeros(indptr.size - 1, dtype=np.int64)
        self._ensure_scratch()
        self._stamp += 1
        self._scratch[query_cols] = self._stamp
        hits = (self._scratch[indices] == self._stamp).astype(np.int64)
        return segment_sums(hits, indptr)

    def mark_hits(
        self, query_cols: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        """Write membership flags of ``indices`` in the query set to ``out``.

        The building block batched multi-query intersections are made
        of: callers mark one query, flag its rows' indices, and defer
        the per-row summation so a whole batch shares *one*
        :func:`~repro.engine.kernels.segment_sums` pass.  Same
        epoch-stamped scratch as :meth:`batch_intersections`.
        """
        if indices.size == 0:
            return
        self._ensure_scratch()
        self._stamp += 1
        self._scratch[query_cols] = self._stamp
        out[:] = self._scratch[indices] == self._stamp

    # --- postings (CSC) -----------------------------------------------------

    def _posting_append(self, col: int, user_id: int) -> None:
        if self._dtype.itemsize == 4 and user_id > _INT32_MAX:
            raise ValueError(
                f"user id {user_id} exceeds the int32 range; "
                "narrow_dtypes requires ids below 2**31"
            )
        if col >= len(self._postings):
            self._sync_postings()
        posting = self._postings[col]
        length = self._post_len[col]
        if length == posting.size:
            grown = np.zeros(2 * posting.size, dtype=self._dtype)
            grown[:length] = posting
            self._postings[col] = posting = grown
        posting[length] = user_id
        self._post_len[col] = length + 1

    def _posting_remove(self, col: int, user_id: int) -> None:
        if col >= len(self._postings):
            self._sync_postings()
        posting = self._postings[col]
        length = self._post_len[col]
        where = np.nonzero(posting[:length] == user_id)[0]
        if where.size:  # swap-delete: posting order carries no meaning
            posting[where[0]] = posting[length - 1]
            self._post_len[col] = length - 1

    def _rebuild_postings(self) -> None:
        """Recompute every posting from the live (owned) profiles."""
        self._sync_postings()
        for col in range(len(self._postings)):
            self._post_len[col] = 0
        owns = self._row_filter
        for user_id in self._table:
            if owns is not None and not owns(user_id):
                continue
            for item in self._table.get(user_id).liked_items():
                self._posting_append(self.column_of(item), user_id)
        self._postings_dirty = False

    def posting(self, item: int) -> np.ndarray:
        """Users currently liking ``item`` (unordered; a live view)."""
        self._postings_ready()
        col = self.vocab.column_of(item)
        if col is None or col >= len(self._postings):
            return _EMPTY
        return self._postings[col][: self._post_len[col]]

    def _postings_ready(self) -> None:
        """Bring the CSC postings up to date for a read.

        Rebuilds from the live profiles when an out-of-band write
        dirtied them; otherwise just extends the lists over columns
        sibling shards interned since the last read.
        """
        if self._postings_dirty:
            self._rebuild_postings()
        else:
            self._sync_postings()

    def _csc_candidates(
        self,
        query_cols: np.ndarray,
        nnz: int,
        candidate_ids: Sequence[int] | np.ndarray,
    ) -> np.ndarray | None:
        """The candidate-id array if the inverted index wins, else None.

        One shared decision for both adaptive entry points: the CSC
        bincount costs O(query posting mass) and requires non-negative
        user ids; the CSR scan costs O(candidate nnz).  Small jobs
        never bother building postings at all, and sparse id spaces
        (max id far beyond the candidate count) stay on CSR so the
        dense count array cannot dominate memory.
        """
        if nnz < 4096 or not query_cols.size:
            return None
        self._postings_ready()
        post_len = self._post_len
        posting_mass = sum(post_len[col] for col in query_cols.tolist())
        ids = np.asarray(candidate_ids, dtype=np.int64)
        if (
            posting_mass < nnz
            and int(ids.min()) >= 0
            and _dense_id_ok(int(ids.max()) + 1, ids.size)
        ):
            return ids
        return None

    def intersections_auto(
        self,
        query_cols: np.ndarray,
        candidate_ids: Sequence[int] | np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
    ) -> np.ndarray:
        """Pick the cheaper intersection kernel for this request.

        The CSR scan costs O(candidate nnz); the CSC bincount costs
        O(query posting mass).  Typical online requests (~``2k + k^2``
        candidates) stay on CSR -- the gathered indices are already in
        hand for the recommendation step -- while jobs scoring a large
        slice of the user base switch to the inverted index once the
        posting mass undercuts the candidate mass.
        """
        ids = self._csc_candidates(query_cols, indices.size, candidate_ids)
        if ids is not None:
            return self.batch_intersections_csc(query_cols, ids)
        return self.batch_intersections(query_cols, indices, indptr)

    def knn_intersections(
        self, query_cols: np.ndarray, candidate_ids: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(intersections, sizes)`` for a KNN-only job.

        The entry point for callers that rank neighbors without also
        computing recommendations (offline back-ends, benchmarks):
        unlike :meth:`intersections_auto` there is no gathered CSR in
        hand, so the kernel choice weighs the query's posting mass
        against the candidates' total liked mass before deciding
        whether assembling the CSR triple is worth it.
        """
        ids_list = (
            candidate_ids
            if isinstance(candidate_ids, list)
            else list(candidate_ids)
        )
        sizes = self.liked_sizes(ids_list)
        ids = self._csc_candidates(query_cols, int(sizes.sum()), ids_list)
        if ids is not None:
            return self.batch_intersections_csc(query_cols, ids), sizes
        indices, indptr, _ = self.gather_liked(ids_list)
        return self.batch_intersections(query_cols, indices, indptr), sizes

    def batch_intersections_csc(
        self, query_cols: np.ndarray, candidate_ids: np.ndarray
    ) -> np.ndarray:
        """``|query ∩ L_c|`` per candidate via the inverted index.

        One ``bincount`` over the concatenated postings of the query's
        items: cost scales with the query profile's popularity mass,
        *independent of the candidate count* -- the right kernel shape
        when a job scores most of the user base (user ids must be
        non-negative, which every workload in this repo satisfies).
        Results are identical to :meth:`batch_intersections`.

        Dense counting allocates O(max id) cells, which is fine for the
        dense sequential id spaces the synthetic workloads use but
        explodes for sparse ones (a handful of 10-digit ids would ask
        for gigabytes).  When the id span fails the density check the
        counts are taken over the *compressed* id space instead --
        ``unique`` + ``searchsorted`` + a bincount over candidate
        ranks -- which is exact for duplicate likers and duplicate
        candidates alike and allocates O(n log n) work, O(n) memory.
        """
        self._postings_ready()
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if candidate_ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        if query_cols.size == 0:
            return np.zeros(candidate_ids.size, dtype=np.int64)
        parts = [
            self._postings[col][: self._post_len[col]]
            for col in query_cols.tolist()
        ]
        likers = np.concatenate(parts) if parts else _EMPTY
        if likers.size == 0:
            return np.zeros(candidate_ids.size, dtype=np.int64)
        span = max(int(likers.max()), int(candidate_ids.max())) + 1
        if _dense_id_ok(span, likers.size + candidate_ids.size):
            per_user = np.bincount(likers, minlength=span)
            return per_user[candidate_ids]
        uniq, inverse = np.unique(candidate_ids, return_inverse=True)
        ranks = np.searchsorted(uniq, likers)
        ranks = np.minimum(ranks, uniq.size - 1)
        hits = uniq[ranks] == likers
        counts = np.bincount(ranks[hits], minlength=uniq.size)
        return counts[inverse]
