"""Integer-indexed personalization jobs for the in-process fast path.

An :class:`EngineJob` is the vectorized twin of
:class:`repro.core.jobs.PersonalizationJob`: same orchestration inputs
(user, candidate set, ``k``/``r``/metric), but users are referenced by
their integer ids instead of carrying materialized ``{str(item):
value}`` payload dicts.  The actual liked sets are read straight from
the server's :class:`~repro.engine.liked_matrix.LikedMatrix`, so the
per-request payload materialization and per-candidate
``_liked_keys()`` reconstruction of the wire path disappear entirely.

The anonymous tokens still ride along (in the same mint order as the
wire path) because they are what the widget reports back and what the
byte-identical wire rendering emits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineJob:
    """One personalization job expressed over integer ids.

    ``candidate_tokens`` and ``candidate_ids`` are parallel sequences
    sorted by ascending token -- the same deterministic order the
    Python engine's tie-breaks and the wire renderer iterate in.
    """

    user_id: int
    user_token: str
    candidate_ids: tuple[int, ...]
    candidate_tokens: tuple[str, ...]
    k: int
    r: int
    metric: str = "cosine"
    #: Rated-item counts (the paper's "profile size"), mirroring what
    #: ``len(job.user_profile)`` / ``len(profile)`` expose on the wire
    #: job -- kept so device-time estimation (Figures 11-13) works on
    #: fast-path outcomes too.
    user_profile_size: int = 0
    candidate_profile_sizes: tuple[int, ...] = ()
    #: ``(trace_id, span_id)`` of the request's root span when tracing
    #: is on (see :mod:`repro.obs.tracing`); the sharded engine's
    #: batch/schedule spans parent to it, stitching one trace per
    #: request.  ``None`` whenever tracing is off.
    trace_ctx: tuple[int, int] | None = None

    def candidate_count(self) -> int:
        """Size of the candidate set carried by this job."""
        return len(self.candidate_ids)
