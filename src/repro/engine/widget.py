"""A drop-in widget that executes jobs on numpy batch kernels.

:class:`VectorizedWidget` is interface-compatible with
:class:`repro.core.client.HyRecWidget`: :meth:`process_job` accepts the
same wire-format :class:`~repro.core.jobs.PersonalizationJob` and
returns a bit-for-bit identical :class:`~repro.core.jobs.JobResult`
(same neighbors in the same order, same tie-breaks, same scores, same
recommendations).  Instead of one Python set intersection per
candidate, it scores the whole candidate set with a single batched
kernel pass.

Two execution modes:

* :meth:`process_job` -- operates on wire payloads (string item keys).
  Used wherever a real browser widget would run.  Falls back to the
  Python widget automatically for custom ``setSimilarity()`` /
  ``setRecommendedItems()`` hooks, payload (non-binary) metrics, and
  unknown metric names.
* :meth:`process_engine_job` -- the in-process fast path: reads integer
  liked sets straight from a :class:`~repro.engine.liked_matrix.LikedMatrix`,
  skipping payload materialization entirely.  Selected by
  ``HyRecConfig(engine="vectorized")``.

Tie-break parity
----------------
The Python engine ranks neighbors by ``(-score, token)`` and items by
``(-popularity, item-key-string)``.  The vectorized paths reproduce
both exactly: candidates are pre-sorted by token and ranked with a
stable sort, and item ties are resolved on the string form of the item
id.
"""

from __future__ import annotations

import numpy as np

from repro.core.client import HyRecWidget
from repro.core.jobs import JobResult, PersonalizationJob
from repro.engine.jobs import EngineJob
from repro.engine.kernels import (
    SUPPORTED_METRICS,
    intersection_counts,
    rank_descending,
    select_top_items,
    similarity_scores,
)
from repro.engine.liked_matrix import LikedMatrix


class VectorizedWidget:
    """Batched-kernel executor of personalization jobs."""

    def __init__(
        self,
        similarity=None,
        recommender=None,
        device=None,
        payload_similarity=None,
    ) -> None:
        """Same signature as :class:`HyRecWidget`.

        Any customization hook (``similarity``, ``recommender``,
        ``payload_similarity``) routes jobs through the embedded
        Python widget -- custom code expects Python sets, not column
        arrays.
        """
        self._fallback = HyRecWidget(
            similarity=similarity,
            recommender=recommender,
            device=device,
            payload_similarity=payload_similarity,
        )
        self._customized = (
            similarity is not None
            or recommender is not None
            or payload_similarity is not None
        )
        self.device = device

    # --- capability probe -----------------------------------------------------

    def can_vectorize(self, metric: str) -> bool:
        """Whether jobs with ``metric`` run on the batched kernels."""
        return not self._customized and metric in SUPPORTED_METRICS

    # --- wire-format jobs -----------------------------------------------------

    def process_job(self, job: PersonalizationJob) -> JobResult:
        """Run KNN selection and item recommendation for one job."""
        if not self.can_vectorize(job.metric):
            return self._fallback.process_job(job)
        return self._process_wire_job(job)

    def _process_wire_job(self, job: PersonalizationJob) -> JobResult:
        user_liked_keys = [
            key for key, value in job.user_profile.items() if value == 1.0
        ]
        cand_tokens = sorted(job.candidates)
        cand_liked_keys = [
            [k for k, v in job.candidates[t].items() if v == 1.0]
            for t in cand_tokens
        ]

        # Local vocabulary in ascending key order, so column order ==
        # the Python engine's item tie-break order.
        vocab_keys: set[str] = set(job.user_profile)
        for liked in cand_liked_keys:
            vocab_keys.update(liked)
        keys_sorted = sorted(vocab_keys)
        col_of = {key: col for col, key in enumerate(keys_sorted)}
        num_cols = len(keys_sorted)

        user_cols = np.fromiter(
            (col_of[k] for k in user_liked_keys),
            dtype=np.int64,
            count=len(user_liked_keys),
        )
        sizes = np.fromiter(
            (len(liked) for liked in cand_liked_keys),
            dtype=np.int64,
            count=len(cand_liked_keys),
        )
        indptr = np.zeros(len(cand_liked_keys) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        if cand_liked_keys:
            indices = np.fromiter(
                (col_of[k] for liked in cand_liked_keys for k in liked),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
        else:
            indices = np.zeros(0, dtype=np.int64)

        flags = np.zeros(num_cols, dtype=np.int64)
        flags[user_cols] = 1
        inter = intersection_counts(flags, indices, indptr)
        scores = similarity_scores(
            job.metric, inter, float(user_cols.size), sizes
        )

        neighbor_tokens: list[str] = []
        neighbor_scores: list[float] = []
        for idx in rank_descending(scores):
            if cand_tokens[idx] == job.user_token:
                continue  # a user is never her own neighbor
            neighbor_tokens.append(cand_tokens[idx])
            neighbor_scores.append(float(scores[idx]))
            if len(neighbor_tokens) == job.k:
                break

        rated_cols = np.fromiter(
            (col_of[k] for k in job.user_profile),
            dtype=np.int64,
            count=len(job.user_profile),
        )
        popularity = np.bincount(indices, minlength=num_cols)
        if rated_cols.size:
            popularity[rated_cols] = 0
        order = rank_descending(popularity)
        keep = min(job.r, int((popularity > 0).sum()))
        recommended = [keys_sorted[c] for c in order[:keep]]

        return JobResult(
            user_token=job.user_token,
            neighbor_tokens=neighbor_tokens,
            recommended_items=recommended,
            neighbor_scores=neighbor_scores,
        )

    # --- in-process fast path -------------------------------------------------

    def process_engine_job(
        self, job: EngineJob, matrix: LikedMatrix
    ) -> JobResult:
        """Execute an integer-indexed job against the liked matrix.

        The caller (``HyRecSystem``) only routes jobs here when
        :meth:`can_vectorize` holds for the job's metric.
        """
        if not self.can_vectorize(job.metric):
            raise RuntimeError(
                "engine jobs require a built-in metric and no custom "
                "hooks; route this request through the wire path"
            )
        user_cols = matrix.liked_row(job.user_id)
        indices, indptr, sizes = matrix.gather_liked(job.candidate_ids)
        inter = matrix.intersections_auto(
            user_cols, job.candidate_ids, indices, indptr
        )
        scores = similarity_scores(
            job.metric, inter, float(user_cols.size), sizes
        )
        order = rank_descending(scores)[: job.k]
        neighbor_tokens = [job.candidate_tokens[i] for i in order]
        neighbor_scores = [float(scores[i]) for i in order]

        # Materialize the rated row *before* sizing the popularity
        # array: on a matrix attached to a pre-populated table this is
        # the read that interns the user's disliked items, and the
        # exclusion scatter below must not index past the bincount.
        rated_cols = matrix.rated_row(job.user_id)
        recommended = self._recommend_from_counts(
            np.bincount(indices, minlength=matrix.num_cols),
            rated_cols,
            job.r,
            matrix,
        )
        return JobResult(
            user_token=job.user_token,
            neighbor_tokens=neighbor_tokens,
            recommended_items=recommended,
            neighbor_scores=neighbor_scores,
        )

    @staticmethod
    def _recommend_from_counts(
        popularity: np.ndarray,
        rated_cols: np.ndarray,
        r: int,
        matrix: LikedMatrix,
    ) -> list[str]:
        """Top-``r`` unseen items, tie-broken on the item-id *string*.

        Column interning order is item-arrival order, not string order,
        so tie resolution lives in :func:`select_top_items`, shared
        with the cluster coordinator's cross-shard popularity merge.
        """
        if rated_cols.size:
            popularity[rated_cols] = 0
        nonzero = np.nonzero(popularity)[0]
        if nonzero.size == 0:
            return []
        return select_top_items(
            matrix.item_array()[nonzero], popularity[nonzero], r
        )

    # --- device-time estimation ----------------------------------------------

    def op_count(self, job: PersonalizationJob | EngineJob) -> int:
        """Primitive operations this job costs (same model as Python)."""
        if isinstance(job, EngineJob):
            from repro.sim.devices import widget_op_count

            return widget_op_count(
                job.user_profile_size, job.candidate_profile_sizes
            )
        return self._fallback.op_count(job)

    def estimated_time(self, job: PersonalizationJob | EngineJob) -> float:
        """Seconds the job would take on the configured device."""
        if self.device is None:
            raise RuntimeError("no device model configured on this widget")
        return self.device.task_time(self.op_count(job))
