"""The vectorized personalization engine.

Array-backed profiles plus batched KNN kernels for the request hot
path: the same sampler -> job -> KNN -> recommend round trip as
:mod:`repro.core`, but executed over integer arrays instead of
string-keyed dicts and Python sets.  Selected per deployment with
``HyRecConfig(engine="vectorized")``; results (neighbors, scores,
recommendations, wire metering) are identical to the Python engine.
"""

from repro.engine.jobs import EngineJob
from repro.engine.kernels import (
    SUPPORTED_METRICS,
    intersection_counts,
    rank_descending,
    segment_sums,
    select_top_items,
    similarity_scores,
)
from repro.engine.liked_matrix import LikedMatrix
from repro.engine.widget import VectorizedWidget

__all__ = [
    "EngineJob",
    "LikedMatrix",
    "VectorizedWidget",
    "SUPPORTED_METRICS",
    "intersection_counts",
    "rank_descending",
    "segment_sums",
    "select_top_items",
    "similarity_scores",
]
