"""HyRec reproduction: browser-offloaded collaborative filtering.

A from-scratch Python implementation of

    Boutet, Frey, Guerraoui, Kermarrec, Patra.
    "HyRec: Leveraging Browsers for Scalable Recommenders."
    ACM Middleware 2014.

plus every baseline and substrate its evaluation depends on.  See
``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.

Quickstart::

    from repro import HyRecSystem, load_dataset

    trace = load_dataset("ML1", scale=0.1, seed=42)
    system = HyRecSystem()
    system.replay(trace)
    print(system.recommend(user_id=0, n=5))
"""

from repro.core import (
    AnonymousMapping,
    HyRecConfig,
    HyRecServer,
    HyRecSystem,
    HyRecWidget,
    JobResult,
    Neighbor,
    PersonalizationJob,
    Profile,
    Recommendation,
    RequestOutcome,
    WebApi,
    cosine,
    jaccard,
    knn_select,
    overlap,
    recommend_most_popular,
)
from repro.datasets import (
    DIGG,
    ML1,
    ML2,
    ML3,
    Rating,
    Trace,
    binarize_trace,
    generate_digg,
    generate_movielens,
    load_dataset,
    time_split,
)

__version__ = "1.0.0"

__all__ = [
    "AnonymousMapping",
    "HyRecConfig",
    "HyRecServer",
    "HyRecSystem",
    "HyRecWidget",
    "JobResult",
    "Neighbor",
    "PersonalizationJob",
    "Profile",
    "Recommendation",
    "RequestOutcome",
    "WebApi",
    "cosine",
    "jaccard",
    "knn_select",
    "overlap",
    "recommend_most_popular",
    "DIGG",
    "ML1",
    "ML2",
    "ML3",
    "Rating",
    "Trace",
    "binarize_trace",
    "generate_digg",
    "generate_movielens",
    "load_dataset",
    "time_split",
    "__version__",
]
