"""End-to-end observability: metrics, tracing, events, exposition.

The layer PR 7 adds across the whole stack, in three pieces:

* :mod:`repro.obs.registry` -- a low-overhead, thread-safe metrics
  registry (counters, gauges, fixed-log-bucket histograms) sampled on
  the request hot path and inside worker processes, with snapshots
  that merge across process boundaries.
* :mod:`repro.obs.tracing` -- request-lifecycle spans
  (schedule -> scatter -> per-shard score -> merge -> respond) stitched
  across the coordinator/worker boundary via trace context on
  ``JobSlices`` frames, exportable as Chrome trace-event JSON.
* :mod:`repro.obs.events` -- structured operational events
  (recoveries, rolling restarts, bucket migrations, slow requests).

:class:`Observability` bundles the three per deployment; every layer
(server, coordinator, executor, supervisor, rebalancer) shares one
instance so worker spans and shard samples land in the same place.
Exposition lives in :mod:`repro.obs.exposition` (Prometheus text for
``GET /metrics``) and :mod:`repro.obs.dump` (the CLI).

Everything here is exactness-neutral by construction: instruments
observe and never decide, disabled components are shared null objects,
and telemetry crossing the process boundary rides its own frames and
fields -- request bytes and the Figure-10 wire meters are untouched.
"""

from __future__ import annotations

import logging

from repro.obs.events import EventLog, EventRecord
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    log_buckets,
    merge_samples,
)
from repro.obs.timing import LatencySummary, summarize_latencies
from repro.obs.tracing import Span, SpanContext, SpanRecord, Tracer, now_us

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "EventLog",
    "EventRecord",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "MetricSample",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "log_buckets",
    "merge_samples",
    "now_us",
    "summarize_latencies",
]

logger = logging.getLogger("repro.obs")


class Observability:
    """One deployment's registry + tracer + event log.

    Constructed by :class:`~repro.core.server.HyRecServer` from the
    ``metrics_enabled`` / ``tracing`` / ``slow_request_ms`` config
    knobs and threaded through the cluster layers, so parent-side
    instruments, adopted worker spans, and operational events all
    aggregate in one place.
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        tracing: bool = False,
        slow_request_ms: float = 0.0,
        trace_capacity: int = 4096,
    ) -> None:
        self.registry = MetricsRegistry(enabled=metrics)
        self.tracer = Tracer(enabled=tracing, capacity=trace_capacity)
        self.events = EventLog()
        self.slow_request_ms = slow_request_ms
        self._requests_total = self.registry.counter("hyrec_requests_total")
        self._request_latency = self.registry.histogram(
            "hyrec_request_latency_seconds"
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """A fully inert instance (the default for bare components)."""
        return cls(metrics=False, tracing=False)

    @classmethod
    def from_config(cls, config) -> "Observability":
        """Build from any object carrying the three obs knobs."""
        return cls(
            metrics=getattr(config, "metrics_enabled", True),
            tracing=getattr(config, "tracing", False),
            slow_request_ms=getattr(config, "slow_request_ms", 0.0),
        )

    def note_request(self, user_id: int, seconds: float) -> None:
        """Book one finished request: latency histogram + slow log.

        The slow-request log is threshold-gated by ``slow_request_ms``
        (0 disables it) and independent of tracing: a slow request is
        recorded as a structured event and a warning even when span
        collection is off.
        """
        self._requests_total.inc()
        self._request_latency.observe(seconds)
        if self.slow_request_ms > 0 and seconds * 1e3 > self.slow_request_ms:
            ms = round(seconds * 1e3, 3)
            self.events.record("slow_request", user=user_id, ms=ms)
            logger.warning(
                "slow request: user=%d took %.3f ms (threshold %.3f ms)",
                user_id,
                ms,
                self.slow_request_ms,
            )
