"""Request-lifecycle tracing: spans, cross-process stitching, export.

One request through the sharded engine becomes one *trace*: a root
``request`` span with children covering every phase the coordinator
drives -- ``schedule`` (time in the batching window), ``scatter``,
``score`` with one ``shardN:score`` child per shard, ``merge``, and
``respond`` (the KNN update).  With ``executor="process"`` the
per-shard score spans are measured *inside the worker process*: the
trace context rides out on the ``JobSlices`` frame, the worker stamps
its measured span onto the ``Partials`` reply, and the parent adopts
it -- so the exported trace stitches both sides of the process
boundary under one trace id.

Timestamps are ``time.perf_counter_ns() // 1000`` microseconds.  On
Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide,
so parent and forked-worker timestamps share a timeline and the
stitched spans nest correctly in the export.

Exports are Chrome trace-event JSON (complete ``"ph": "X"`` events),
loadable directly in Perfetto / ``chrome://tracing``; see
``docs/observability.md`` for the how-to.

Span ids are salted with the low bits of the pid, so ids minted by a
worker process can never collide with the parent's within a trace.

Like the metrics registry, tracing is exactness-neutral: a disabled
tracer hands out a shared null span whose methods are no-ops, and no
trace content ever rides a frame unless the batch was stamped with a
live trace context.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "now_us",
]

#: ``(trace_id, span_id)`` -- everything a child (possibly in another
#: process) needs to attach to a span.
SpanContext = tuple[int, int]


def now_us() -> int:
    """Monotonic microseconds, comparable across forked processes."""
    return time.perf_counter_ns() // 1000


def salted_id(seq: int) -> int:
    """A process-unique id: low pid bits salt a local sequence number."""
    return ((os.getpid() & 0xFFFF) << 40) | (seq & 0xFFFFFFFFFF)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (immutable; the unit of export/adoption)."""

    trace_id: int
    span_id: int
    parent_id: int  # 0 for a trace's root span
    name: str
    start_us: int
    dur_us: int
    pid: int
    args: tuple[tuple[str, str], ...] = ()


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    ctx: SpanContext | None = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def annotate(self, **args: object) -> None:
        pass

    def finish(self) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; finish it explicitly or via the context manager.

    Entering the span as a context manager additionally *activates* it
    (pushes its context onto the tracer's thread-local stack) so
    nested ``tracer.span(...)`` calls parent to it implicitly.  A span
    used without ``with`` (the pre-allocated request roots of
    ``request_batch``) never touches the stack; activate it explicitly
    with :meth:`Tracer.activate` where implicit parenting is wanted.
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name", "_start_us", "_args", "_done", "_activated")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        args: tuple[tuple[str, str], ...],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._args = args
        self._start_us = now_us()
        self._done = False
        self._activated = False

    @property
    def ctx(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def annotate(self, **args: object) -> None:
        """Attach key/value annotations (stringified at export)."""
        self._args = self._args + tuple(
            (key, str(value)) for key, value in args.items()
        )

    def finish(self) -> None:
        """Close the span and hand the record to the tracer (idempotent)."""
        if self._done:
            return
        self._done = True
        self._tracer._record(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_us=self._start_us,
                dur_us=now_us() - self._start_us,
                pid=os.getpid(),
                args=self._args,
            )
        )

    def __enter__(self) -> "Span":
        self._tracer._push(self.ctx)
        self._activated = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._activated:
            self._tracer._pop()
            self._activated = False
        self.finish()


class Tracer:
    """Span factory + bounded in-memory trace buffer.

    The buffer is a ring (``capacity`` finished spans) so a long
    replay with tracing left on degrades to "most recent traces"
    instead of unbounded memory.  Thread safety: span creation and the
    active-span stack are thread-local; the finished-span ring is a
    ``deque`` with atomic appends, so pool threads and adopted worker
    spans interleave safely.
    """

    def __init__(self, enabled: bool = False, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._tls = threading.local()

    # --- span lifecycle -----------------------------------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return salted_id(self._seq)

    def _stack(self) -> list[SpanContext]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _push(self, ctx: SpanContext) -> None:
        self._stack().append(ctx)

    def _pop(self) -> None:
        self._stack().pop()

    def _record(self, record: SpanRecord) -> None:
        self._spans.append(record)

    @property
    def current(self) -> SpanContext | None:
        """The innermost active span's context on this thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(
        self,
        name: str,
        parent: SpanContext | None = None,
        **args: object,
    ) -> Span | _NullSpan:
        """Open a span explicitly (no stack interaction until entered).

        With ``parent=None`` this starts a *new trace* (the span is the
        root); pass a context to attach to an existing trace instead.
        """
        if not self.enabled:
            return _NULL_SPAN
        packed = tuple((key, str(value)) for key, value in args.items())
        if parent is None:
            trace_id = self._next_id()
            return Span(self, trace_id, self._next_id(), 0, name, packed)
        return Span(self, parent[0], self._next_id(), parent[1], name, packed)

    def span(
        self,
        name: str,
        parent: SpanContext | None = None,
        **args: object,
    ) -> Span | _NullSpan:
        """Open a child span, defaulting the parent to the active span.

        Meant for ``with`` use on the thread that owns the active
        stack; tasks running on pool threads must pass ``parent``
        explicitly (their stack is empty).
        """
        if not self.enabled:
            return _NULL_SPAN
        if parent is None:
            parent = self.current
        return self.begin(name, parent=parent, **args)

    def activate(self, span: Span | _NullSpan):
        """Context manager making ``span`` the implicit parent, without
        finishing it on exit (unlike entering the span itself)."""
        return _Activation(self, span)

    def add(
        self,
        name: str,
        parent: SpanContext,
        start_us: int,
        dur_us: int,
        **args: object,
    ) -> None:
        """Record a pre-measured span (e.g. scheduler queueing time)."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                trace_id=parent[0],
                span_id=self._next_id(),
                parent_id=parent[1],
                name=name,
                start_us=start_us,
                dur_us=dur_us,
                pid=os.getpid(),
                args=tuple((key, str(value)) for key, value in args.items()),
            )
        )

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        """Absorb spans measured elsewhere (worker processes)."""
        if not self.enabled:
            return
        for record in records:
            self._record(record)

    # --- introspection / export ---------------------------------------------

    @property
    def spans(self) -> list[SpanRecord]:
        """Finished spans, oldest first (bounded by ``capacity``)."""
        return list(self._spans)

    def trace_ids(self) -> set[int]:
        return {record.trace_id for record in self._spans}

    def traces(self) -> dict[int, list[SpanRecord]]:
        """Finished spans grouped by trace id (insertion order kept)."""
        grouped: dict[int, list[SpanRecord]] = {}
        for record in self._spans:
            grouped.setdefault(record.trace_id, []).append(record)
        return grouped

    def reset(self) -> None:
        self._spans.clear()

    def chrome_trace(self) -> dict:
        """The buffer as a Chrome trace-event JSON object.

        Complete (``"ph": "X"``) events; ``pid`` is the measuring
        process (workers show up as their own process track), ``tid``
        is the trace id so one request reads as one row per process.
        """
        events = []
        for record in self._spans:
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": record.start_us,
                    "dur": record.dur_us,
                    "pid": record.pid,
                    "tid": record.trace_id & 0xFFFFFFFF,
                    "args": dict(record.args)
                    | {
                        "trace_id": record.trace_id,
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns span count."""
        payload = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])


class _Activation:
    __slots__ = ("_tracer", "_span", "_live")

    def __init__(self, tracer: Tracer, span: Span | _NullSpan) -> None:
        self._tracer = tracer
        self._span = span
        self._live = False

    def __enter__(self) -> Span | _NullSpan:
        if isinstance(self._span, Span):
            self._tracer._push(self._span.ctx)
            self._live = True
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        if self._live:
            self._tracer._pop()
            self._live = False
