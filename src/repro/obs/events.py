"""Structured operational event records.

Counters say *how often*; events say *what happened*: supervisor
recoveries, shards declared down, rolling restarts, rebalancer bucket
migrations (epoch, bucket, duration), slow requests.  Each record is
an immutable ``kind`` plus stringified key/value fields, timestamped
on the monotonic clock, held in a bounded ring -- the in-process
stand-in for a structured log pipeline, and what ``repro.obs.dump``
prints after a replay.
"""

from __future__ import annotations

import threading
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass

from repro.obs.tracing import now_us

__all__ = ["EventLog", "EventRecord"]


@dataclass(frozen=True)
class EventRecord:
    """One structured event."""

    kind: str
    ts_us: int  # monotonic microseconds (perf_counter based)
    fields: tuple[tuple[str, str], ...] = ()

    def get(self, key: str, default: str | None = None) -> str | None:
        for field_key, value in self.fields:
            if field_key == key:
                return value
        return default


class EventLog:
    """Bounded, thread-safe ring of :class:`EventRecord`\\ s.

    Always on: operational events are rare (a recovery, a migration)
    and cheap, so unlike metrics/tracing they are not gated by a
    config knob -- a deployment that never recovers or migrates simply
    has an empty log.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._records: deque[EventRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, kind: str, **fields: object) -> EventRecord:
        event = EventRecord(
            kind=kind,
            ts_us=now_us(),
            fields=tuple((key, str(value)) for key, value in fields.items()),
        )
        with self._lock:
            self._records.append(event)
        return event

    def records(self, kind: str | None = None) -> list[EventRecord]:
        """All buffered events, oldest first; optionally one kind only."""
        with self._lock:
            records = list(self._records)
        if kind is None:
            return records
        return [record for record in records if record.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event count per kind (for quick assertions and dumps)."""
        with self._lock:
            return dict(_Counter(record.kind for record in self._records))

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
