"""CLI: replay a workload and dump the observability state.

    python -m repro.obs.dump --dataset ML1 --scale 0.02 --requests 64
    python -m repro.obs.dump --engine sharded --shards 4 \\
        --executor process --tracing --trace-out /tmp/hyrec-trace.json

Builds a :class:`~repro.core.system.HyRecSystem`, replays the chosen
Table 2 workload, serves a burst of online requests, then prints the
full Prometheus exposition followed by the structured event log.  With
``--tracing`` and ``--trace-out`` the collected spans are additionally
exported as Chrome trace-event JSON for Perfetto (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse

from repro.core.config import HyRecConfig
from repro.core.system import HyRecSystem
from repro.datasets import dataset_names, load_dataset
from repro.obs.exposition import metrics_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.dump",
        description="Replay a workload and dump metrics, events, and traces.",
    )
    parser.add_argument("--dataset", choices=dataset_names(), default="ML1")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine", choices=("python", "vectorized", "sharded"), default="sharded"
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    parser.add_argument(
        "--requests", type=int, default=32, help="online requests after the replay"
    )
    parser.add_argument(
        "--tracing", action="store_true", help="collect request-lifecycle spans"
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=0.0,
        help="slow-request log threshold (0 disables)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write collected spans as Chrome trace-event JSON to this path",
    )
    args = parser.parse_args(argv)

    config = HyRecConfig(
        engine=args.engine,
        num_shards=args.shards,
        executor=args.executor,
        tracing=args.tracing,
        slow_request_ms=args.slow_request_ms,
    )
    system = HyRecSystem(config, seed=args.seed)
    trace = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    system.replay(trace)

    users = system.server.profiles.users()
    now = max((rating.timestamp for rating in trace), default=0.0)
    for index in range(args.requests):
        system.request(users[index % len(users)], now=now)

    try:
        print(metrics_text(system.server), end="")
        print()
        print("# events")
        events = system.server.obs.events.records()
        if not events:
            print("(none)")
        for event in events:
            fields = " ".join(f"{key}={value}" for key, value in event.fields)
            print(f"{event.kind} {fields}".rstrip())

        if args.trace_out is not None:
            count = system.server.obs.tracer.export(args.trace_out)
            print(f"# wrote {count} spans to {args.trace_out}")
    finally:
        system.server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
