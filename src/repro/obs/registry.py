"""Low-overhead, thread-safe metrics: counters, gauges, histograms.

The registry is the cluster's single metrics facility (PR 7): the
ad-hoc counters ``ServerStats``/``ShardStats`` surface are *absorbed*
into it -- either sampled directly on the hot path (per-shard scoring
counters, request latency) or pulled at snapshot time through
registered collectors (server totals, wire meters), so the exposition
layer never keeps a second copy of a counter that could drift from the
source of truth.

Design constraints, in order:

* **Exactness-neutral** -- metrics observe, never participate: no RNG,
  no wire bytes, no ordering effects.  A deployment with
  ``metrics_enabled=False`` gets null instruments whose methods are
  no-ops, so the hot path is identical either way.
* **Low overhead** -- one dict lookup at *registration* time (handles
  are cached by callers), one short critical section per observation.
  Histograms use fixed log-spaced buckets resolved with ``bisect``.
* **Thread safety** -- instruments carry their own locks (shard tasks
  run on pool threads); the registry guards its instrument table with
  a creation lock.
* **Mergeable snapshots** -- :meth:`MetricsRegistry.snapshot` renders
  every instrument into immutable :class:`MetricSample` rows; samples
  from several registries (each worker process keeps its own) merge
  with :func:`merge_samples` -- counters/histograms sum, gauges keep
  the last value -- which is how per-shard worker snapshots aggregate
  over the wire into one cluster view.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "log_buckets",
    "merge_samples",
]

LabelSet = tuple[tuple[str, str], ...]


def log_buckets(
    start: float, factor: float = 2.0, count: int = 16
) -> tuple[float, ...]:
    """``count`` fixed log-spaced bucket upper bounds from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("log buckets need start > 0, factor > 1, count >= 1")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: 0.5 ms .. ~16 s, doubling: covers one request on every engine from
#: the in-process fast path to a cold 8-shard process batch.
DEFAULT_LATENCY_BUCKETS = log_buckets(0.0005, 2.0, 16)


@dataclass(frozen=True)
class MetricSample:
    """One instrument's state, immutable -- the unit of aggregation."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: LabelSet = ()
    #: Counter/gauge value (unused for histograms).
    value: float = 0.0
    #: Histogram observation count / sum over all observations.
    count: int = 0
    total: float = 0.0
    #: Histogram bucket upper bounds; ``bucket_counts`` has one extra
    #: trailing entry for the +Inf overflow bucket.
    bounds: tuple[float, ...] = ()
    bucket_counts: tuple[int, ...] = field(default=())


def _label_set(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """Monotone float counter (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> MetricSample:
        return MetricSample(
            name=self.name, kind="counter", labels=self.labels, value=self._value
        )


class Gauge:
    """Last-value instrument (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> MetricSample:
        return MetricSample(
            name=self.name, kind="gauge", labels=self.labels, value=self._value
        )


class Histogram:
    """Fixed-log-bucket histogram (thread-safe).

    ``bounds`` are upper bucket edges; an observation lands in the
    first bucket whose bound is >= the value, or the trailing +Inf
    bucket.  Count and sum are kept alongside, so mean latency and
    Prometheus ``_sum``/``_count`` series fall out for free.
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_total", "_count")

    def __init__(
        self, name: str, labels: LabelSet, bounds: tuple[float, ...]
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(bound) for bound in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._total = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._total += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def _sample(self) -> MetricSample:
        with self._lock:
            return MetricSample(
                name=self.name,
                kind="histogram",
                labels=self.labels,
                count=self._count,
                total=self._total,
                bounds=self.bounds,
                bucket_counts=tuple(self._counts),
            )


class _NullInstrument:
    """Shared no-op instrument returned by a disabled registry."""

    __slots__ = ()

    name = ""
    labels: LabelSet = ()
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()

#: Collector callback: returns extra samples computed at snapshot time
#: (reads an existing source-of-truth counter instead of duplicating
#: hot-path increments that could drift from it).
Collector = Callable[[], Iterable[MetricSample]]


class MetricsRegistry:
    """Instrument table + snapshot/merge machinery.

    Instruments are identified by ``(name, labels)``; asking for the
    same identity twice returns the same object, so callers cache the
    handle once and observe through it lock-free of the registry.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelSet], Counter | Gauge | Histogram] = {}
        self._collectors: list[Collector] = []

    def _get(self, name: str, labels: LabelSet, factory):
        with self._lock:
            instrument = self._metrics.get((name, labels))
            if instrument is None:
                instrument = factory()
                self._metrics[(name, labels)] = instrument
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _label_set(labels)
        instrument = self._get(name, key, lambda: Counter(name, key))
        if not isinstance(instrument, Counter):
            raise TypeError(f"{name} is already registered as another kind")
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _label_set(labels)
        instrument = self._get(name, key, lambda: Gauge(name, key))
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{name} is already registered as another kind")
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = _label_set(labels)
        bounds = buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
        instrument = self._get(name, key, lambda: Histogram(name, key, bounds))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{name} is already registered as another kind")
        return instrument

    def add_collector(self, collector: Collector) -> None:
        """Register a snapshot-time sample source (no-op when disabled)."""
        if self.enabled:
            with self._lock:
                self._collectors.append(collector)

    def remove_collector(self, collector: Collector) -> None:
        """Unsubscribe a collector (no-op if absent).

        Components with an explicit shutdown (the HTTP front door)
        must detach here, or a snapshot taken after their teardown
        would still pull samples from them -- and a rebuilt component
        on the same registry would double-report every series.
        """
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def snapshot(self) -> list[MetricSample]:
        """Every instrument (and collector) as sorted, immutable samples.

        Non-destructive: snapshotting never resets an instrument, so
        repeated polls see monotone counters, exactly like scraping a
        Prometheus endpoint.
        """
        if not self.enabled:
            return []
        with self._lock:
            instruments = list(self._metrics.values())
            collectors = list(self._collectors)
        samples = [instrument._sample() for instrument in instruments]
        for collector in collectors:
            samples.extend(collector())
        samples.sort(key=lambda sample: (sample.name, sample.labels))
        return samples

    def reset(self) -> None:
        """Drop every instrument's state (collectors stay registered).

        Callers holding instrument handles must re-acquire them; this
        exists for A/B harnesses (the obs-overhead bench) that want a
        clean slate without rebuilding the deployment.
        """
        with self._lock:
            self._metrics.clear()


def merge_samples(*groups: Iterable[MetricSample]) -> list[MetricSample]:
    """Aggregate sample groups from several registries into one view.

    Counters and histograms (with identical bounds) sum; gauges keep
    the last group's value.  This is exact for the cluster topology --
    each worker labels its samples with its shard, so cross-registry
    collisions only happen for deliberately cluster-wide series.
    """
    merged: dict[tuple[str, LabelSet], MetricSample] = {}
    for group in groups:
        for sample in group:
            key = (sample.name, sample.labels)
            seen = merged.get(key)
            if seen is None:
                merged[key] = sample
                continue
            if seen.kind != sample.kind:
                raise ValueError(
                    f"metric {sample.name} merged across kinds "
                    f"({seen.kind} vs {sample.kind})"
                )
            if sample.kind == "counter":
                merged[key] = MetricSample(
                    name=sample.name,
                    kind="counter",
                    labels=sample.labels,
                    value=seen.value + sample.value,
                )
            elif sample.kind == "gauge":
                merged[key] = sample
            else:
                if seen.bounds != sample.bounds:
                    raise ValueError(
                        f"histogram {sample.name} merged across bucket layouts"
                    )
                merged[key] = MetricSample(
                    name=sample.name,
                    kind="histogram",
                    labels=sample.labels,
                    count=seen.count + sample.count,
                    total=seen.total + sample.total,
                    bounds=sample.bounds,
                    bucket_counts=tuple(
                        a + b
                        for a, b in zip(seen.bucket_counts, sample.bucket_counts)
                    ),
                )
    return sorted(merged.values(), key=lambda sample: (sample.name, sample.labels))
