"""Exposition: Prometheus text rendering and wire-sample conversion.

Two jobs live here:

* :func:`render_prometheus` turns :class:`~repro.obs.registry.MetricSample`
  rows into the Prometheus text exposition format (``# TYPE`` headers,
  cumulative ``le`` histogram buckets, ``_sum``/``_count`` series) --
  what ``GET /metrics`` on :mod:`repro.web` serves.
* :func:`sample_to_wire_parts` / :func:`sample_from_wire` convert
  between registry samples and the flat ``(kind, name, labels,
  values, bounds)`` shape the protocol-v4 ``MetricsSnapshot`` frame
  carries, so worker-process registries aggregate over the wire
  without this module ever importing the transport (the conversion is
  duck-typed on the wire sample's fields; the frame classes live in
  :mod:`repro.cluster.transport`).

:func:`server_samples` is the one-stop aggregation for a deployment:
the server registry's snapshot (hot-path instruments plus collector
samples) merged with every worker's shipped snapshot.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.registry import LabelSet, MetricSample, merge_samples

__all__ = [
    "metrics_text",
    "render_prometheus",
    "sample_from_wire",
    "sample_to_wire_parts",
    "server_samples",
]

_KIND_CODES = ("counter", "gauge", "histogram")


# --- wire conversion (MetricsSnapshot payloads) -----------------------------


def sample_to_wire_parts(
    sample: MetricSample,
) -> tuple[int, str, str, list[float], list[float]]:
    """Flatten one sample for a ``MetricsSnapshot`` frame.

    Returns ``(kind code, name, labels string, values, bounds)``;
    histogram values are ``[count, sum, *bucket_counts]`` with the
    bucket bounds shipped alongside so the parent needs no shared
    bucket config.
    """
    kind = _KIND_CODES.index(sample.kind)
    labels = ",".join(f"{key}={value}" for key, value in sample.labels)
    if sample.kind == "histogram":
        values = [float(sample.count), sample.total] + [
            float(count) for count in sample.bucket_counts
        ]
        return kind, sample.name, labels, values, list(sample.bounds)
    return kind, sample.name, labels, [sample.value], []


def _parse_labels(labels: str) -> LabelSet:
    if not labels:
        return ()
    pairs = []
    for part in labels.split(","):
        key, _, value = part.partition("=")
        pairs.append((key, value))
    return tuple(pairs)


def sample_from_wire(wire) -> MetricSample:
    """Rebuild a :class:`MetricSample` from a wire sample (duck-typed).

    ``wire`` needs ``kind``/``name``/``labels``/``values``/``bounds``
    fields -- the shape of ``repro.cluster.transport.WireSample``.
    """
    kind = _KIND_CODES[int(wire.kind)]
    labels = _parse_labels(wire.labels)
    values = [float(value) for value in wire.values]
    if kind == "histogram":
        if len(values) < 2:
            raise ValueError(f"malformed histogram wire sample {wire.name}")
        return MetricSample(
            name=wire.name,
            kind=kind,
            labels=labels,
            count=int(values[0]),
            total=values[1],
            bounds=tuple(float(bound) for bound in wire.bounds),
            bucket_counts=tuple(int(count) for count in values[2:]),
        )
    return MetricSample(
        name=wire.name, kind=kind, labels=labels, value=values[0] if values else 0.0
    )


# --- Prometheus text format -------------------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


def render_prometheus(samples: Iterable[MetricSample]) -> str:
    """Samples as Prometheus text exposition (one ``# TYPE`` per name)."""
    lines: list[str] = []
    typed: set[str] = set()
    for sample in sorted(samples, key=lambda s: (s.name, s.labels)):
        if sample.name not in typed:
            typed.add(sample.name)
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind in ("counter", "gauge"):
            lines.append(
                f"{sample.name}{_format_labels(sample.labels)} "
                f"{_format_value(sample.value)}"
            )
            continue
        cumulative = 0
        for bound, count in zip(
            tuple(sample.bounds) + (float("inf"),), sample.bucket_counts
        ):
            cumulative += count
            le = "+Inf" if bound == float("inf") else _format_value(bound)
            labels = sample.labels + (("le", le),)
            lines.append(
                f"{sample.name}_bucket{_format_labels(labels)} {cumulative}"
            )
        label_text = _format_labels(sample.labels)
        lines.append(f"{sample.name}_sum{label_text} {_format_value(sample.total)}")
        lines.append(f"{sample.name}_count{label_text} {sample.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# --- deployment-level aggregation -------------------------------------------


def server_samples(server) -> list[MetricSample]:
    """One merged sample list for a ``HyRecServer`` deployment.

    The server registry's snapshot (hot-path instruments + collectors)
    merged with the cluster's worker-side snapshots, fetched over the
    wire when the executor hosts shards (``executor="process"``) --
    in-process executors sample straight into the server registry, so
    their shard series are already in the snapshot.
    """
    obs = getattr(server, "obs", None)
    groups: list[Sequence[MetricSample]] = []
    if obs is not None:
        groups.append(obs.registry.snapshot())
    cluster = getattr(server, "cluster", None)
    if cluster is not None:
        groups.append(cluster.metrics_samples())
    return merge_samples(*groups)


def metrics_text(server) -> str:
    """The ``/metrics`` response body for a ``HyRecServer``."""
    return render_prometheus(server_samples(server))
