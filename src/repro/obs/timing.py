"""Latency summaries -- the repo's one timing facility.

Lives in the observability layer (PR 7) so there is exactly one place
that turns raw latency samples into aggregate statistics: the
evaluation figures (``repro.eval``), the benchmarks, and the obs dump
all summarize through here.  ``repro.metrics.timing`` remains as a
deprecated import shim.

For live instruments prefer a
:class:`repro.obs.registry.Histogram` -- it is bounded and mergeable
across processes; :func:`summarize_latencies` is for offline sample
lists where exact percentiles are wanted.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

__all__ = ["LatencySummary", "nearest_rank", "summarize_latencies"]


def nearest_rank(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    Returns the smallest sample value such that at least ``fraction``
    of the sample is at or below it: index ``ceil(fraction * n) - 1``.
    The previously used ``int(fraction * n)`` lands one past the
    nearest rank whenever ``fraction * n`` is an integer -- for 20
    samples it reported the maximum as the p95 instead of the 19th
    value.  Empty samples summarize to 0.0.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    index = max(math.ceil(fraction * n) - 1, 0)
    return sorted_values[min(index, n - 1)]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics of a latency sample, in seconds."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def p95_ms(self) -> float:
        return self.p95 * 1e3


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summarize a non-empty sequence of latencies."""
    if not samples:
        raise ValueError("cannot summarize an empty latency sample")
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        median=ordered[len(ordered) // 2],
        p95=nearest_rank(ordered, 0.95),
        maximum=ordered[-1],
    )
