"""Latency summaries -- the repo's one timing facility.

Lives in the observability layer (PR 7) so there is exactly one place
that turns raw latency samples into aggregate statistics: the
evaluation figures (``repro.eval``), the benchmarks, and the obs dump
all summarize through here.  ``repro.metrics.timing`` remains as a
deprecated import shim.

For live instruments prefer a
:class:`repro.obs.registry.Histogram` -- it is bounded and mergeable
across processes; :func:`summarize_latencies` is for offline sample
lists where exact percentiles are wanted.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics of a latency sample, in seconds."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def p95_ms(self) -> float:
        return self.p95 * 1e3


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summarize a non-empty sequence of latencies."""
    if not samples:
        raise ValueError("cannot summarize an empty latency sample")
    ordered = sorted(samples)
    p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
    return LatencySummary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        median=ordered[len(ordered) // 2],
        p95=ordered[p95_index],
        maximum=ordered[-1],
    )
