"""Request coalescing in front of the cluster coordinator.

:class:`BatchScheduler` is the admission point concurrent requests go
through: jobs accumulate in a window and are dispatched to
:meth:`~repro.cluster.coordinator.ClusterCoordinator.process_batch`
together, so the per-shard fixed costs (task hand-off, CSR gather,
scratch marking) amortize over the whole window instead of being paid
per request.  The window closes when ``batch_window`` jobs are pending
(or on an explicit :meth:`flush` -- the in-process stand-in for a
timer expiring with a partially-filled window).

Batch composition never changes results: every job is scored against
the matrix state at dispatch, and per-job outputs are independent, so
a window of 1 and a window of 64 produce identical
:class:`~repro.core.jobs.JobResult`\\ s for the same table state.

Routing epochs: a job is *scattered* (split by the placement map) at
dispatch, not at submission, so the open window is the only place a
request could straddle a bucket migration.  The
:class:`~repro.cluster.rebalance.ShardRebalancer` therefore drains
this window (one :meth:`BatchScheduler.flush`) before any migration --
after which dispatch and map are in agreement again, and the scattered
frames carry the new epoch.  Because batch composition never changes
results, the forced early dispatch is invisible in every output.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.coordinator import ClusterCoordinator
from repro.core.jobs import JobResult
from repro.engine.jobs import EngineJob
from repro.obs.tracing import now_us


class BatchTicket:
    """Handle to one submitted job's eventual result."""

    __slots__ = ("_scheduler", "_result", "_done")

    def __init__(self, scheduler: "BatchScheduler") -> None:
        self._scheduler = scheduler
        self._result: JobResult | None = None
        self._done = False

    def _resolve(self, result: JobResult) -> None:
        self._result = result
        self._done = True

    @property
    def done(self) -> bool:
        """Whether the job's window has been dispatched and resolved."""
        return self._done

    def result(self) -> JobResult:
        """The job's result, flushing the open window if still pending.

        Invariant: the returned result is the one the job would have
        received from ``ClusterCoordinator.process_engine_job`` against
        the table state at dispatch time -- window membership never
        changes a result, only *when* the shared kernel invocation
        happens.
        """
        if not self._done:
            self._scheduler.flush()
        assert self._result is not None
        return self._result


class BatchScheduler:
    """Coalesces submitted jobs into coordinator batches."""

    def __init__(
        self, coordinator: ClusterCoordinator, batch_window: int = 16
    ) -> None:
        if batch_window < 1:
            raise ValueError(
                f"batch_window must be at least 1, got {batch_window}"
            )
        self.coordinator = coordinator
        self.batch_window = batch_window
        #: ``(job, ticket, queued_us)`` -- the timestamp is 0 unless
        #: the job carries a trace context, in which case flush() turns
        #: the window wait into a ``schedule`` span under its root.
        self._pending: list[tuple[EngineJob, BatchTicket, int]] = []
        self.batches_dispatched = 0
        self.jobs_dispatched = 0
        self.largest_batch = 0

    @property
    def pending(self) -> int:
        """Jobs waiting in the open window (not yet dispatched)."""
        return len(self._pending)

    def submit(self, job: EngineJob) -> BatchTicket:
        """Queue one job; dispatches when the window fills.

        Ordering invariants: jobs dispatch in submission order within
        their window, and windows dispatch in submission order, so the
        coordinator sees the exact request arrival sequence.  A job is
        scored against the table state at *dispatch*, so writes that
        land while it waits in an open window are visible to it --
        identical to the request having arrived at dispatch time.
        """
        ticket = BatchTicket(self)
        tracer = self.coordinator.obs.tracer
        queued_us = (
            now_us() if tracer.enabled and job.trace_ctx is not None else 0
        )
        self._pending.append((job, ticket, queued_us))
        if len(self._pending) >= self.batch_window:
            self.flush()
        return ticket

    def flush(self) -> None:
        """Dispatch the open window (no-op when empty).

        Exactness invariant: dispatching a partial window is never an
        approximation -- each job's result equals its solo
        ``process_engine_job`` result for the same table state; the
        window only decides how many jobs share one batched kernel
        invocation per shard.  Every submitted ticket in the window is
        resolved before this returns.
        """
        if not self._pending:
            return
        window, self._pending = self._pending, []
        tracer = self.coordinator.obs.tracer
        if tracer.enabled:
            dispatch_us = now_us()
            for job, _, queued_us in window:
                if queued_us and job.trace_ctx is not None:
                    tracer.add(
                        "schedule",
                        parent=job.trace_ctx,
                        start_us=queued_us,
                        dur_us=dispatch_us - queued_us,
                        window=len(window),
                    )
        results = self.coordinator.process_batch([job for job, _, _ in window])
        for (_, ticket, _), result in zip(window, results):
            ticket._resolve(result)
        self.batches_dispatched += 1
        self.jobs_dispatched += len(window)
        self.largest_batch = max(self.largest_batch, len(window))

    def run(self, jobs: Sequence[EngineJob]) -> list[JobResult]:
        """Submit ``jobs`` through the window machinery; return results.

        Jobs beyond a full window dispatch mid-stream exactly as a
        closed-loop client population would force them to.  Results
        are returned in ``jobs`` order (tickets preserve submission
        order even when the jobs spanned several windows).
        """
        tickets = [self.submit(job) for job in jobs]
        self.flush()
        return [ticket.result() for ticket in tickets]
