"""Pluggable shard-task executors for the cluster coordinator.

A batch of requests decomposes into one independent task per shard
(each task touches only its own shard's matrix, so tasks never share
mutable state).  The executor decides how those tasks run:

* :class:`SerialExecutor` -- in shard order on the calling thread.
  Fully deterministic, zero overhead; the right choice for tests,
  replays, and debugging.
* :class:`ThreadPoolExecutor` -- a persistent worker pool.  The numpy
  kernels release the GIL for the heavy gathers/bincounts, so shard
  tasks genuinely overlap on multi-core hosts.
* :class:`~repro.cluster.process_executor.ProcessExecutor` -- one
  long-lived worker *process* per shard, each hosting its shard's
  matrix arena, fed by the serialized shard protocol
  (:mod:`repro.cluster.transport`).  Whole interpreters run in
  parallel, so shard scoring scales with cores instead of with
  GIL-released kernel time.  It hosts shard state itself
  (``hosts_shards = True``), so the coordinator hands it serialized
  job slices rather than closures.

All three return results in shard order, so the coordinator's merges
-- and therefore the engine's outputs -- are identical under every
executor.

Elasticity: shard count is no longer fixed at construction.  The
in-process executors need no participation -- the coordinator's
:class:`~repro.cluster.sharded_matrix.ShardedLikedMatrix` appends or
drops shard matrices itself and simply hands the executor more or
fewer tasks per batch.  The process executor hosts shard state, so it
implements the topology surface directly (``add_shard`` spawns and
handshakes a late joiner, ``remove_shard`` drains and retires the
last worker, ``split_buckets`` refines the bucket space over the
wire); the coordinator detects the surface with ``getattr``, exactly
like ``rolling_restart``.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Protocol, Sequence, TypeVar

T = TypeVar("T")

#: Executor names accepted by :func:`make_executor` /
#: ``HyRecConfig.executor``.
EXECUTOR_NAMES = ("serial", "thread", "process")


class ShardExecutor(Protocol):
    """Runs independent shard tasks; preserves submission order."""

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Run shard tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]

    def close(self) -> None:
        pass


class ThreadPoolExecutor:
    """Run shard tasks on a persistent thread pool."""

    def __init__(self, workers: int | None = None) -> None:
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard"
        )

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        if len(tasks) <= 1:  # skip pool hand-off for degenerate fan-outs
            return [task() for task in tasks]
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(
    name: str,
    workers: int | None = None,
    *,
    ipc_write_batch: int = 1024,
    truncate_partials: bool = True,
    worker_timeout: float = 5.0,
    max_respawns: int = 3,
    retry_backoff: float = 0.05,
    degraded_reads: bool = False,
    obs=None,
    memory=None,
) -> ShardExecutor:
    """Build the executor selected by ``HyRecConfig.executor``.

    The keyword knobs configure the process executor's IPC behavior
    (write-buffer flush threshold, shard-local top-K truncation of
    shipped partials), its supervision policy (socket deadline,
    respawn budget/backoff, degraded reads), the shared
    :class:`~repro.obs.Observability` its workers report into, and the
    :class:`~repro.engine.liked_matrix.MemoryPolicy` each worker
    applies to its shard matrix (shipped in the v6 Hello); all of them
    are ignored by the in-process executors, which have no workers to
    lose (their shard metrics sample through the coordinator into the
    shared registry directly, and the coordinator hands the memory
    policy to its in-process :class:`ShardedLikedMatrix` itself).
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadPoolExecutor(workers)
    if name == "process":
        # Imported lazily: the process executor pulls in transport +
        # worker machinery that serial/thread deployments never need.
        from repro.cluster.process_executor import ProcessExecutor

        return ProcessExecutor(
            workers,
            ipc_write_batch=ipc_write_batch,
            truncate_partials=truncate_partials,
            worker_timeout=worker_timeout,
            max_respawns=max_respawns,
            retry_backoff=retry_backoff,
            degraded_reads=degraded_reads,
            obs=obs,
            memory=memory,
        )
    raise ValueError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
