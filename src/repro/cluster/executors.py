"""Pluggable shard-task executors for the cluster coordinator.

A batch of requests decomposes into one independent task per shard
(each task touches only its own shard's matrix, so tasks never share
mutable state).  The executor decides how those tasks run:

* :class:`SerialExecutor` -- in shard order on the calling thread.
  Fully deterministic, zero overhead; the right choice for tests,
  replays, and debugging.
* :class:`ThreadPoolExecutor` -- a persistent worker pool.  The numpy
  kernels release the GIL for the heavy gathers/bincounts, so shard
  tasks genuinely overlap on multi-core hosts.

Both return results in task-submission order, so the coordinator's
merges -- and therefore the engine's outputs -- are identical under
either executor.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Protocol, Sequence, TypeVar

T = TypeVar("T")

#: Executor names accepted by :func:`make_executor` /
#: ``HyRecConfig.executor``.
EXECUTOR_NAMES = ("serial", "thread")


class ShardExecutor(Protocol):
    """Runs independent shard tasks; preserves submission order."""

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """Run shard tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]

    def close(self) -> None:
        pass


class ThreadPoolExecutor:
    """Run shard tasks on a persistent thread pool."""

    def __init__(self, workers: int | None = None) -> None:
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard"
        )

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        if len(tasks) <= 1:  # skip pool hand-off for degenerate fan-outs
            return [task() for task in tasks]
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(name: str, workers: int | None = None) -> ShardExecutor:
    """Build the executor selected by ``HyRecConfig.executor``."""
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadPoolExecutor(workers)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
