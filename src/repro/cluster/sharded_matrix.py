"""A :class:`LikedMatrix` partitioned into hash-placed user shards.

:class:`ShardedLikedMatrix` carries the vectorized engine's CSR/CSC
structure across N independent shards: each shard is a plain
:class:`~repro.engine.liked_matrix.LikedMatrix` that materializes only
the rows of the users it owns (ownership is decided by a
:class:`~repro.cluster.placement.ShardPlacement` hash of the user id).

Writes stay incremental: the sharded matrix subscribes *once* to the
shared :class:`~repro.core.tables.ProfileTable` and routes every write
to the owning shard's :meth:`~repro.engine.liked_matrix.LikedMatrix.apply_write`,
so the non-owning N-1 shards never touch the write at all.  All
shards intern items in *one shared*
:class:`~repro.engine.liked_matrix.ItemVocabulary`: a column index
means the same item cluster-wide, which is what lets the coordinator
map a query to columns once per request and merge per-shard
popularity counts with a single histogram.  (A cross-process
deployment would replicate this dictionary or shard it separately --
items, unlike users, are shared read-mostly state.)

The per-shard stats (:class:`ShardStats`) expose the load and churn
picture an operator would watch: materialized rows, live/garbage arena
entries, routed writes, and compaction count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.placement import ShardPlacement, rendezvous_owner
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import ItemVocabulary, LikedMatrix, MemoryPolicy


@dataclass(frozen=True)
class ShardStats:
    """Load/churn counters for one shard.

    For the process executor these are read over the wire from the
    worker that hosts the shard; ``pid`` then identifies that worker
    process (it stays 0 for in-process shards).  Together with
    ``users``/``writes`` this is the per-worker load signal the
    rebalancing placement map consumes.

    The liveness fields are parent-side supervisor knowledge (workers
    cannot report their own death): ``alive`` is False for a shard
    whose worker is down, ``restarts`` counts its respawns, and
    ``last_ping_ms`` is the latest v3 liveness probe's round trip
    (-1.0 before the first probe).  In-process shards are trivially
    alive and never restart.
    """

    shard: int
    users: int  # rows materialized in this shard's arena
    arena_live: int  # live liked-item entries
    arena_garbage: int  # superseded entries awaiting compaction
    writes: int  # profile writes routed to this shard
    compactions: int  # arena compactions performed
    pid: int = 0  # hosting worker process (0: in-process shard)
    alive: bool = True  # worker answering (always True in-process)
    restarts: int = 0  # respawns of this shard's worker
    last_ping_ms: float = -1.0  # last liveness probe RTT (-1: never)
    evictions: int = 0  # rows dropped by the memory policy
    arena_capacity: int = 0  # allocated arena cells (0: not reported)


class ShardedLikedMatrix:
    """N hash-partitioned liked matrices behind one write router."""

    def __init__(
        self,
        table: ProfileTable,
        num_shards: int,
        placement: ShardPlacement | None = None,
        memory: MemoryPolicy | None = None,
    ) -> None:
        self._table = table
        self.placement = (
            placement if placement is not None else ShardPlacement(num_shards)
        )
        if self.placement.num_shards != num_shards:
            raise ValueError("placement and num_shards disagree")
        #: Bounded-memory policy applied to every shard.  The row cap
        #: is *per shard* (each shard evicts its own LRU tail); an
        #: evicted row warm-rebuilds from the shared table on its next
        #: read, which also covers rows arriving via bucket migration.
        self.memory = memory
        #: One vocabulary for all shards: column indices agree across
        #: the cluster, so queries map to columns once per request and
        #: per-shard popularity counts merge with a single histogram.
        self.vocab = ItemVocabulary()
        self.shards: list[LikedMatrix] = [
            LikedMatrix(
                table,
                subscribe=False,
                row_filter=self._owner_filter(shard),
                vocab=self.vocab,
                memory=memory,
            )
            for shard in range(num_shards)
        ]
        #: Serializes write routing against topology changes (grow,
        #: shrink, migrate, split) when those run off-thread.  Held
        #: only for the row-local apply/refresh work -- microseconds,
        #: never across anything blocking.
        self._lock = threading.RLock()
        table.add_listener(self._route_write)

    def _owner_filter(self, shard: int):
        placement = self.placement
        return lambda user_id: placement.shard_of(user_id) == shard

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # --- write routing ------------------------------------------------------

    def _route_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable hook: deliver the write to the owning shard."""
        with self._lock:
            self.shards[self.placement.shard_of(user_id)].apply_write(
                user_id, item, value, previous
            )

    # --- rebalancing --------------------------------------------------------

    def migrate_bucket(self, bucket: int, new_owner: int) -> int:
        """Hand one placement bucket to ``new_owner``; returns the version.

        The in-process handoff is the degenerate form of the
        cross-process one: both shards read the *shared* table, so no
        rows travel -- the map bump moves ownership, the old shard's
        rows for the moved users are invalidated (their arena segments
        become garbage, postings rebuild without them), and the new
        shard materializes them lazily from the table on first read,
        exactly as it builds any pre-existing row.  Results are
        therefore bit-for-bit unchanged across the move; only *which*
        shard answers for the bucket changes.
        """
        with self._lock:
            old_owner = self.placement.validate_move(bucket, new_owner)
            user_ids = np.fromiter(
                self._table, dtype=np.int64, count=len(self._table)
            )
            moved = user_ids[
                self.placement.buckets_of(user_ids) == bucket
            ].tolist()
            version = self.placement.move_bucket(bucket, new_owner)
            for user_id in moved:
                # Old shard: drop the row and dirty the postings (they
                # contain the moved users).  New shard: nothing was
                # materialized, but its postings must also rebuild to
                # include the arrivals under the live owner filter.
                self.shards[old_owner].refresh(user_id)
                self.shards[new_owner].refresh(user_id)
            return version

    # --- elastic topology ---------------------------------------------------

    def add_shard(self, migrate: bool = True) -> int:
        """Grow by one shard; returns the new shard's index.

        The in-process join is free: the new :class:`LikedMatrix`
        shares the table and vocabulary and materializes rows lazily,
        so it starts empty *and correct* -- it owns no buckets until
        migrations hand it some.  With ``migrate=True`` its rendezvous
        share moves in immediately (each move an epoch-bumped
        :meth:`migrate_bucket`).
        """
        with self._lock:
            shard = self.placement.add_shard()
            self.shards.append(
                LikedMatrix(
                    self._table,
                    subscribe=False,
                    row_filter=self._owner_filter(shard),
                    vocab=self.vocab,
                    memory=self.memory,
                )
            )
        if migrate:
            for bucket in self.placement.rendezvous_share(shard).tolist():
                if self.placement.owner_of(bucket) != shard:
                    self.migrate_bucket(int(bucket), shard)
        return shard

    def remove_shard(self) -> int:
        """Drain and retire the last shard; returns the retired index.

        Every bucket it owns is first migrated to its rendezvous
        winner among the survivors, then the (now rowless) matrix is
        dropped and the placement shrinks.
        """
        if self.placement.num_shards < 2:
            raise ValueError("cannot remove the only shard")
        shard = self.placement.num_shards - 1
        survivors = self.placement.num_shards - 1
        for bucket in self.placement.buckets_owned_by(shard).tolist():
            self.migrate_bucket(
                int(bucket), rendezvous_owner(int(bucket), survivors)
            )
        with self._lock:
            self.placement.remove_last_shard()
            self.shards.pop()
        return shard

    def split_buckets(self, factor: int = 2) -> int:
        """Refine the bucket space by ``factor``; returns the version.

        Pure metadata for the in-process matrix: the modular bucket
        hash keeps every user's owner across the split (see
        ``ShardPlacement.split_buckets``), so no row or posting needs
        a refresh -- the hot bucket's cohabitants merely become
        separately movable from here on.
        """
        with self._lock:
            return self.placement.split_buckets(factor)

    # --- partitioning -------------------------------------------------------

    def shard_of(self, user_id: int) -> int:
        """Owning shard of ``user_id``."""
        return self.placement.shard_of(user_id)

    def partition(
        self, user_ids: Sequence[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a candidate list by owning shard.

        Delegates to :meth:`ShardPlacement.partition`; see there for
        the ``(ids, positions)`` contract the cross-shard merges rely
        on.
        """
        return self.placement.partition(user_ids)

    # --- stats --------------------------------------------------------------

    def stats(self) -> tuple[ShardStats, ...]:
        """Per-shard load and churn counters."""
        return tuple(
            ShardStats(
                shard=index,
                users=matrix.num_rows,
                arena_live=matrix.arena_live,
                arena_garbage=matrix.arena_garbage,
                writes=matrix.writes_applied,
                compactions=matrix.compactions,
                evictions=matrix.evictions,
                arena_capacity=matrix.arena_capacity,
            )
            for index, matrix in enumerate(self.shards)
        )

    def memory_stats(self) -> dict[str, int | str]:
        """Cluster-wide memory accounting, summed over the shards."""
        totals: dict[str, int | str] = {}
        for matrix in self.shards:
            for key, value in matrix.memory_stats().items():
                if isinstance(value, str):
                    totals[key] = value
                else:
                    totals[key] = int(totals.get(key, 0)) + value
        return totals
