"""Long-lived worker processes behind the executor interface.

:class:`ProcessExecutor` is the cross-process back-end of the sharded
engine: it owns one forked worker process per shard (each hosting its
shard's :class:`~repro.engine.liked_matrix.LikedMatrix` arena, see
:mod:`repro.cluster.worker`) and speaks the serialized shard protocol
(:mod:`repro.cluster.transport`) over a private socket pair per
worker.  Where the thread-pool executor overlaps shard tasks only
while the numpy kernels release the GIL, worker processes run whole
Python interpreters in parallel -- real multi-core scaling for the
scatter/score phase.

Parent-side responsibilities:

* **Master vocabulary** -- the parent keeps the authoritative
  :class:`~repro.engine.liked_matrix.ItemVocabulary` (queries are
  projected to columns here, and merged popularity columns resolve to
  item ids here) and replicates it to every worker via append-only
  :class:`~repro.cluster.transport.VocabDelta` frames, flushed before
  any frame that could reference the new columns.
* **Write routing** -- a :class:`~repro.core.tables.ProfileTable`
  listener buffers each write for its owning shard (placement hash)
  and flushes buffers as :class:`~repro.cluster.transport.WriteBatch`
  frames lazily: before job dispatch, before stats reads, at
  ``ipc_write_batch`` buffered writes, and at shutdown.  Reads only
  ever happen through job frames, so deferred delivery is invisible.
* **Lifecycle** -- ``attach`` forks the workers and replays the
  table's pre-existing profiles as ordinary write frames (the
  *warm start*: a worker's state is always exactly "every write of my
  users, in order", no matter when it was born); ``close`` sends
  :class:`~repro.cluster.transport.Shutdown`, joins, and falls back to
  terminate for a wedged worker.  Workers are daemonic, so an
  abandoned parent cannot leak them.

The executor deliberately does *not* implement the in-process
``run(tasks)`` call: shard state lives in the workers, so the
coordinator hands it serialized job slices (:meth:`run_slices`)
instead of closures.
"""

from __future__ import annotations

import multiprocessing
import socket
from typing import Sequence

import numpy as np

from repro.cluster.placement import ShardPlacement
from repro.cluster.scoring import ShardSlice, WirePartial
from repro.cluster.sharded_matrix import ShardStats
from repro.cluster.transport import (
    Channel,
    HandoffData,
    HandoffRequest,
    Hello,
    JobSlices,
    MapUpdate,
    Partials,
    Ready,
    Shutdown,
    StatsReply,
    StatsRequest,
    TransportError,
    VocabDelta,
    WriteBatch,
)
from repro.cluster.worker import worker_main
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import ItemVocabulary


class ProcessExecutor:
    """N worker processes, one per shard, fed by the shard protocol."""

    #: Tells the coordinator this executor *hosts* shard state (fed by
    #: serialized frames) instead of running closures over in-process
    #: shards; see :class:`repro.cluster.coordinator.ClusterCoordinator`.
    hosts_shards = True

    def __init__(
        self,
        workers: int | None = None,
        *,
        ipc_write_batch: int = 1024,
        truncate_partials: bool = True,
    ) -> None:
        """
        Args:
            workers: Accepted for :func:`make_executor` signature
                compatibility; the process executor always runs one
                worker per shard (shard state is not divisible), so
                this is ignored.
            ipc_write_batch: Buffered writes per worker that trigger an
                eager flush; smaller values trade syscalls for lower
                write-visibility latency (results never change --
                reads always flush first).
            truncate_partials: Ship only each shard's local top-``k``
                scored candidates (exactness-preserving; see
                :func:`repro.cluster.scoring.truncate_topk`).  ``False``
                ships full partials -- useful for measuring what the
                truncation saves.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "executor='process' needs the fork start method "
                "(POSIX); use 'thread' on this platform"
            )
        del workers  # one process per shard, always
        if ipc_write_batch < 1:
            raise ValueError(
                f"ipc_write_batch must be at least 1, got {ipc_write_batch}"
            )
        self._ctx = multiprocessing.get_context("fork")
        self.ipc_write_batch = ipc_write_batch
        self.truncate_partials = truncate_partials
        self.vocab = ItemVocabulary()
        self.placement: ShardPlacement | None = None
        self._table: ProfileTable | None = None
        self._channels: list[Channel] = []
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._write_buffers: list[tuple[list[int], list[int], list[float]]] = []
        self._vocab_synced: list[int] = []
        self._next_batch_id = 0
        self._closed = False

    # --- lifecycle ----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        if self.placement is None:
            raise RuntimeError("executor not attached to a cluster yet")
        return self.placement.num_shards

    def attach(
        self,
        table: ProfileTable,
        num_shards: int,
        placement: ShardPlacement | None = None,
    ) -> "ProcessExecutor":
        """Spawn the workers and subscribe to the table's write stream.

        Called once by the coordinator.  Profiles already in ``table``
        are warm-started: replayed to their owning workers as ordinary
        write frames (current value per rated item -- bit-equivalent
        to the write history for every liked/rated-set read), so a
        cluster attached to a populated table answers exactly like one
        that saw every write live.
        """
        if self.placement is not None:
            raise RuntimeError("ProcessExecutor is already attached")
        if self._closed:
            raise RuntimeError("ProcessExecutor is closed")
        if placement is not None and placement.num_shards != num_shards:
            # Validated before any state mutates: a failed attach must
            # leave the executor attachable/closable, not half-built.
            raise ValueError("placement and num_shards disagree")
        self.placement = (
            placement if placement is not None else ShardPlacement(num_shards)
        )
        self._table = table
        self._write_buffers = [([], [], []) for _ in range(num_shards)]
        self._vocab_synced = [0] * num_shards

        try:
            parent_socks: list[socket.socket] = []
            for shard in range(num_shards):
                parent_sock, child_sock = socket.socketpair()
                # The child must close every parent-side fd it inherits
                # across the fork (earlier shards' and its own):
                # otherwise it holds both ends of the pairs and the
                # workers' clean-EOF exit (parent gone without a
                # Shutdown frame) could never fire.
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(child_sock, shard, tuple(parent_socks + [parent_sock])),
                    name=f"hyrec-shard-{shard}",
                    daemon=True,
                )
                proc.start()
                child_sock.close()  # the worker holds the only live end now
                parent_socks.append(parent_sock)
                self._procs.append(proc)
                self._channels.append(Channel(parent_sock))
            for shard, channel in enumerate(self._channels):
                channel.send(
                    Hello(
                        shard=shard,
                        num_shards=num_shards,
                        num_buckets=self.placement.num_buckets,
                        map_version=self.placement.version,
                    )
                )
                ready = channel.recv()
                if not isinstance(ready, Ready) or ready.shard != shard:
                    raise TransportError(
                        f"worker {shard} answered the handshake with {ready!r}"
                    )

            # Warm start: the pre-attach table state, as write frames.
            for user_id in table:
                profile = table.get(user_id)
                for item in profile.rated_items():
                    value = profile.value_of(item)
                    assert value is not None  # rated_items() lists opinions
                    self._buffer_write(user_id, item, value)
        except BaseException:
            self.close()  # reap any workers already spawned
            raise
        table.add_listener(self._route_write)
        return self

    def close(self) -> None:
        """Shut the workers down cleanly (idempotent).

        Buffered writes are NOT flushed -- nothing will read them --
        but every worker gets a :class:`Shutdown` frame and a join;
        one that fails to exit is terminated.
        """
        if self._closed:
            return
        self._closed = True
        if self._table is not None:
            # Detach the write router: writes recorded after close()
            # must not buffer into (or index) the torn-down channels.
            self._table.remove_listener(self._route_write)
            self._table = None
        for channel in self._channels:
            try:
                channel.send(Shutdown())
            except OSError:
                pass  # worker already gone; join below cleans up
            channel.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._channels = []
        self._procs = []

    # --- write routing ------------------------------------------------------

    def _route_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable hook: buffer the write for the owning worker."""
        del previous  # workers reconstruct it from their local replica
        self._buffer_write(user_id, item, value)

    def _buffer_write(self, user_id: int, item: int, value: float) -> None:
        assert self.placement is not None
        self.vocab.intern(item)  # master assigns the column in write order
        shard = self.placement.shard_of(user_id)
        users, items, values = self._write_buffers[shard]
        users.append(user_id)
        items.append(item)
        values.append(value)
        if len(users) >= self.ipc_write_batch:
            self._flush(shard)

    def _sync_vocab(self, shard: int) -> None:
        """Send the columns this worker has not seen yet (if any)."""
        total = len(self.vocab)
        synced = self._vocab_synced[shard]
        if total > synced:
            self._channels[shard].send(
                VocabDelta(base=synced, items=self.vocab.item_array()[synced:])
            )
            self._vocab_synced[shard] = total

    def _flush(self, shard: int) -> None:
        """Deliver the shard's buffered writes (vocab delta first)."""
        self._sync_vocab(shard)
        users, items, values = self._write_buffers[shard]
        if not users:
            return
        self._channels[shard].send(
            WriteBatch(
                user_ids=np.asarray(users, dtype=np.int64),
                items=np.asarray(items, dtype=np.int64),
                values=np.asarray(values, dtype=np.float64),
            )
        )
        self._write_buffers[shard] = ([], [], [])

    # --- coordinator surface ------------------------------------------------

    def partition(
        self, user_ids: Sequence[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a candidate list by owning shard (see ``ShardPlacement``)."""
        assert self.placement is not None
        return self.placement.partition(user_ids)

    def run_slices(
        self, shard_slices: Sequence[Sequence[ShardSlice]]
    ) -> list[dict[int, WirePartial]]:
        """Execute one batch: slices out to every worker, partials back.

        All job frames are written before any reply is read, so the
        workers score their slices concurrently -- this is where the
        multi-core parallelism lives.  Pending vocabulary deltas and
        write buffers flush first (to *every* worker: query columns
        interned this batch must exist on all replicas before their
        slices arrive).  Results preserve shard order, and partials
        within a shard are keyed by job index, so the merge is
        deterministic regardless of worker timing.
        """
        if self._closed or self.placement is None:
            raise RuntimeError("ProcessExecutor is not running")
        if len(shard_slices) != self.num_shards:
            raise ValueError("one slice list per shard required")
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        for shard in range(self.num_shards):
            self._flush(shard)
        for shard, slices in enumerate(shard_slices):
            if slices:
                self._channels[shard].send(
                    JobSlices(
                        batch_id=batch_id,
                        truncate=self.truncate_partials,
                        slices=tuple(slices),
                        map_version=self.placement.version,
                    )
                )
        results: list[dict[int, WirePartial]] = []
        for shard, slices in enumerate(shard_slices):
            if not slices:
                results.append({})
                continue
            reply = self._channels[shard].recv()
            if not isinstance(reply, Partials) or reply.batch_id != batch_id:
                raise TransportError(
                    f"worker {shard} answered batch {batch_id} with {reply!r}"
                )
            results.append(
                {partial.job_index: partial for partial in reply.partials}
            )
        return results

    def migrate_bucket(self, bucket: int, new_owner: int) -> int:
        """Hand one placement bucket from its owner to ``new_owner``.

        The live-handoff sequence (see ``docs/architecture.md``):

        1. **Drain** -- every worker's write buffer flushes, so all
           writes routed under the old map reach the old owner before
           extraction (they travel with the handoff).
        2. **Extract** -- a :class:`HandoffRequest` for the next epoch
           goes to the old owner, which replays the bucket's users out
           (warm-start form), evicts them locally, and bumps its epoch.
        3. **Replay** -- the :class:`HandoffData` reply is forwarded
           verbatim to the new owner (after a vocab sync, so every
           replayed item already has its column), which absorbs the
           rows and bumps its epoch.
        4. **Map bump** -- only now does the parent's placement map
           move the bucket (atomically, on the routing thread), so a
           handoff that fails at any earlier step leaves routing
           untouched and the error surfaces loudly.
        5. **Epoch broadcast** -- a :class:`MapUpdate` goes to every
           worker; the participants already hold the new epoch (the
           broadcast is idempotent for them), the bystanders advance.

        Returns the new map version.
        """
        if self._closed or self.placement is None:
            raise RuntimeError("ProcessExecutor is not running")
        placement = self.placement
        old_owner = placement.validate_move(bucket, new_owner)
        for shard in range(self.num_shards):
            self._flush(shard)
        new_version = placement.version + 1
        self._channels[old_owner].send(
            HandoffRequest(bucket=bucket, version=new_version)
        )
        reply = self._channels[old_owner].recv()
        if (
            not isinstance(reply, HandoffData)
            or reply.bucket != bucket
            or reply.version != new_version
        ):
            raise TransportError(
                f"worker {old_owner} answered the handoff of bucket "
                f"{bucket} with {reply!r}"
            )
        self._sync_vocab(new_owner)
        self._channels[new_owner].send(reply)
        placement.move_bucket(bucket, new_owner)
        assert placement.version == new_version
        for channel in self._channels:
            channel.send(MapUpdate(version=new_version))
        return new_version

    def stats(self) -> tuple[ShardStats, ...]:
        """Per-worker load/churn counters, via a stats round trip."""
        if self._closed or self.placement is None:
            raise RuntimeError("ProcessExecutor is not running")
        for shard in range(self.num_shards):
            self._flush(shard)  # counters must include buffered writes
            self._channels[shard].send(StatsRequest())
        replies: list[ShardStats] = []
        for shard, channel in enumerate(self._channels):
            reply = channel.recv()
            if not isinstance(reply, StatsReply):
                raise TransportError(
                    f"worker {shard} answered stats with {reply!r}"
                )
            replies.append(
                ShardStats(
                    shard=shard,
                    users=reply.users,
                    arena_live=reply.arena_live,
                    arena_garbage=reply.arena_garbage,
                    writes=reply.writes,
                    compactions=reply.compactions,
                    pid=reply.pid,
                )
            )
        return tuple(replies)

    # --- ShardExecutor protocol compatibility -------------------------------

    def run(self, tasks):  # pragma: no cover - guard rail
        """Unsupported: shard state lives out of process.

        The coordinator detects :attr:`hosts_shards` and dispatches
        serialized slices via :meth:`run_slices` instead of closures.
        """
        raise TypeError(
            "ProcessExecutor hosts shard state in worker processes; "
            "it executes serialized job slices (run_slices), not closures"
        )
