"""Long-lived worker processes behind the executor interface.

:class:`ProcessExecutor` is the cross-process back-end of the sharded
engine: it owns one forked worker process per shard (each hosting its
shard's :class:`~repro.engine.liked_matrix.LikedMatrix` arena, see
:mod:`repro.cluster.worker`) and speaks the serialized shard protocol
(:mod:`repro.cluster.transport`) over a private socket pair per
worker.  Where the thread-pool executor overlaps shard tasks only
while the numpy kernels release the GIL, worker processes run whole
Python interpreters in parallel -- real multi-core scaling for the
scatter/score phase.

Parent-side responsibilities:

* **Master vocabulary** -- the parent keeps the authoritative
  :class:`~repro.engine.liked_matrix.ItemVocabulary` (queries are
  projected to columns here, and merged popularity columns resolve to
  item ids here) and replicates it to every worker via append-only
  :class:`~repro.cluster.transport.VocabDelta` frames, flushed before
  any frame that could reference the new columns.
* **Write routing** -- a :class:`~repro.core.tables.ProfileTable`
  listener buffers each write for its owning shard (placement hash)
  and flushes buffers as :class:`~repro.cluster.transport.WriteBatch`
  frames lazily: before job dispatch, before stats reads, at
  ``ipc_write_batch`` buffered writes, and at shutdown.  Reads only
  ever happen through job frames, so deferred delivery is invisible.
* **Lifecycle** -- ``attach`` forks the workers and replays the
  table's pre-existing profiles as ordinary write frames (the
  *warm start*: a worker's state is always exactly "every write of my
  users, in order", no matter when it was born); ``close`` sends
  :class:`~repro.cluster.transport.Shutdown`, joins, and escalates
  terminate ``->`` kill for a wedged worker, so shutdown always reaps.
* **Supervision** -- every parent-side socket carries a
  ``worker_timeout`` deadline, so a dead or wedged worker surfaces as
  an error at the next round trip instead of a hang.  The attached
  :class:`~repro.cluster.supervisor.WorkerSupervisor` then re-forks
  the shard's worker and warm-starts it from the parent table (the
  replay log): recovery is exact because a worker's state is by
  construction "every write of my buckets, replayed".  A shard whose
  respawn budget is exhausted is *down*: reads fail fast with
  :class:`~repro.cluster.supervisor.ShardUnavailable`, or -- with
  ``degraded_reads=True`` -- serve the surviving shards' partials
  (the coordinator flags those results ``degraded``).  Writes are
  never dropped while a shard is down: the table keeps them, and the
  next respawn replays them.
* **Elastic topology** -- :meth:`~ProcessExecutor.add_shard` forks,
  handshakes, and vocab-replicates a late joiner (an ordinary Hello at
  the current epoch -- a join owns nothing, so it never moves the
  routing version), then migrates its rendezvous share in bucket by
  bucket; :meth:`~ProcessExecutor.remove_shard` drains the last
  shard's buckets out and retires it with a clean Shutdown; and
  :meth:`~ProcessExecutor.split_buckets` refines the bucket space in
  place via the v5 :class:`~repro.cluster.transport.SplitBuckets`
  frame -- zero data motion, because the modular bucket hash is
  stable under multiplication of the bucket count.
* **Concurrency** -- every bidirectional exchange (job dispatch,
  stats, handoffs, topology changes) serializes on :attr:`ops_lock`,
  taken per *step* by background movers so serving interleaves with a
  multi-bucket drain.  Table writes never wait on it: they append to
  the per-shard buffers under the cheap :attr:`_buffer_lock` (which
  also makes route+append atomic against a concurrent map bump, with
  in-flight buffered writes rerouted at the bump) and only *try* the
  ops lock for an eager flush.

The executor deliberately does *not* implement the in-process
``run(tasks)`` call: shard state lives in the workers, so the
coordinator hands it serialized job slices (:meth:`run_slices`)
instead of closures.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from typing import Sequence

import numpy as np

from repro.cluster.placement import ShardPlacement, rendezvous_owner
from repro.cluster.scoring import ShardSlice, WirePartial
from repro.cluster.sharded_matrix import ShardStats
from repro.cluster.supervisor import ShardUnavailable, WorkerSupervisor
from repro.cluster.transport import (
    HELLO_FLAG_METRICS,
    HELLO_FLAG_NARROW,
    Channel,
    HandoffData,
    HandoffRequest,
    Hello,
    JobSlices,
    MapUpdate,
    Message,
    MetricsRequest,
    MetricsSnapshot,
    Partials,
    Ready,
    Shutdown,
    SplitBuckets,
    StatsReply,
    StatsRequest,
    TransportError,
    VocabDelta,
    WriteBatch,
)
from repro.cluster.worker import worker_main
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import ItemVocabulary
from repro.obs import Observability
from repro.obs.exposition import sample_from_wire
from repro.obs.registry import MetricSample
from repro.obs.tracing import SpanContext, SpanRecord


class ProcessExecutor:
    """N worker processes, one per shard, fed by the shard protocol."""

    #: Tells the coordinator this executor *hosts* shard state (fed by
    #: serialized frames) instead of running closures over in-process
    #: shards; see :class:`repro.cluster.coordinator.ClusterCoordinator`.
    hosts_shards = True

    def __init__(
        self,
        workers: int | None = None,
        *,
        ipc_write_batch: int = 1024,
        truncate_partials: bool = True,
        worker_timeout: float = 5.0,
        max_respawns: int = 3,
        retry_backoff: float = 0.05,
        degraded_reads: bool = False,
        obs: Observability | None = None,
        memory=None,
    ) -> None:
        """
        Args:
            workers: Accepted for :func:`make_executor` signature
                compatibility; the process executor always runs one
                worker per shard (shard state is not divisible), so
                this is ignored.
            ipc_write_batch: Buffered writes per worker that trigger an
                eager flush; smaller values trade syscalls for lower
                write-visibility latency (results never change --
                reads always flush first).
            truncate_partials: Ship only each shard's local top-``k``
                scored candidates (exactness-preserving; see
                :func:`repro.cluster.scoring.truncate_topk`).  ``False``
                ships full partials -- useful for measuring what the
                truncation saves.
            worker_timeout: Deadline (seconds) on every parent-side
                socket operation, and the per-stage join timeout during
                shutdown escalation.  Must exceed the worst-case time a
                worker legitimately spends on one frame (scoring one
                batch), or healthy-but-slow workers get respawned.
            max_respawns: Re-fork attempts per failure incident before
                a shard is declared down; ``0`` disables automatic
                respawn entirely.
            retry_backoff: Base of the exponential backoff (seconds)
                between respawn attempts within one incident.
            degraded_reads: When a shard is down, serve reads from the
                surviving shards (results are flagged ``degraded``)
                instead of raising :class:`ShardUnavailable`.
            obs: The deployment's shared :class:`~repro.obs.Observability`.
                With metrics enabled, workers run live registries
                (:data:`~repro.cluster.transport.HELLO_FLAG_METRICS`)
                polled by :meth:`metrics_samples`; with tracing
                enabled, traced batches stitch worker score spans into
                the parent's traces.  Defaults to a disabled instance.
            memory: :class:`~repro.engine.liked_matrix.MemoryPolicy`
                each worker applies to its shard matrix, shipped in
                the v6 Hello of every handshake (respawns included).
                ``None`` keeps the classic unbounded int64 matrices.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "executor='process' needs the fork start method "
                "(POSIX); use 'thread' on this platform"
            )
        del workers  # one process per shard, always
        if ipc_write_batch < 1:
            raise ValueError(
                f"ipc_write_batch must be at least 1, got {ipc_write_batch}"
            )
        if worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be positive, got {worker_timeout}"
            )
        if max_respawns < 0:
            raise ValueError(
                f"max_respawns must be non-negative, got {max_respawns}"
            )
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be non-negative, got {retry_backoff}"
            )
        self._ctx = multiprocessing.get_context("fork")
        self.ipc_write_batch = ipc_write_batch
        self.truncate_partials = truncate_partials
        self.worker_timeout = worker_timeout
        self.max_respawns = max_respawns
        self.retry_backoff = retry_backoff
        self.degraded_reads = degraded_reads
        self.obs = obs if obs is not None else Observability.disabled()
        self.memory = memory
        self.vocab = ItemVocabulary()
        self.placement: ShardPlacement | None = None
        self.supervisor: WorkerSupervisor | None = None
        #: Shards the last ``run_slices`` could not serve (down while
        #: ``degraded_reads`` was on); the coordinator reads this to
        #: flag the affected jobs.
        self.last_degraded: tuple[int, ...] = ()
        self._table: ProfileTable | None = None
        self._channels: list[Channel | None] = []
        self._procs: list[multiprocessing.process.BaseProcess | None] = []
        self._write_buffers: list[tuple[list[int], list[int], list[float]]] = []
        self._vocab_synced: list[int] = []
        #: Shards whose channel failed outside a read (a write-path
        #: flush, a handoff): the next read forces a recovery first.
        self._suspect: set[int] = set()
        self._next_batch_id = 0
        self._closed = False
        #: Serializes everything that exchanges frames bidirectionally
        #: or mutates topology -- batch dispatch, migrations, splits,
        #: joins/retires, stats and metrics polls.  A background
        #: rebalancer takes it per single step, so serving interleaves
        #: with topology work instead of waiting out a whole pass.
        #: Table writes never block on it: they append to the buffers
        #: below and only *try* the lock for an eager flush.
        self.ops_lock = threading.RLock()
        #: Guards the write buffers themselves (append vs. the swap in
        #: ``_flush`` and the reroute in ``migrate_bucket``).  Held for
        #: list operations only, never across socket I/O.
        self._buffer_lock = threading.Lock()

    # --- lifecycle ----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        if self.placement is None:
            raise RuntimeError("executor not attached to a cluster yet")
        return self.placement.num_shards

    def attach(
        self,
        table: ProfileTable,
        num_shards: int,
        placement: ShardPlacement | None = None,
    ) -> "ProcessExecutor":
        """Spawn the workers and subscribe to the table's write stream.

        Called once by the coordinator.  Profiles already in ``table``
        are warm-started: replayed to their owning workers as ordinary
        write frames (current value per rated item -- bit-equivalent
        to the write history for every liked/rated-set read), so a
        cluster attached to a populated table answers exactly like one
        that saw every write live.

        Attach is loud and atomic: the supervisor only comes online
        after the warm start completes, so a handshake or replay
        failure propagates naming the shard that failed, and the
        ``close()`` below reaps every worker already spawned.
        """
        if self.placement is not None:
            raise RuntimeError("ProcessExecutor is already attached")
        if self._closed:
            raise RuntimeError("ProcessExecutor is closed")
        if placement is not None and placement.num_shards != num_shards:
            # Validated before any state mutates: a failed attach must
            # leave the executor attachable/closable, not half-built.
            raise ValueError("placement and num_shards disagree")
        self.placement = (
            placement if placement is not None else ShardPlacement(num_shards)
        )
        self._table = table
        self._write_buffers = [([], [], []) for _ in range(num_shards)]
        self._vocab_synced = [0] * num_shards
        self._channels = [None] * num_shards
        self._procs = [None] * num_shards

        try:
            for shard in range(num_shards):
                self._spawn_worker(shard)
            for shard in range(num_shards):
                self._handshake(shard)

            # Warm start: the pre-attach table state, as write frames.
            # The supervisor is still None here, so a delivery failure
            # propagates (naming the shard) instead of being absorbed
            # into the recovery machinery.
            for user_id in table:
                profile = table.get(user_id)
                for item in profile.rated_items():
                    value = profile.value_of(item)
                    assert value is not None  # rated_items() lists opinions
                    self._buffer_write(user_id, item, value)
        except BaseException:
            self.close()  # reap any workers already spawned
            raise
        self.supervisor = WorkerSupervisor(
            self,
            worker_timeout=self.worker_timeout,
            max_respawns=self.max_respawns,
            retry_backoff=self.retry_backoff,
        )
        table.add_listener(self._route_write)
        return self

    def close(self) -> None:
        """Shut the workers down cleanly (idempotent).

        Buffered writes are NOT flushed -- nothing will read them --
        but every worker gets a :class:`Shutdown` frame and a join;
        one that fails to exit is terminated, and one that survives
        SIGTERM (wedged or stopped) is killed.  Every child is reaped:
        no zombies outlive a closed executor.
        """
        with self.ops_lock:
            if self._closed:
                return
            self._closed = True
            if self._table is not None:
                # Detach the write router: writes recorded after close()
                # must not buffer into (or index) the torn-down channels.
                self._table.remove_listener(self._route_write)
                self._table = None
            for channel in self._channels:
                if channel is None:
                    continue
                try:
                    channel.send(Shutdown())
                except (TransportError, OSError):
                    pass  # worker already gone; reap below cleans up
                channel.close()
            for proc in self._procs:
                if proc is not None:
                    self._reap(proc)
            self._channels = []
            self._procs = []

    def _reap(self, proc: multiprocessing.process.BaseProcess) -> None:
        """Join with escalation: wait, then terminate, then kill.

        A wedged worker (stopped, or stuck inside a handler) ignores
        the Shutdown frame and can leave SIGTERM pending forever;
        SIGKILL cannot be blocked, so the final stage always reaps.
        """
        proc.join(timeout=self.worker_timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=self.worker_timeout)
        if proc.is_alive():
            proc.kill()
            proc.join()

    # --- spawn / respawn ----------------------------------------------------

    def _spawn_worker(self, shard: int) -> None:
        """Fork one shard's worker over a fresh deadline socket pair."""
        parent_sock, child_sock = socket.socketpair()
        # The child must close every parent-side fd it inherits across
        # the fork (the other live shards' and its own): otherwise it
        # holds both ends of the pairs and the workers' clean-EOF exit
        # (parent gone without a Shutdown frame) could never fire.
        inherited = tuple(
            ch.sock for ch in self._channels if ch is not None
        ) + (parent_sock,)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_sock, shard, inherited),
            name=f"hyrec-shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_sock.close()  # the worker holds the only live end now
        parent_sock.settimeout(self.worker_timeout)
        self._procs[shard] = proc
        self._channels[shard] = Channel(parent_sock)

    def _handshake(self, shard: int) -> None:
        """Hello/Ready exchange pinning the shard at the current epoch."""
        assert self.placement is not None
        channel = self._channels[shard]
        assert channel is not None
        flags = HELLO_FLAG_METRICS if self.obs.registry.enabled else 0
        evict_max_rows = 0
        evict_ttl_ms = 0
        if self.memory is not None:
            if self.memory.narrow_dtypes:
                flags |= HELLO_FLAG_NARROW
            evict_max_rows = self.memory.max_resident_rows
            evict_ttl_ms = int(round(self.memory.ttl_seconds * 1000))
        try:
            channel.send(
                Hello(
                    shard=shard,
                    num_shards=self.num_shards,
                    num_buckets=self.placement.num_buckets,
                    map_version=self.placement.version,
                    flags=flags,
                    evict_max_rows=evict_max_rows,
                    evict_ttl_ms=evict_ttl_ms,
                )
            )
            ready = channel.recv()
        except OSError as exc:
            raise TransportError(
                f"worker {shard} failed the handshake: {exc}"
            ) from exc
        if not isinstance(ready, Ready) or ready.shard != shard:
            raise TransportError(
                f"worker {shard} answered the handshake with {ready!r}"
            )

    def _warm_replay(self, shard: int) -> None:
        """Rebuild one shard's worker state from the replay log.

        The parent table holds every write of every bucket, so "every
        write of this shard's users, in table order, current value per
        rated item" is bit-equivalent to the history the dead worker
        had applied -- plus anything that was still buffered or
        recorded while it was down, which is why respawn never loses a
        write.  Resets the shard's buffer and vocab cursor first: the
        fresh replica starts from column zero.
        """
        assert self._table is not None and self.placement is not None
        self._write_buffers[shard] = ([], [], [])
        self._vocab_synced[shard] = 0
        shard_of = self.placement.shard_of
        for user_id in self._table:
            if shard_of(user_id) != shard:
                continue
            profile = self._table.get(user_id)
            users, items, values = self._write_buffers[shard]
            for item in profile.rated_items():
                value = profile.value_of(item)
                assert value is not None  # rated_items() lists opinions
                users.append(user_id)
                items.append(item)
                values.append(value)
            if len(users) >= self.ipc_write_batch:
                self._flush(shard)

    def _respawn(self, shard: int) -> None:
        """Replace one shard's worker: reap, re-fork, handshake, replay.

        The fresh worker's Hello pins the *current* routing epoch, so
        no migration history needs replaying; the warm-start replay
        then delivers the shard's full state from the parent table.
        Raises :class:`TransportError`/``OSError`` on failure (the
        supervisor's budget loop decides whether to retry).
        """
        assert self.placement is not None and self._table is not None
        channel = self._channels[shard]
        if channel is not None:
            channel.close()
        old = self._procs[shard]
        self._channels[shard] = None
        self._procs[shard] = None
        if old is not None:
            self._reap(old)
        self._spawn_worker(shard)
        self._handshake(shard)
        self._warm_replay(shard)
        self._flush(shard)
        self._suspect.discard(shard)

    def respawn(self, shard: int) -> None:
        """Force-respawn one shard's worker (the manual operator path).

        Unlike the supervisor's budgeted ``recover``, this always
        attempts exactly one respawn and raises on failure; success
        books a restart and clears the shard's down/degraded state.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            if not 0 <= shard < self.num_shards:
                raise ValueError(f"no such shard: {shard}")
            self._respawn(shard)
            if self.supervisor is not None:
                self.supervisor.restarts[shard] += 1
                self.supervisor.down.discard(shard)

    def rolling_restart(self) -> int:
        """Cycle every worker, one at a time, under live traffic.

        Per shard: **drain** (flush buffered writes, send a clean
        :class:`Shutdown`), **respawn** (re-fork; the Hello pins the
        current routing epoch), **warm replay** (full state from the
        replay log), then **epoch re-broadcast** (an idempotent
        :class:`MapUpdate` at the current version -- survivors confirm
        their epoch, the newcomer already holds it).  The executor is
        synchronous, so each cycle completes between requests: no
        request ever observes a half-restarted cluster, and results
        are bit-for-bit unchanged.  Downed shards are revived on the
        way through.  Returns the number of workers cycled.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            start = time.perf_counter()
            for shard in range(self.num_shards):
                channel = self._channels[shard]
                if channel is not None and not self._shard_unhealthy(shard):
                    try:
                        self._flush(shard)
                        channel.send(Shutdown())
                    except (TransportError, OSError):
                        pass  # died just now; _respawn escalates the reap
                self.respawn(shard)
                self._broadcast_epoch()
            self.obs.events.record(
                "rolling_restart",
                workers=self.num_shards,
                duration_ms=round((time.perf_counter() - start) * 1e3, 3),
            )
            return self.num_shards

    # --- health -------------------------------------------------------------

    def _shard_unhealthy(self, shard: int) -> bool:
        """True when the shard needs a recovery before its next read."""
        if shard in self._suspect:
            return True
        return self.supervisor is not None and shard in self.supervisor.down

    def _recover(self, shard: int) -> bool:
        """Budgeted recovery via the supervisor (False = shard down)."""
        if self.supervisor is None:
            return False
        return self.supervisor.recover(shard)

    def _broadcast_epoch(self) -> None:
        """Idempotent MapUpdate at the current version, to every live worker.

        A bystander dying mid-broadcast is marked suspect (its next
        read recovers it -- and the respawn Hello carries the current
        epoch anyway) instead of failing the caller's operation.
        """
        assert self.placement is not None
        for shard in range(self.num_shards):
            if self._channels[shard] is None or self._shard_unhealthy(shard):
                continue
            try:
                self._deliver(shard, MapUpdate(version=self.placement.version))
            except TransportError:
                self._suspect.add(shard)

    # --- write routing ------------------------------------------------------

    def _route_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable hook: buffer the write for the owning worker."""
        del previous  # workers reconstruct it from their local replica
        self._buffer_write(user_id, item, value)

    def _buffer_write(self, user_id: int, item: int, value: float) -> None:
        assert self.placement is not None
        self.vocab.intern(item)  # master assigns the column in write order
        with self._buffer_lock:
            # Routing and buffering are atomic against a concurrent
            # map bump: migrate_bucket reroutes the old owner's
            # buffered writes under this same lock, so a write can
            # never land on the old owner *after* the reroute swept it.
            shard = self.placement.shard_of(user_id)
            if self.supervisor is not None and self._shard_unhealthy(shard):
                # The table already holds the write (it IS the replay
                # log); the recovery that brings the shard back replays
                # it.  Buffering for a channel that will be torn down
                # anyway would only grow memory.
                return
            users, items, values = self._write_buffers[shard]
            users.append(user_id)
            items.append(item)
            values.append(value)
            pending = len(users)
        if pending >= self.ipc_write_batch:
            if self.supervisor is None:
                self._flush(shard)  # attach-time warm start: fail loudly
                return
            # The eager flush is best-effort: it only *tries* the ops
            # lock, so a write recorded while a migration or batch is
            # in flight buffers instead of blocking (or interleaving
            # frames into a channel mid-exchange).  The next flush
            # point -- dispatch, stats, or the op's own drain --
            # delivers it.
            if not self.ops_lock.acquire(blocking=False):
                return
            try:
                self._flush(shard)
            except (TransportError, OSError):
                # Never fail the caller's table write: the write is
                # durable in the table, and marking the shard suspect
                # forces the next read to recover (which replays it).
                self._suspect.add(shard)
            finally:
                self.ops_lock.release()

    def _deliver(self, shard: int, msg: Message) -> None:
        """Send one frame, wrapping socket errors with the shard index."""
        channel = self._channels[shard]
        if channel is None:
            raise TransportError(f"worker {shard} has no live channel")
        try:
            channel.send(msg)
        except OSError as exc:
            raise TransportError(
                f"worker {shard} unreachable ({exc})"
            ) from exc

    def _sync_vocab(self, shard: int) -> None:
        """Send the columns this worker has not seen yet (if any)."""
        total = len(self.vocab)
        synced = self._vocab_synced[shard]
        if total > synced:
            self._deliver(
                shard,
                VocabDelta(base=synced, items=self.vocab.item_array()[synced:]),
            )
            self._vocab_synced[shard] = total

    def _flush(self, shard: int) -> None:
        """Deliver the shard's buffered writes (vocab delta first).

        The buffers are swapped out under the buffer lock *before* the
        vocabulary sync: any write in the taken batch interned its item
        before appending, so syncing afterwards always covers the
        batch's columns -- even when a concurrent writer thread appends
        mid-flush.  A failed delivery restores the taken writes at the
        front of the buffer (order preserved) so no flush point can
        silently drop them.
        """
        with self._buffer_lock:
            users, items, values = self._write_buffers[shard]
            taken = bool(users)
            if taken:
                self._write_buffers[shard] = ([], [], [])
        try:
            self._sync_vocab(shard)
            if not taken:
                return
            self._deliver(
                shard,
                WriteBatch(
                    user_ids=np.asarray(users, dtype=np.int64),
                    items=np.asarray(items, dtype=np.int64),
                    values=np.asarray(values, dtype=np.float64),
                ),
            )
        except BaseException:
            if taken:
                with self._buffer_lock:
                    later = self._write_buffers[shard]
                    self._write_buffers[shard] = (
                        users + later[0],
                        items + later[1],
                        values + later[2],
                    )
            raise

    # --- coordinator surface ------------------------------------------------

    def partition(
        self, user_ids: Sequence[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a candidate list by owning shard (see ``ShardPlacement``)."""
        assert self.placement is not None
        return self.placement.partition(user_ids)

    def run_slices(
        self,
        shard_slices: Sequence[Sequence[ShardSlice]],
        trace: SpanContext | None = None,
    ) -> list[dict[int, WirePartial]]:
        """Execute one batch: slices out to every worker, partials back.

        All job frames are written before any reply is read, so the
        workers score their slices concurrently -- this is where the
        multi-core parallelism lives.  Pending vocabulary deltas and
        write buffers flush first (to *every* worker: query columns
        interned this batch must exist on all replicas before their
        slices arrive).  Results preserve shard order, and partials
        within a shard are keyed by job index, so the merge is
        deterministic regardless of worker timing.

        A shard that fails anywhere in the exchange (EOF, deadline,
        protocol violation) drops out of the concurrent path and is
        retried synchronously after a supervisor recovery -- the
        retried worker warm-started from the replay log computes the
        identical partials, so recovery is invisible in the results.
        A shard that stays down either raises
        :class:`ShardUnavailable` or, with ``degraded_reads``, serves
        nothing this batch (see :attr:`last_degraded`).

        ``trace`` is the coordinator's score-span context when the
        batch is traced: it stamps every job frame, and the workers'
        measured score spans (returned on the Partials) are adopted
        into the parent tracer -- once per shard, on the successful
        receive only, so a recovery retry never duplicates spans.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            if len(shard_slices) != self.num_shards:
                raise ValueError("one slice list per shard required")
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            trace_id = trace[0] if trace is not None else 0
            trace_parent = trace[1] if trace is not None else 0
            frames: list[JobSlices | None] = [
                JobSlices(
                    batch_id=batch_id,
                    truncate=self.truncate_partials,
                    slices=tuple(slices),
                    map_version=self.placement.version,
                    trace_id=trace_id,
                    trace_parent=trace_parent,
                )
                if slices
                else None
                for slices in shard_slices
            ]
            failed: set[int] = set()
            for shard, frame in enumerate(frames):
                if self._shard_unhealthy(shard):
                    failed.add(shard)
                    continue
                try:
                    self._flush(shard)
                    if frame is not None:
                        self._deliver(shard, frame)
                except (TransportError, OSError):
                    failed.add(shard)
            # Drain every healthy shard's reply *before* any retry can
            # raise: a ShardUnavailable escaping mid-drain would strand
            # unread Partials in the surviving channels and desync them.
            results: list[dict[int, WirePartial] | None] = [None] * len(frames)
            for shard, frame in enumerate(frames):
                if shard in failed:
                    continue
                if frame is None:
                    results[shard] = {}
                    continue
                try:
                    results[shard] = self._recv_partials(shard, batch_id, trace)
                except (TransportError, OSError):
                    failed.add(shard)
            degraded: list[int] = []
            for shard in sorted(failed):
                partials = self._retry_shard(
                    shard, frames[shard], batch_id, trace
                )
                if partials is None:
                    degraded.append(shard)
                    results[shard] = {}
                else:
                    results[shard] = partials
            self.last_degraded = tuple(degraded)
            return results

    def _recv_partials(
        self,
        shard: int,
        batch_id: int,
        trace: SpanContext | None = None,
    ) -> dict[int, WirePartial]:
        channel = self._channels[shard]
        assert channel is not None
        reply = channel.recv()
        if not isinstance(reply, Partials) or reply.batch_id != batch_id:
            raise TransportError(
                f"worker {shard} answered batch {batch_id} with {reply!r}"
            )
        if trace is not None and reply.spans:
            self.obs.tracer.adopt(
                SpanRecord(
                    trace_id=trace[0],
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    name=span.name,
                    start_us=span.start_us,
                    dur_us=span.dur_us,
                    pid=span.pid,
                )
                for span in reply.spans
            )
        return {partial.job_index: partial for partial in reply.partials}

    def _retry_shard(
        self,
        shard: int,
        frame: JobSlices | None,
        batch_id: int,
        trace: SpanContext | None = None,
    ) -> dict[int, WirePartial] | None:
        """Recover a failed shard and re-run its half of the batch.

        The coordinator is synchronous, so no write lands between the
        failed attempt and the retry: the respawned worker scores the
        identical frame against identical state, keeping the batch
        bit-for-bit exact.  Returns ``None`` when the shard stays down
        and ``degraded_reads`` allows serving without it; raises
        :class:`ShardUnavailable` otherwise.
        """
        for _ in range(2):
            if not self._recover(shard):
                break
            if frame is None:
                return {}
            try:
                self._flush(shard)
                self._deliver(shard, frame)
                return self._recv_partials(shard, batch_id, trace)
            except (TransportError, OSError):
                continue
        if self.degraded_reads:
            return None
        raise ShardUnavailable(shard, "respawn budget exhausted")

    def migrate_bucket(self, bucket: int, new_owner: int) -> int:
        """Hand one placement bucket from its owner to ``new_owner``.

        The live-handoff sequence (see ``docs/architecture.md``):

        1. **Drain** -- every worker's write buffer flushes, so all
           writes routed under the old map reach the old owner before
           extraction (they travel with the handoff).
        2. **Extract** -- a :class:`HandoffRequest` for the next epoch
           goes to the old owner, which replays the bucket's users out
           (warm-start form), evicts them locally, and bumps its epoch.
        3. **Replay** -- the :class:`HandoffData` reply is forwarded
           verbatim to the new owner (after a vocab sync, so every
           replayed item already has its column), which absorbs the
           rows and bumps its epoch.
        4. **Map bump** -- only now does the parent's placement map
           move the bucket (atomically, on the routing thread), so a
           handoff that fails at any earlier step leaves routing
           untouched and the error surfaces loudly.
        5. **Epoch broadcast** -- a :class:`MapUpdate` goes to every
           worker; the participants already hold the new epoch (the
           broadcast is idempotent for them), the bystanders advance.

        Migrations do not self-heal: a participant dying mid-handoff
        fails this call loudly (routing untouched) and marks the
        worker for recovery at its next read; callers wanting moves
        during an outage must recover first (the rebalancer simply
        pauses -- see ``ShardRebalancer``).

        The whole exchange runs under :attr:`ops_lock`, so a handoff
        driven from a background rebalancer thread serializes against
        batch dispatch.  Concurrent table *writes* never wait: they
        buffer (the eager flush only tries the lock), and any write
        for the moving bucket that buffered mid-handoff is rerouted to
        the new owner atomically with the map bump -- delivered after
        the absorbed handoff data, in its original order, so nothing
        is lost or applied out of order.

        Returns the new map version.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            placement = self.placement
            old_owner = placement.validate_move(bucket, new_owner)
            for shard in range(self.num_shards):
                if self._shard_unhealthy(shard):
                    raise ShardUnavailable(
                        shard, "cannot migrate while a shard needs recovery"
                    )
                self._flush(shard)
            new_version = placement.version + 1
            try:
                self._deliver(
                    old_owner,
                    HandoffRequest(bucket=bucket, version=new_version),
                )
                channel = self._channels[old_owner]
                assert channel is not None
                reply = channel.recv()
            except (TransportError, OSError):
                self._suspect.add(old_owner)
                raise
            if (
                not isinstance(reply, HandoffData)
                or reply.bucket != bucket
                or reply.version != new_version
            ):
                raise TransportError(
                    f"worker {old_owner} answered the handoff of bucket "
                    f"{bucket} with {reply!r}"
                )
            try:
                self._sync_vocab(new_owner)
                self._deliver(new_owner, reply)
            except TransportError:
                self._suspect.add(new_owner)
                raise
            with self._buffer_lock:
                placement.move_bucket(bucket, new_owner)
                self._reroute_bucket_locked(bucket, old_owner, new_owner)
            assert placement.version == new_version
            self._broadcast_epoch()
            return new_version

    def _reroute_bucket_locked(
        self, bucket: int, old_owner: int, new_owner: int
    ) -> None:
        """Move a migrated bucket's buffered writes to its new owner.

        Called with the buffer lock held, atomically with the map
        bump.  Writes recorded during the handoff (after the drain)
        buffered under the old map; the extraction never saw them, so
        they belong at the new owner, *after* the handoff data it just
        absorbed -- which appending achieves, since the buffer flushes
        later than the forwarded frame.  Per-user order is preserved
        (the scan keeps buffer order), and cross-user order between
        buffers is irrelevant: replay semantics are per user.
        """
        assert self.placement is not None
        users, items, values = self._write_buffers[old_owner]
        if not users:
            return
        bucket_of = self.placement.bucket_of
        keep: tuple[list[int], list[int], list[float]] = ([], [], [])
        moved: tuple[list[int], list[int], list[float]] = ([], [], [])
        for user_id, item, value in zip(users, items, values):
            dest = moved if bucket_of(user_id) == bucket else keep
            dest[0].append(user_id)
            dest[1].append(item)
            dest[2].append(value)
        if not moved[0]:
            return
        self._write_buffers[old_owner] = keep
        target = self._write_buffers[new_owner]
        target[0].extend(moved[0])
        target[1].extend(moved[1])
        target[2].extend(moved[2])

    # --- elastic topology ---------------------------------------------------

    def add_shard(self, migrate: bool = True) -> int:
        """Grow the fleet by one worker; returns the new shard's index.

        The joiner is spawned and handshaken at the *current* epoch
        and bucket count (its Hello pins both), then receives the full
        vocabulary replica -- at which point it is a first-class,
        supervised worker that simply owns no buckets yet.  With
        ``migrate=True`` its rendezvous share (exactly the buckets it
        would have won at boot -- minimal movement) is then migrated
        in, bucket by bucket, through the ordinary epoch-bumped
        handoff.  A spawn or handshake failure rolls the topology back
        completely and raises; the epoch never moves for the join
        itself, only for the per-bucket migrations.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            for shard in range(self.num_shards):
                if self._shard_unhealthy(shard):
                    raise ShardUnavailable(
                        shard, "cannot grow while a shard needs recovery"
                    )
            placement = self.placement
            shard = placement.add_shard()
            with self._buffer_lock:
                self._write_buffers.append(([], [], []))
            self._vocab_synced.append(0)
            self._channels.append(None)
            self._procs.append(None)
            try:
                self._spawn_worker(shard)
                self._handshake(shard)
                self._sync_vocab(shard)
            except BaseException:
                channel = self._channels[shard]
                if channel is not None:
                    channel.close()
                proc = self._procs[shard]
                if proc is not None:
                    self._reap(proc)
                self._channels.pop()
                self._procs.pop()
                self._vocab_synced.pop()
                with self._buffer_lock:
                    self._write_buffers.pop()
                placement.remove_last_shard()
                raise
            if self.supervisor is not None:
                self.supervisor.add_shard()
        if migrate:
            for bucket in placement.rendezvous_share(shard).tolist():
                if placement.owner_of(bucket) != shard:
                    self.migrate_bucket(int(bucket), shard)
        return shard

    def remove_shard(self) -> int:
        """Retire the last shard's worker; returns the retired index.

        Only the last index can retire (lower ones would renumber the
        fleet).  Its buckets are first drained out to their rendezvous
        winners among the survivors -- each drain an ordinary
        epoch-bumped handoff -- then the empty worker gets a clean
        :class:`Shutdown` and is reaped, and the topology shrinks.
        Like a join, the retire itself never moves the epoch.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            placement = self.placement
            if placement.num_shards < 2:
                raise ValueError("cannot remove the only shard")
            shard = placement.num_shards - 1
            for other in range(self.num_shards):
                if self._shard_unhealthy(other):
                    raise ShardUnavailable(
                        other, "cannot shrink while a shard needs recovery"
                    )
        survivors = placement.num_shards - 1
        for bucket in placement.buckets_owned_by(shard).tolist():
            self.migrate_bucket(
                int(bucket), rendezvous_owner(int(bucket), survivors)
            )
        with self.ops_lock:
            assert placement.buckets_owned_by(shard).size == 0
            channel = self._channels[shard]
            if channel is not None:
                try:
                    self._flush(shard)  # vocab cursor tidiness only
                    channel.send(Shutdown())
                except (TransportError, OSError):
                    pass  # died just now; the reap below still collects
                channel.close()
            proc = self._procs[shard]
            self._channels.pop()
            self._procs.pop()
            self._vocab_synced.pop()
            with self._buffer_lock:
                self._write_buffers.pop()
            self._suspect.discard(shard)
            if self.supervisor is not None:
                self.supervisor.remove_last_shard()
            placement.remove_last_shard()
            if proc is not None:
                self._reap(proc)
        return shard

    def split_buckets(self, factor: int = 2) -> int:
        """Refine the bucket space by ``factor``; returns the new version.

        No data moves (see ``ShardPlacement.split_buckets``): every
        worker just learns the new bucket count and the epoch the
        split creates through a v5 :class:`SplitBuckets` frame.  The
        split commits on the parent even if a worker fails the
        delivery -- that worker is marked suspect and its respawn
        Hello carries the post-split count, so it can never serve
        under the stale numbering.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            if factor < 2:
                raise ValueError(f"split factor must be >= 2, got {factor}")
            placement = self.placement
            for shard in range(self.num_shards):
                if self._shard_unhealthy(shard):
                    raise ShardUnavailable(
                        shard, "cannot split while a shard needs recovery"
                    )
                self._flush(shard)
            new_version = placement.version + 1
            new_count = placement.num_buckets * factor
            for shard in range(self.num_shards):
                try:
                    self._deliver(
                        shard,
                        SplitBuckets(
                            num_buckets=new_count, version=new_version
                        ),
                    )
                except TransportError:
                    self._suspect.add(shard)
            with self._buffer_lock:
                placement.split_buckets(factor)
            assert placement.version == new_version
            assert placement.num_buckets == new_count
            return new_version

    def metrics_samples(self) -> list[MetricSample]:
        """Pull every live worker's metrics snapshot over the wire.

        Per healthy shard: flush (so shipped counters include buffered
        writes), one :class:`MetricsRequest` round trip, and the
        :class:`MetricsSnapshot` reply converted back into registry
        samples.  A shard that fails the exchange is marked suspect
        (its next read recovers it) and simply contributes nothing to
        this poll -- exposition must never take the cluster down.
        Returns ``[]`` when metrics are disabled or the executor is
        not running.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                return []
            if not self.obs.registry.enabled:
                return []
            samples: list[MetricSample] = []
            for shard in range(self.num_shards):
                if self._shard_unhealthy(shard):
                    continue
                try:
                    self._flush(shard)
                    self._deliver(shard, MetricsRequest())
                    channel = self._channels[shard]
                    assert channel is not None
                    reply = channel.recv()
                    if (
                        not isinstance(reply, MetricsSnapshot)
                        or reply.shard != shard
                    ):
                        raise TransportError(
                            f"worker {shard} answered metrics with {reply!r}"
                        )
                except (TransportError, OSError):
                    self._suspect.add(shard)
                    continue
                samples.extend(
                    sample_from_wire(wire) for wire in reply.samples
                )
            return samples

    def stats(self) -> tuple[ShardStats, ...]:
        """Per-worker load/churn counters, via a stats round trip.

        Each shard is probed (v3 ping, refreshing ``last_ping_ms``)
        and queried; a shard that fails gets one recovery attempt, and
        one that stays down is reported as a dead row
        (``alive=False``) rather than failing the whole read --
        liveness is exactly what stats exist to surface.
        """
        with self.ops_lock:
            if self._closed or self.placement is None:
                raise RuntimeError("ProcessExecutor is not running")
            return tuple(
                self._stat_shard(shard) for shard in range(self.num_shards)
            )

    def _stat_shard(self, shard: int) -> ShardStats:
        supervisor = self.supervisor
        for _ in range(2):
            if self._shard_unhealthy(shard) and not self._recover(shard):
                break
            try:
                self._flush(shard)  # counters must include buffered writes
                if supervisor is not None:
                    supervisor.ping(shard)
                self._deliver(shard, StatsRequest())
                channel = self._channels[shard]
                assert channel is not None
                reply = channel.recv()
                if not isinstance(reply, StatsReply):
                    raise TransportError(
                        f"worker {shard} answered stats with {reply!r}"
                    )
            except (TransportError, OSError):
                self._suspect.add(shard)
                continue
            return ShardStats(
                shard=shard,
                users=reply.users,
                arena_live=reply.arena_live,
                arena_garbage=reply.arena_garbage,
                writes=reply.writes,
                compactions=reply.compactions,
                pid=reply.pid,
                alive=True,
                restarts=supervisor.restarts[shard] if supervisor else 0,
                last_ping_ms=(
                    supervisor.last_ping_ms[shard] if supervisor else -1.0
                ),
                evictions=reply.evictions,
                arena_capacity=reply.arena_capacity,
            )
        return ShardStats(
            shard=shard,
            users=0,
            arena_live=0,
            arena_garbage=0,
            writes=0,
            compactions=0,
            pid=0,
            alive=False,
            restarts=supervisor.restarts[shard] if supervisor else 0,
            last_ping_ms=-1.0,
        )

    # --- ShardExecutor protocol compatibility -------------------------------

    def run(self, tasks):  # pragma: no cover - guard rail
        """Unsupported: shard state lives out of process.

        The coordinator detects :attr:`hosts_shards` and dispatches
        serialized slices via :meth:`run_slices` instead of closures.
        """
        raise TypeError(
            "ProcessExecutor hosts shard state in worker processes; "
            "it executes serialized job slices (run_slices), not closures"
        )
