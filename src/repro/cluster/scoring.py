"""Shard-local scoring shared by every executor back-end.

The coordinator's scatter step reduces a batch of
:class:`~repro.engine.jobs.EngineJob`\\ s to per-shard
:class:`ShardSlice`\\ s -- pure data (candidate ids, global positions,
query columns, metric, ``k``), no closures and no references to
coordinator state.  That is what makes the slices *transportable*: the
in-process executors score them directly against their shard's
:class:`~repro.engine.liked_matrix.LikedMatrix`, and the process
executor serializes the very same objects onto the wire
(:mod:`repro.cluster.transport`) for a worker process to score against
its own arena.  Both paths call :func:`score_slices`, so the scored
bits cannot diverge between deployments.

Two partial shapes come back:

* :class:`ShardPartial` -- the in-process result: zero-copy views of
  scores, positions, and the gathered liked columns (the popularity
  merge bincounts the raw columns).
* :func:`to_wire_partial` converts a :class:`ShardPartial` into the
  compact cross-process form: scores/positions truncated to the
  shard-local top-``k`` (exactness-preserving -- every global top-k
  member is inside its own shard's top-k) and the liked columns
  pre-histogrammed into sparse ``(column, count)`` pairs.  Integer
  counts sum associatively, so :func:`merge_popularity_sparse` is
  bit-for-bit the single ``bincount`` over the concatenated columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.kernels import segment_sums, similarity_scores
from repro.engine.liked_matrix import LikedMatrix

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class ShardSlice:
    """One job's slice of one shard, as plain transportable data.

    ``candidate_ids`` are the candidates this shard owns;
    ``positions`` are their indices in the job's global
    ascending-token candidate order (what cross-shard merges rank by).
    ``query_cols`` are the requester's liked items mapped to shared
    vocabulary columns, and ``liked_count`` is ``|L_u|`` (the
    similarity denominators).  ``k`` bounds how far a wire partial may
    be truncated.
    """

    job_index: int
    candidate_ids: np.ndarray
    positions: np.ndarray
    query_cols: np.ndarray
    liked_count: int
    metric: str
    k: int


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution to one job (zero-copy views)."""

    positions: np.ndarray  # candidate positions in the job's token order
    scores: np.ndarray  # matching similarity scores (float64)
    liked_cols: np.ndarray  # gathered liked-item columns (shared vocab)


@dataclass(frozen=True)
class WirePartial:
    """A shard partial in its serialized, shippable form.

    ``positions``/``scores`` may be truncated to the shard-local
    top-``k`` under the engine's ``(-score, position)`` total order;
    ``pop_cols``/``pop_counts`` are the sparse per-column histogram of
    the slice's gathered liked columns (columns are unique within one
    partial, counts are exact integers).
    """

    job_index: int
    positions: np.ndarray  # int64, possibly top-k truncated
    scores: np.ndarray  # float64, matching order
    pop_cols: np.ndarray  # int64, unique, ascending
    pop_counts: np.ndarray  # int64, positive


def score_slices(
    matrix: LikedMatrix, slices: Sequence[ShardSlice]
) -> dict[int, ShardPartial]:
    """Score every slice of one shard in one batched kernel pass.

    This is the "one batched kernel invocation per shard" shape: one
    CSR gather over all slices' candidates, one membership flag per
    gathered entry (each slice marks its own query set, but flags land
    in one shared array), one
    :func:`~repro.engine.kernels.segment_sums`, and -- when the batch
    shares a metric, which a config-driven deployment always does --
    one :func:`~repro.engine.kernels.similarity_scores` call for every
    candidate row of every slice.

    The arithmetic (float64 elementwise, no cross-candidate
    reductions) is bit-for-bit the single-matrix engine's; every
    executor back-end funnels through this function, so shard-local
    scores cannot depend on the deployment.
    """
    if not slices:
        return {}
    all_ids = (
        np.concatenate([s.candidate_ids for s in slices])
        if len(slices) > 1
        else slices[0].candidate_ids
    )
    indices, indptr, sizes = matrix.gather_liked(all_ids.tolist())

    hits = np.empty(indices.size, dtype=np.int64)
    spans: list[tuple[ShardSlice, int, int, int, int]] = []
    row = 0
    for piece in slices:
        count = piece.candidate_ids.size
        lo = int(indptr[row])
        hi = int(indptr[row + count])
        matrix.mark_hits(piece.query_cols, indices[lo:hi], hits[lo:hi])
        spans.append((piece, row, row + count, lo, hi))
        row += count

    inter = segment_sums(hits, indptr)
    liked_counts = np.repeat(
        np.asarray(
            [piece.liked_count for piece, *_ in spans], dtype=np.float64
        ),
        np.asarray([r1 - r0 for _, r0, r1, *_ in spans], dtype=np.int64),
    )
    metrics = {piece.metric for piece, *_ in spans}
    if len(metrics) == 1:
        scores_all = similarity_scores(
            next(iter(metrics)), inter, liked_counts, sizes
        )
    else:  # mixed-metric batch: score per slice (same kernels, same bits)
        scores_all = np.empty(inter.size, dtype=np.float64)
        for piece, r0, r1, _, _ in spans:
            scores_all[r0:r1] = similarity_scores(
                piece.metric,
                inter[r0:r1],
                liked_counts[r0:r1],
                sizes[r0:r1],
            )

    return {
        piece.job_index: ShardPartial(
            positions=piece.positions,
            scores=scores_all[r0:r1],
            liked_cols=indices[lo:hi],
        )
        for piece, r0, r1, lo, hi in spans
    }


def truncate_topk(
    positions: np.ndarray, scores: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Shard-local top-``k`` under the engine's total order.

    Ranks by ``(-score, position)`` -- exactly the order
    :func:`~repro.cluster.coordinator.merge_topk` applies to the
    cross-shard union.  Shards hold disjoint candidates, so any member
    of the *global* top-``k`` is necessarily inside its own shard's
    top-``k``: dropping everything below the local cut can never
    evict a global winner, which is what makes wire truncation an
    exactness-preserving bandwidth optimization rather than an
    approximation.
    """
    if positions.size <= k:
        return positions, scores
    top = np.lexsort((positions, -scores))[:k]
    return positions[top], scores[top]


def to_wire_partial(
    job_index: int, partial: ShardPartial, k: int, truncate: bool
) -> WirePartial:
    """Serialize-ready form of a shard partial.

    The liked columns collapse into their sparse histogram (exact --
    the popularity merge only ever bincounts them), and the scored
    candidates optionally truncate to the shard-local top-``k`` via
    :func:`truncate_topk`.
    """
    positions, scores = partial.positions, partial.scores
    if truncate:
        positions, scores = truncate_topk(positions, scores, k)
    if partial.liked_cols.size:
        histogram = np.bincount(partial.liked_cols)
        pop_cols = np.nonzero(histogram)[0]
        pop_counts = histogram[pop_cols]
    else:
        pop_cols = _EMPTY
        pop_counts = _EMPTY
    return WirePartial(
        job_index=job_index,
        positions=positions,
        scores=scores,
        pop_cols=pop_cols,
        pop_counts=pop_counts,
    )


def merge_popularity_sparse(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Dense per-column like counts from sparse per-shard histograms.

    Bit-for-bit the
    :func:`~repro.cluster.coordinator.merge_popularity` result on the
    same shards' raw column segments: every column appearing on a
    shard carries a positive count, so the dense length (max column +
    1) matches the concatenated ``bincount``'s, and integer addition
    is associative, so summing per-shard histograms equals counting
    the concatenation.  Columns are unique within one part (they come
    from a ``bincount``'s nonzero set), so the fancy-indexed ``+=`` is
    a plain scatter-add with no lost updates.
    """
    parts = [(cols, counts) for cols, counts in parts if cols.size]
    if not parts:
        return _EMPTY
    length = max(int(cols.max()) for cols, _ in parts) + 1
    merged = np.zeros(length, dtype=np.int64)
    for cols, counts in parts:
        merged[cols] += counts
    return merged
