"""Worker supervision: liveness probes, respawn budgets, recovery.

The process executor is exact but, on its own, fragile: a shard worker
that dies (OOM kill, crash, operator signal) turns every subsequent
round trip into an EOF or a timeout.  :class:`WorkerSupervisor` is the
policy layer that turns those low-level failures into recoveries:

* **Detection** is passive -- the executor's framed round trips run
  under a socket deadline (``worker_timeout``), so a dead or wedged
  worker surfaces as a :class:`~repro.cluster.transport.TransportError`
  or ``OSError`` at the next exchange.  :meth:`ping` adds an active
  probe (protocol-v3 ``Ping``/``Pong``) whose round-trip time is the
  per-worker health signal surfaced in ``ServerStats``.
* **Recovery** (:meth:`recover`) re-forks the dead shard's worker and
  warm-starts it from the coordinator-side replay log -- the parent
  :class:`~repro.core.tables.ProfileTable`, which by construction
  holds every write of every bucket.  Exactness is preserved: a
  worker's state *is* "every write of my buckets, replayed", so the
  respawned worker is bit-for-bit the worker that died.  Respawns are
  budgeted (``max_respawns`` attempts per incident, exponential
  ``retry_backoff`` between them); a shard whose budget is exhausted
  is marked *down*.
* **Downed shards** make reads either fail fast with the typed
  :class:`ShardUnavailable` or -- when the executor was built with
  ``degraded_reads=True`` -- serve partials from the surviving shards
  with a ``degraded`` flag on the result.  Writes are never dropped
  either way: the replay log keeps accepting them, and the next
  successful respawn replays them into the fresh worker.

The supervisor holds policy and counters only; the mechanics of
forking, handshaking, and replaying live in
:meth:`~repro.cluster.process_executor.ProcessExecutor._respawn`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.cluster.transport import Ping, Pong, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.process_executor import ProcessExecutor


class ShardUnavailable(RuntimeError):
    """A shard's worker is down and its respawn budget is exhausted.

    Raised on the read path when ``degraded_reads`` is off (fail
    fast); with degraded reads on, the coordinator serves survivors'
    partials instead and flags the result.  A manual
    ``ProcessExecutor.respawn`` (or ``rolling_restart``) clears the
    condition.
    """

    def __init__(self, shard: int, detail: str = "") -> None:
        self.shard = shard
        message = f"shard {shard} is unavailable"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class WorkerSupervisor:
    """Liveness tracking and respawn policy for one executor's workers.

    Owns the counters ``ServerStats`` surfaces (per-shard ``restarts``
    and ``last_ping_ms``, cluster-level ``recoveries``) plus the
    ``down`` set and the measured ``recovery_times`` the recovery
    benchmark records.
    """

    def __init__(
        self,
        executor: "ProcessExecutor",
        *,
        worker_timeout: float,
        max_respawns: int,
        retry_backoff: float,
    ) -> None:
        self._executor = executor
        self.worker_timeout = worker_timeout
        self.max_respawns = max_respawns
        self.retry_backoff = retry_backoff
        num_shards = executor.num_shards
        #: Successful respawns per shard (automatic, manual, rolling).
        self.restarts = [0] * num_shards
        #: Last successful probe's round trip in ms; -1.0 = never probed.
        self.last_ping_ms = [-1.0] * num_shards
        #: Shards whose respawn budget is exhausted (serving degraded).
        self.down: set[int] = set()
        #: Automatic recoveries that succeeded (cluster-wide).
        self.recoveries = 0
        #: Wall-clock seconds each successful recovery took.
        self.recovery_times: list[float] = []
        #: True while a recovery is in flight (rebalancer pauses moves).
        self.recovering = False
        self._next_nonce = 0

    # --- health ------------------------------------------------------------

    def alive(self, shard: int) -> bool:
        """Process-level liveness: forked, not reaped, not marked down."""
        proc = self._executor._procs[shard]
        return proc is not None and proc.is_alive() and shard not in self.down

    @property
    def healthy(self) -> bool:
        """No downed shards, no recovery in flight, every worker alive.

        The rebalancer consults this before proposing or applying
        migrations: moving buckets while a shard is down or mid-respawn
        would race the warm-start replay.
        """
        if self.recovering or self.down:
            return False
        return all(
            proc is not None and proc.is_alive()
            for proc in self._executor._procs
        )

    def ping(self, shard: int) -> float:
        """Round-trip a v3 liveness probe; returns the latency in ms.

        Raises :class:`TransportError` (or ``OSError``) when the worker
        is dead, wedged past ``worker_timeout``, or answers with the
        wrong nonce/shard -- the caller decides whether that triggers a
        recovery.
        """
        channel = self._executor._channels[shard]
        if channel is None:
            raise TransportError(f"worker {shard} has no channel")
        self._next_nonce += 1
        nonce = self._next_nonce
        start = time.perf_counter()
        channel.send(Ping(nonce=nonce))
        reply = channel.recv()
        if (
            not isinstance(reply, Pong)
            or reply.nonce != nonce
            or reply.shard != shard
        ):
            raise TransportError(
                f"worker {shard} answered ping with {reply!r}"
            )
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.last_ping_ms[shard] = elapsed_ms
        return elapsed_ms

    # --- elastic topology ---------------------------------------------------

    def add_shard(self) -> None:
        """Start supervising a late-joining worker (one new last index).

        Called by ``ProcessExecutor.add_shard`` once the joiner has
        handshaken: from here on the new shard is probed, budgeted, and
        recovered exactly like a boot-time worker.
        """
        self.restarts.append(0)
        self.last_ping_ms.append(-1.0)

    def remove_last_shard(self) -> None:
        """Stop supervising the retired last shard.

        Its counters leave with it; a retire is deliberate, so nothing
        is booked as a recovery or a down-mark.
        """
        shard = len(self.restarts) - 1
        self.restarts.pop()
        self.last_ping_ms.pop()
        self.down.discard(shard)

    # --- recovery ----------------------------------------------------------

    def recover(self, shard: int) -> bool:
        """Respawn a dead shard's worker within the budget.

        Attempts up to ``max_respawns`` re-forks with exponential
        backoff between attempts; each successful respawn warm-starts
        the worker from the replay log (see ``ProcessExecutor._respawn``).
        Returns True and books the recovery on success; marks the shard
        down and returns False once the budget is spent (including a
        budget of zero, which disables automatic respawn outright).
        """
        self.recovering = True
        start = time.perf_counter()
        try:
            for attempt in range(self.max_respawns):
                if attempt:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                try:
                    self._executor._respawn(shard)
                except (TransportError, OSError):
                    continue
                duration = time.perf_counter() - start
                self.restarts[shard] += 1
                self.recoveries += 1
                self.recovery_times.append(duration)
                self.down.discard(shard)
                obs = self._executor.obs
                obs.registry.counter("hyrec_recoveries_total").inc()
                obs.events.record(
                    "worker_recovered",
                    shard=shard,
                    attempts=attempt + 1,
                    duration_ms=round(duration * 1e3, 3),
                )
                return True
            self.down.add(shard)
            self._executor.obs.events.record("shard_down", shard=shard)
            return False
        finally:
            self.recovering = False
