"""The out-of-process shard host.

Each worker process owns one shard's state end to end: a local
:class:`~repro.core.tables.ProfileTable` holding only the users the
placement map routed here, the shard's
:class:`~repro.engine.liked_matrix.LikedMatrix` arena mirroring it
incrementally, and a replica
:class:`~repro.engine.liked_matrix.ItemVocabulary` rebuilt from the
parent's append-only :class:`~repro.cluster.transport.VocabDelta`
frames -- so a column index means the same item here as in the parent
and on every sibling shard, without any shared memory.

Nothing enters or leaves except :mod:`repro.cluster.transport` frames:
writes arrive as :class:`~repro.cluster.transport.WriteBatch`\\ es (the
local table replays them, which drives the matrix's incremental
like/un-like transitions exactly as the parent-side matrix would see
them), jobs arrive as :class:`~repro.cluster.transport.JobSlices`, and
results leave as shard-local-top-K
:class:`~repro.cluster.transport.Partials`.  The scoring itself is
:func:`repro.cluster.scoring.score_slices` -- the same function the
in-process executors run -- so a worker's partials are bit-for-bit
what the serial executor computes for the same shard.

:class:`ShardHost` is deliberately transport-agnostic (message in,
optional reply out) so protocol handling is unit-testable without
spawning processes; :func:`worker_main` is the thin process entry
point that pumps frames between a socket and the host.
"""

from __future__ import annotations

import os
import socket

from repro.cluster.scoring import score_slices, to_wire_partial
from repro.cluster.transport import (
    Channel,
    ConnectionClosedError,
    Hello,
    JobSlices,
    Message,
    Partials,
    Ready,
    Shutdown,
    StatsReply,
    StatsRequest,
    TransportError,
    VocabDelta,
    WriteBatch,
)
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import ItemVocabulary, LikedMatrix


class ShardHost:
    """One shard's state plus the frame dispatch that mutates it."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.table = ProfileTable()
        self.vocab = ItemVocabulary()
        self.matrix = LikedMatrix(self.table, vocab=self.vocab)
        self.batches_scored = 0

    # --- frame handlers -----------------------------------------------------

    def handle(self, msg: Message) -> Message | None:
        """Apply one message; return the reply frame if the type has one.

        Frames must be applied in arrival order: vocabulary deltas are
        cumulative, and write replay depends on every prior write of a
        user having been applied (that is how the like/un-like
        transition is reconstructed without shipping ``previous``).
        """
        if isinstance(msg, VocabDelta):
            self._apply_vocab_delta(msg)
            return None
        if isinstance(msg, WriteBatch):
            self._apply_writes(msg)
            return None
        if isinstance(msg, JobSlices):
            return self._score(msg)
        if isinstance(msg, StatsRequest):
            return self._stats()
        if isinstance(msg, Hello):
            if msg.shard != self.shard:
                raise TransportError(
                    f"hello for shard {msg.shard} reached shard {self.shard}"
                )
            return Ready(shard=self.shard, pid=os.getpid())
        if isinstance(msg, Shutdown):
            return None
        raise TransportError(
            f"unexpected frame {type(msg).__name__} on a worker"
        )

    def _apply_vocab_delta(self, delta: VocabDelta) -> None:
        """Append the delta's items, reproducing the parent's columns."""
        if delta.base != len(self.vocab):
            raise TransportError(
                f"vocab delta base {delta.base} does not extend a replica "
                f"of {len(self.vocab)} columns"
            )
        for offset, item in enumerate(delta.items.tolist()):
            col = self.vocab.intern(int(item))
            if col != delta.base + offset:
                raise TransportError(
                    f"item {item} already interned at column {col}"
                )

    def _apply_writes(self, batch: WriteBatch) -> None:
        """Replay routed writes through the local table.

        ``record`` recomputes the ``previous`` value from the local
        profile -- identical to the parent's, since every earlier
        write of the user was routed here first -- and the matrix's
        write hook applies the same incremental transition the
        in-process shard would.
        """
        record = self.table.record
        for user_id, item, value in zip(
            batch.user_ids.tolist(),
            batch.items.tolist(),
            batch.values.tolist(),
        ):
            record(user_id, item, value)

    def _score(self, msg: JobSlices) -> Partials:
        """Score the batch's slices; reply with wire partials.

        Users the placement routed no writes for are legal candidates
        (registered-but-silent profiles); they materialize here as
        empty rows, exactly as the shared-table matrix would build
        them.
        """
        get_or_create = self.table.get_or_create
        for piece in msg.slices:
            for user_id in piece.candidate_ids.tolist():
                get_or_create(user_id)
        partials = score_slices(self.matrix, msg.slices)
        self.batches_scored += 1
        return Partials(
            batch_id=msg.batch_id,
            partials=tuple(
                to_wire_partial(
                    piece.job_index,
                    partials[piece.job_index],
                    k=piece.k,
                    truncate=msg.truncate,
                )
                for piece in msg.slices
            ),
        )

    def _stats(self) -> StatsReply:
        matrix = self.matrix
        return StatsReply(
            users=matrix.num_rows,
            arena_live=matrix.arena_live,
            arena_garbage=matrix.arena_garbage,
            writes=matrix.writes_applied,
            compactions=matrix.compactions,
            pid=os.getpid(),
        )


def worker_main(
    sock: socket.socket,
    shard: int,
    inherited: "tuple[socket.socket, ...]" = (),
) -> None:
    """Process entry point: pump frames between ``sock`` and the host.

    ``inherited`` are the parent-side socket ends this process
    received across the fork (its own pair's and earlier workers');
    they are closed first thing, so a parent that disappears without a
    Shutdown frame produces a real EOF here instead of a socket held
    open by its own peer.

    Exits on a :class:`~repro.cluster.transport.Shutdown` frame or a
    clean EOF from the parent.  Protocol violations terminate the
    worker (the parent surfaces the broken pipe on its next exchange)
    rather than guessing at recovery.
    """
    for parent_end in inherited:
        parent_end.close()
    channel = Channel(sock)
    host = ShardHost(shard)
    try:
        while True:
            try:
                msg = channel.recv()
            except ConnectionClosedError:
                break
            reply = host.handle(msg)
            if reply is not None:
                channel.send(reply)
            if isinstance(msg, Shutdown):
                break
    finally:
        channel.close()
