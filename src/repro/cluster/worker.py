"""The out-of-process shard host.

Each worker process owns one shard's state end to end: a local
:class:`~repro.core.tables.ProfileTable` holding only the users the
placement map routed here, the shard's
:class:`~repro.engine.liked_matrix.LikedMatrix` arena mirroring it
incrementally, and a replica
:class:`~repro.engine.liked_matrix.ItemVocabulary` rebuilt from the
parent's append-only :class:`~repro.cluster.transport.VocabDelta`
frames -- so a column index means the same item here as in the parent
and on every sibling shard, without any shared memory.

Nothing enters or leaves except :mod:`repro.cluster.transport` frames:
writes arrive as :class:`~repro.cluster.transport.WriteBatch`\\ es (the
local table replays them, which drives the matrix's incremental
like/un-like transitions exactly as the parent-side matrix would see
them), jobs arrive as :class:`~repro.cluster.transport.JobSlices`, and
results leave as shard-local-top-K
:class:`~repro.cluster.transport.Partials`.  The scoring itself is
:func:`repro.cluster.scoring.score_slices` -- the same function the
in-process executors run -- so a worker's partials are bit-for-bit
what the serial executor computes for the same shard.

:class:`ShardHost` is deliberately transport-agnostic (message in,
optional reply out) so protocol handling is unit-testable without
spawning processes; :func:`worker_main` is the thin process entry
point that pumps frames between a socket and the host.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np

from repro.cluster.placement import bucket_of_id
from repro.cluster.scoring import score_slices, to_wire_partial
from repro.cluster.transport import (
    HELLO_FLAG_METRICS,
    HELLO_FLAG_NARROW,
    Channel,
    ConnectionClosedError,
    HandoffData,
    HandoffRequest,
    Hello,
    JobSlices,
    MapUpdate,
    Message,
    MetricsRequest,
    MetricsSnapshot,
    Partials,
    Ping,
    Pong,
    Ready,
    Shutdown,
    SplitBuckets,
    StatsReply,
    StatsRequest,
    TransportError,
    VocabDelta,
    WireSample,
    WireSpan,
    WriteBatch,
)
from repro.core.tables import ProfileTable
from repro.engine.liked_matrix import ItemVocabulary, LikedMatrix, MemoryPolicy
from repro.obs.exposition import sample_to_wire_parts
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import salted_id


class ShardHost:
    """One shard's state plus the frame dispatch that mutates it."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.table = ProfileTable()
        self.vocab = ItemVocabulary()
        self.matrix = LikedMatrix(self.table, vocab=self.vocab)
        self.batches_scored = 0
        #: Placement-map view seeded by the Hello handshake: the bucket
        #: count (for selecting a handed-off bucket's users locally)
        #: and the routing epoch stamped frames are validated against.
        self.num_buckets = 0
        self.map_version = 0
        self.handoffs_out = 0
        self.handoffs_in = 0
        self.splits_applied = 0
        self._handshaken = False
        #: Shard-local metrics; off until the Hello handshake raises
        #: :data:`~repro.cluster.transport.HELLO_FLAG_METRICS` (bare
        #: hosts in unit tests thus carry inert instruments).
        self.registry = MetricsRegistry(enabled=False)
        self._bind_metrics()
        self._span_seq = 0

    def _bind_metrics(self) -> None:
        """(Re)bind the hot-path instrument handles to the registry."""
        shard = str(self.shard)
        registry = self.registry
        self._jobs_total = registry.counter("hyrec_shard_jobs_total", shard=shard)
        self._batches_total = registry.counter(
            "hyrec_shard_batches_total", shard=shard
        )
        self._writes_total = registry.counter(
            "hyrec_shard_writes_total", shard=shard
        )
        self._score_seconds = registry.histogram(
            "hyrec_shard_score_seconds", shard=shard
        )

    # --- frame handlers -----------------------------------------------------

    def handle(self, msg: Message) -> Message | None:
        """Apply one message; return the reply frame if the type has one.

        Frames must be applied in arrival order: vocabulary deltas are
        cumulative, and write replay depends on every prior write of a
        user having been applied (that is how the like/un-like
        transition is reconstructed without shipping ``previous``).
        """
        if isinstance(msg, Ping):
            # Liveness probes are legal at any point in the lifecycle
            # (even pre-handshake): they mutate nothing and must keep
            # answering while the supervisor decides a worker's fate.
            return Pong(nonce=msg.nonce, shard=self.shard, pid=os.getpid())
        if isinstance(msg, VocabDelta):
            self._apply_vocab_delta(msg)
            return None
        if isinstance(msg, WriteBatch):
            self._apply_writes(msg)
            return None
        if isinstance(msg, JobSlices):
            return self._score(msg)
        if isinstance(msg, StatsRequest):
            return self._stats()
        if isinstance(msg, MetricsRequest):
            return self._metrics()
        if isinstance(msg, MapUpdate):
            self._apply_map_update(msg)
            return None
        if isinstance(msg, HandoffRequest):
            return self._extract_bucket(msg)
        if isinstance(msg, HandoffData):
            self._absorb_bucket(msg)
            return None
        if isinstance(msg, SplitBuckets):
            self._apply_split(msg)
            return None
        if isinstance(msg, Hello):
            if msg.shard != self.shard:
                raise TransportError(
                    f"hello for shard {msg.shard} reached shard {self.shard}"
                )
            if self._handshaken:
                # Routing state may only advance through the validated
                # frames (MapUpdate / handoffs); a mid-session Hello
                # would silently reset the epoch.
                raise TransportError(
                    f"duplicate hello on shard {self.shard}"
                )
            self._handshaken = True
            self.num_buckets = msg.num_buckets
            self.map_version = msg.map_version
            self.registry = MetricsRegistry(
                enabled=bool(msg.flags & HELLO_FLAG_METRICS)
            )
            self._bind_metrics()
            # Apply the coordinator's memory policy (v6) before Ready:
            # warm-start replay and every subsequent write then run
            # under the configured bounds, respawns included.
            narrow = bool(msg.flags & HELLO_FLAG_NARROW)
            if msg.evict_max_rows or msg.evict_ttl_ms or narrow:
                self.matrix.set_memory_policy(
                    MemoryPolicy(
                        max_resident_rows=msg.evict_max_rows,
                        ttl_seconds=msg.evict_ttl_ms / 1000.0,
                        narrow_dtypes=narrow,
                    )
                )
            return Ready(shard=self.shard, pid=os.getpid())
        if isinstance(msg, Shutdown):
            return None
        raise TransportError(
            f"unexpected frame {type(msg).__name__} on a worker"
        )

    def _apply_vocab_delta(self, delta: VocabDelta) -> None:
        """Append the delta's items, reproducing the parent's columns."""
        if delta.base != len(self.vocab):
            raise TransportError(
                f"vocab delta base {delta.base} does not extend a replica "
                f"of {len(self.vocab)} columns"
            )
        for offset, item in enumerate(delta.items.tolist()):
            col = self.vocab.intern(int(item))
            if col != delta.base + offset:
                raise TransportError(
                    f"item {item} already interned at column {col}"
                )

    def _apply_writes(self, batch: WriteBatch) -> None:
        """Replay routed writes through the local table.

        ``record`` recomputes the ``previous`` value from the local
        profile -- identical to the parent's, since every earlier
        write of the user was routed here first -- and the matrix's
        write hook applies the same incremental transition the
        in-process shard would.
        """
        record = self.table.record
        for user_id, item, value in zip(
            batch.user_ids.tolist(),
            batch.items.tolist(),
            batch.values.tolist(),
        ):
            record(user_id, item, value)
        self._writes_total.inc(batch.user_ids.size)

    # --- placement epochs and shard handoff ---------------------------------

    def _apply_map_update(self, msg: MapUpdate) -> None:
        """Advance the routing epoch (monotone; regressions are fatal)."""
        if msg.version < self.map_version:
            raise TransportError(
                f"map update regresses the routing epoch "
                f"({msg.version} < {self.map_version})"
            )
        self.map_version = msg.version

    def _require_epoch_advance(self, version: int, what: str) -> None:
        """A handoff frame must advance the local epoch by exactly one.

        Anything else means a lost or reordered frame: an equal or
        older version is a replayed migration, a jump means this
        worker missed a map bump its routing depends on.  Either way
        the shard's view of the map is unreliable -- fail loudly.
        """
        if version != self.map_version + 1:
            raise TransportError(
                f"{what} for epoch {version} does not advance this "
                f"worker's epoch {self.map_version} by one"
            )

    def _apply_split(self, msg: SplitBuckets) -> None:
        """Refine the local bucket count (v5 elastic topology).

        The new count must be an exact multiple of the current one --
        that is the modulo-stability precondition under which no user
        changes owner at split time -- and the epoch must advance by
        exactly one, handoff-style.  A worker that misses a split would
        select users under a stale bucket numbering on its next
        handoff; the epoch discipline turns that into a loud
        ``TransportError`` instead.
        """
        if self.num_buckets < 1:
            raise TransportError("bucket split before the Hello handshake")
        if (
            msg.num_buckets <= self.num_buckets
            or msg.num_buckets % self.num_buckets
        ):
            raise TransportError(
                f"bucket split to {msg.num_buckets} is not a proper "
                f"multiple of the current {self.num_buckets}"
            )
        self._require_epoch_advance(msg.version, "bucket split")
        self.num_buckets = msg.num_buckets
        self.map_version = msg.version
        self.splits_applied += 1

    def _extract_bucket(self, msg: HandoffRequest) -> HandoffData:
        """Old-owner side of a migration: replay out, then evict.

        The reply carries the bucket's users' current value per rated
        item (the warm-start form -- bit-equivalent to their write
        history for every liked/rated read), in this table's insertion
        order.  The users then leave this shard entirely: profiles are
        removed and their matrix rows invalidated, so post-migration
        stats and scoring behave as if the users were never routed
        here.
        """
        if self.num_buckets < 1:
            raise TransportError("handoff before the Hello handshake")
        if not 0 <= msg.bucket < self.num_buckets:
            raise TransportError(
                f"handoff bucket {msg.bucket} out of range "
                f"[0, {self.num_buckets})"
            )
        self._require_epoch_advance(msg.version, "handoff request")
        moved = [
            user_id
            for user_id in self.table
            if bucket_of_id(user_id, self.num_buckets) == msg.bucket
        ]
        user_ids: list[int] = []
        items: list[int] = []
        values: list[float] = []
        for user_id in moved:
            profile = self.table.get(user_id)
            for item in profile.rated_items():
                value = profile.value_of(item)
                assert value is not None  # rated_items() lists opinions
                user_ids.append(user_id)
                items.append(item)
                values.append(value)
        for user_id in moved:
            self.table.remove(user_id)
            self.matrix.refresh(user_id)  # drop the row; dirty postings
        self.map_version = msg.version
        self.handoffs_out += 1
        return HandoffData(
            bucket=msg.bucket,
            version=msg.version,
            user_ids=np.asarray(user_ids, dtype=np.int64),
            items=np.asarray(items, dtype=np.int64),
            values=np.asarray(values, dtype=np.float64),
        )

    def _absorb_bucket(self, msg: HandoffData) -> None:
        """New-owner side of a migration: replay the bucket's rows in.

        Every row must actually belong to the advertised bucket (a
        mismatch means the parent forwarded a corrupt or misrouted
        frame), and every item must already be interned by the vocab
        replica (the parent flushes deltas before forwarding), so the
        local replay assigns exactly the parent's columns.
        """
        if self.num_buckets < 1:
            raise TransportError("handoff before the Hello handshake")
        self._require_epoch_advance(msg.version, "handoff data")
        for user_id in np.unique(msg.user_ids).tolist():
            if bucket_of_id(user_id, self.num_buckets) != msg.bucket:
                raise TransportError(
                    f"handoff for bucket {msg.bucket} carries user "
                    f"{user_id} of bucket "
                    f"{bucket_of_id(user_id, self.num_buckets)}"
                )
        record = self.table.record
        for user_id, item, value in zip(
            msg.user_ids.tolist(), msg.items.tolist(), msg.values.tolist()
        ):
            record(user_id, item, value)
        self.map_version = msg.version
        self.handoffs_in += 1

    def _score(self, msg: JobSlices) -> Partials:
        """Score the batch's slices; reply with wire partials.

        Users the placement routed no writes for are legal candidates
        (registered-but-silent profiles); they materialize here as
        empty rows, exactly as the shared-table matrix would build
        them.

        The batch's epoch stamp must match this worker's: a stale
        stamp means the batch was scattered under a map that has since
        moved a bucket, and scoring it here could silently fabricate
        empty rows for users this shard no longer owns.
        """
        if msg.map_version != self.map_version:
            raise TransportError(
                f"job batch {msg.batch_id} stamped with stale map "
                f"version {msg.map_version} (worker epoch "
                f"{self.map_version})"
            )
        get_or_create = self.table.get_or_create
        for piece in msg.slices:
            for user_id in piece.candidate_ids.tolist():
                get_or_create(user_id)
        start_ns = time.perf_counter_ns()
        partials = score_slices(self.matrix, msg.slices)
        dur_ns = time.perf_counter_ns() - start_ns
        self.batches_scored += 1
        self._batches_total.inc()
        self._jobs_total.inc(len(msg.slices))
        self._score_seconds.observe(dur_ns / 1e9)
        spans: tuple[WireSpan, ...] = ()
        if msg.trace_id:
            # The batch is traced: ship the measured score span so the
            # parent's tracer stitches it under its score phase.  Span
            # ids are pid-salted, so they cannot collide with ids the
            # parent minted for the same trace.
            self._span_seq += 1
            spans = (
                WireSpan(
                    name=f"shard{self.shard}:score",
                    span_id=salted_id(self._span_seq),
                    parent_id=msg.trace_parent,
                    start_us=start_ns // 1000,
                    dur_us=dur_ns // 1000,
                    pid=os.getpid(),
                ),
            )
        return Partials(
            batch_id=msg.batch_id,
            partials=tuple(
                to_wire_partial(
                    piece.job_index,
                    partials[piece.job_index],
                    k=piece.k,
                    truncate=msg.truncate,
                )
                for piece in msg.slices
            ),
            spans=spans,
        )

    def _metrics(self) -> MetricsSnapshot:
        """Flatten the local registry snapshot for the parent.

        Snapshots are non-destructive, so the parent may poll at any
        cadence without double-counting; a disabled registry answers
        with an empty sample list.
        """
        samples = []
        for sample in self.registry.snapshot():
            kind, name, labels, values, bounds = sample_to_wire_parts(sample)
            samples.append(
                WireSample(
                    kind=kind,
                    name=name,
                    labels=labels,
                    values=np.asarray(values, dtype=np.float64),
                    bounds=np.asarray(bounds, dtype=np.float64),
                )
            )
        return MetricsSnapshot(shard=self.shard, samples=tuple(samples))

    def _stats(self) -> StatsReply:
        matrix = self.matrix
        return StatsReply(
            users=matrix.num_rows,
            arena_live=matrix.arena_live,
            arena_garbage=matrix.arena_garbage,
            writes=matrix.writes_applied,
            compactions=matrix.compactions,
            pid=os.getpid(),
            evictions=matrix.evictions,
            arena_capacity=matrix.arena_capacity,
        )


def worker_main(
    sock: socket.socket,
    shard: int,
    inherited: "tuple[socket.socket, ...]" = (),
) -> None:
    """Process entry point: pump frames between ``sock`` and the host.

    ``inherited`` are the parent-side socket ends this process
    received across the fork (its own pair's and earlier workers');
    they are closed first thing, so a parent that disappears without a
    Shutdown frame produces a real EOF here instead of a socket held
    open by its own peer.

    Exits on a :class:`~repro.cluster.transport.Shutdown` frame or a
    clean EOF from the parent.  Protocol violations terminate the
    worker (the parent surfaces the broken pipe on its next exchange)
    rather than guessing at recovery.
    """
    for parent_end in inherited:
        parent_end.close()
    channel = Channel(sock)
    host = ShardHost(shard)
    try:
        while True:
            try:
                msg = channel.recv()
            except ConnectionClosedError:
                break
            reply = host.handle(msg)
            if reply is not None:
                channel.send(reply)
            if isinstance(msg, Shutdown):
                break
    finally:
        channel.close()
