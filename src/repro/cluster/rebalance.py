"""Churn-driven shard rebalancing over the movable placement map.

:class:`ShardRebalancer` closes the elasticity loop the cluster layer
was missing: placement used to be a pure hash, so a hot or churning
shard could never shed load.  The rebalancer watches the same write
stream the per-shard ``ServerStats.shards`` counters aggregate --
it subscribes to the shared :class:`~repro.core.tables.ProfileTable`
and histograms routed writes *per placement bucket* -- and, when the
per-shard spread exceeds a configurable threshold, migrates whole
buckets from the hottest shard to the coldest through
:meth:`~repro.cluster.coordinator.ClusterCoordinator.migrate_bucket`
(the live handoff path: drain, extract, replay, atomic map bump,
epoch broadcast).

Why buckets, not shards, as the unit of accounting: the per-shard
load is just the owner-table grouping of the per-bucket histogram
(`np.bincount(owners, weights=bucket_writes)`), but only the bucket
resolution says *which* slice of a hot shard to move -- and the
histogram follows the bucket across migrations, so repeated
rebalances see consistent history (worker-side ``writes`` counters,
by contrast, double-count handoff replays).

Exactness: migrations never change results -- parity before, during,
and after any move is enforced by ``tests/test_rebalance.py`` for
every shard count and executor.  The rebalancer therefore only ever
trades *where* work happens, never *what* is computed.

Runs in two modes, both driven by ``HyRecConfig.rebalance_*`` knobs:
manually (call :meth:`rebalance` from an operator loop) or on a
write-count cadence (``rebalance_interval`` writes between checks,
evaluated inside the write listener -- the in-process stand-in for a
periodic control loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator

if TYPE_CHECKING:
    from repro.cluster.scheduler import BatchScheduler

__all__ = ["BucketMove", "ShardRebalancer"]


@dataclass(frozen=True)
class BucketMove:
    """One applied (or proposed) bucket migration."""

    bucket: int
    source: int  # shard the bucket left
    target: int  # shard the bucket joined
    writes: int  # routed writes accounted to the bucket so far
    version: int  # map version the move created (0 for proposals)


class ShardRebalancer:
    """Threshold-driven bucket migration off the hottest shard."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        threshold: float = 2.0,
        max_moves: int = 4,
        interval: int = 0,
        scheduler: "BatchScheduler | None" = None,
    ) -> None:
        """
        Args:
            coordinator: The cluster to balance; the rebalancer reads
                its placement map and shared table and applies moves
                through its ``migrate_bucket``.
            threshold: Max/min per-shard write-load ratio above which
                a rebalance proposes moves (must exceed 1.0; the
                coldest shard's load is floored at one write so a
                zero-load shard triggers, not divides by zero).
            max_moves: Migration budget per :meth:`rebalance` call --
                a control-loop safety valve, not a correctness knob.
            interval: Routed writes between automatic rebalance
                checks; ``0`` disables the cadence (manual only).
            scheduler: Optional request-coalescing window to drain
                before migrating, so no admitted-but-undispatched job
                spans a map change.
        """
        if threshold <= 1.0:
            raise ValueError(
                f"threshold must exceed 1.0, got {threshold}"
            )
        if max_moves < 1:
            raise ValueError(
                f"max_moves must be at least 1, got {max_moves}"
            )
        if interval < 0:
            raise ValueError(f"interval cannot be negative, got {interval}")
        self.coordinator = coordinator
        self.threshold = threshold
        self.max_moves = max_moves
        self.interval = interval
        #: Drained (flushed) before any migration; assignable after
        #: construction because the scheduler is typically built on
        #: top of the coordinator later.
        self.scheduler = scheduler
        self._bucket_writes = np.zeros(
            coordinator.placement.num_buckets, dtype=np.int64
        )
        self.writes_seen = 0
        self._next_check = interval
        self.moves_applied: list[BucketMove] = []
        self._rebalancing = False
        coordinator.table.add_listener(self._on_write)

    def close(self) -> None:
        """Detach the write listener (idempotent)."""
        self.coordinator.table.remove_listener(self._on_write)

    # --- the load signal ----------------------------------------------------

    def _on_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable hook: account the write to its bucket.

        Registered after the engine's own write router (the server
        constructs the cluster first), so by the time a cadence check
        migrates anything, the triggering write has already been
        routed/buffered under the old map and the drain delivers it.
        """
        del item, value, previous
        placement = self.coordinator.placement
        self._bucket_writes[placement.bucket_of(user_id)] += 1
        self.writes_seen += 1
        if (
            self.interval > 0
            and self.writes_seen >= self._next_check
            and not self._rebalancing
        ):
            self._next_check = self.writes_seen + self.interval
            self.rebalance()

    def shard_loads(self) -> np.ndarray:
        """Routed writes per shard under the *current* owner table."""
        placement = self.coordinator.placement
        return np.bincount(
            placement.owners(),
            weights=self._bucket_writes,
            minlength=placement.num_shards,
        ).astype(np.int64)

    def imbalance(self) -> float:
        """Max/min per-shard write-load ratio (min floored at 1)."""
        loads = self.shard_loads()
        return float(loads.max()) / float(max(int(loads.min()), 1))

    # --- proposing and applying moves ---------------------------------------

    def propose(self) -> BucketMove | None:
        """The next bucket move, or ``None`` when balanced enough.

        Donor is the hottest shard, receiver the coldest.  Among the
        donor's loaded buckets, pick the one minimizing the resulting
        donor/receiver gap ``|gap - 2w|`` subject to ``w < gap`` --
        moving it strictly shrinks the pairwise spread, so a sequence
        of proposals always terminates.
        """
        placement = self.coordinator.placement
        if placement.num_shards < 2:
            return None
        loads = self.shard_loads()
        donor = int(loads.argmax())
        receiver = int(loads.argmin())
        if loads[donor] <= self.threshold * max(int(loads[receiver]), 1):
            return None
        gap = int(loads[donor]) - int(loads[receiver])
        buckets = placement.buckets_owned_by(donor)
        weights = self._bucket_writes[buckets]
        movable = weights > 0
        candidates = buckets[movable]
        candidate_weights = weights[movable]
        improving = candidate_weights < gap
        if not improving.any():
            return None
        candidates = candidates[improving]
        candidate_weights = candidate_weights[improving]
        best = int(np.argmin(np.abs(gap - 2 * candidate_weights)))
        return BucketMove(
            bucket=int(candidates[best]),
            source=donor,
            target=receiver,
            writes=int(candidate_weights[best]),
            version=0,
        )

    def _cluster_healthy(self) -> bool:
        """False while a worker is down, dead, or mid-recovery.

        Migrating a bucket through a shard whose worker needs a
        respawn would race the warm-start replay (and fail loudly
        anyway -- the handoff path refuses unhealthy participants), so
        the rebalancer simply pauses: skipped checks cost nothing, and
        the write histogram keeps accumulating for the next pass.
        In-process executors have no supervisor and are always healthy.
        """
        supervisor = getattr(self.coordinator.executor, "supervisor", None)
        return supervisor is None or supervisor.healthy

    def rebalance(self) -> list[BucketMove]:
        """Propose-and-apply moves until balanced or out of budget.

        Before the first move the scheduler window (if any) is
        drained, so every admitted job dispatches under the epoch it
        was scattered for.  The per-worker counters surfaced by
        ``ServerStats.shards`` remain the operator's live view; this
        method's return value records what actually moved.

        Pauses (returns no moves) while any worker is down or a
        recovery is in flight; see :meth:`_cluster_healthy`.
        """
        if not self._cluster_healthy():
            return []
        applied: list[BucketMove] = []
        self._rebalancing = True
        try:
            while len(applied) < self.max_moves:
                move = self.propose()
                if move is None:
                    break
                if self.scheduler is not None:
                    self.scheduler.flush()
                version = self.coordinator.migrate_bucket(
                    move.bucket, move.target
                )
                move = BucketMove(
                    bucket=move.bucket,
                    source=move.source,
                    target=move.target,
                    writes=move.writes,
                    version=version,
                )
                applied.append(move)
                self.moves_applied.append(move)
        finally:
            self._rebalancing = False
        return applied
