"""Churn-driven rebalancing and autoscaling over the movable placement map.

:class:`ShardRebalancer` closes the elasticity loop the cluster layer
was missing: placement used to be a pure hash, so a hot or churning
shard could never shed load.  The rebalancer watches the same write
stream the per-shard ``ServerStats.shards`` counters aggregate --
it subscribes to the shared :class:`~repro.core.tables.ProfileTable`
and histograms routed writes *per placement bucket* -- and, when the
per-shard spread exceeds a configurable threshold, migrates whole
buckets from the hottest shard to the coldest through
:meth:`~repro.cluster.coordinator.ClusterCoordinator.migrate_bucket`
(the live handoff path: drain, extract, replay, atomic map bump,
epoch broadcast).

Why buckets, not shards, as the unit of accounting: the per-shard
load is just the owner-table grouping of the per-bucket histogram
(`np.bincount(owners, weights=bucket_writes)`), but only the bucket
resolution says *which* slice of a hot shard to move -- and the
histogram follows the bucket across migrations, so repeated
rebalances see consistent history (worker-side ``writes`` counters,
by contrast, double-count handoff replays).

On top of move proposals the rebalancer is the cluster's
**autoscaler**: per control-loop pass it compares the mean writes per
shard accumulated since the previous pass against watermarks --
growing the fleet one shard past ``high_water`` (up to
``max_shards``) and shrinking it below ``low_water`` (down to
``min_shards``), each step an ordinary
:meth:`~repro.cluster.coordinator.ClusterCoordinator.add_shard` /
``remove_shard`` whose bucket migrations ride the live handoff path.
And when the spread is pathological but no move can help -- one viral
bucket dominating its donor (``split_ratio``) -- it **splits the
bucket space** (:meth:`ClusterCoordinator.split_buckets`): the
modular bucket hash is stable under multiplication of the bucket
count, so the split moves no data, it only makes the hot bucket's
cohabitants separately movable on the next proposal.

Exactness: migrations, joins, retires, and splits never change
results -- parity before, during, and after any topology change is
enforced by ``tests/test_rebalance.py`` and
``tests/test_elasticity.py`` for every shard count and executor.  The
control loop therefore only ever trades *where* work happens, never
*what* is computed.

Cadence: the control loop runs on a **background timer thread**, so a
multi-bucket handoff overlaps live serving instead of stalling the
write that tripped it.  ``interval`` (routed writes between checks)
*signals* the thread; ``autoscale_interval`` (seconds) caps how long
it sleeps without a signal.  The write listener itself only bumps the
histogram and sets an event -- it never migrates, so recording a
profile write never blocks behind a handoff.  Operators (and tests)
can also drive the loop synchronously via :meth:`run_once` /
:meth:`quiesce`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.placement import bucket_of_id

if TYPE_CHECKING:
    from repro.cluster.scheduler import BatchScheduler

__all__ = ["BucketMove", "ShardRebalancer"]

#: Hard ceiling on bucket-space refinement: splits double the owner
#: table, and past this the per-bucket resolution is far finer than
#: any load signal -- further splits only cost memory.
MAX_BUCKETS = 1 << 16


@dataclass(frozen=True)
class BucketMove:
    """One applied (or proposed) bucket migration."""

    bucket: int
    source: int  # shard the bucket left
    target: int  # shard the bucket joined
    writes: int  # routed writes accounted to the bucket so far
    version: int  # map version the move created (0 for proposals)


class ShardRebalancer:
    """Watermark autoscaler + threshold-driven bucket migration."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        threshold: float = 2.0,
        max_moves: int = 4,
        interval: int = 0,
        scheduler: "BatchScheduler | None" = None,
        autoscale_interval: float = 0.0,
        min_shards: int = 1,
        max_shards: int = 0,
        high_water: float = 0.0,
        low_water: float = 0.0,
        split_ratio: float = 0.0,
    ) -> None:
        """
        Args:
            coordinator: The cluster to balance; the rebalancer reads
                its placement map and shared table and applies moves
                through its ``migrate_bucket`` (and topology changes
                through ``add_shard``/``remove_shard``/``split_buckets``).
            threshold: Max/min per-shard write-load ratio above which
                a rebalance proposes moves (must exceed 1.0; the
                coldest shard's load is floored at one write so a
                zero-load shard triggers, not divides by zero).
            max_moves: Migration budget per :meth:`rebalance` call --
                a control-loop safety valve, not a correctness knob.
            interval: Routed writes between automatic control-loop
                passes; ``0`` disables the write-count cadence.  The
                pass runs on the background thread -- the triggering
                write returns immediately.
            scheduler: Optional request-coalescing window to drain
                before migrating, so no admitted-but-undispatched job
                spans a map change.
            autoscale_interval: Seconds between timer-driven passes of
                the control loop; ``0`` disables the timer (the loop
                then only runs on write-count kicks or explicit
                :meth:`run_once` calls).
            min_shards: Floor the autoscaler will never shrink below.
            max_shards: Ceiling for growth; ``0`` disables growing.
            high_water: Mean writes/shard per pass above which the
                fleet grows by one; ``0`` disables growing.
            low_water: Mean writes/shard per pass below which the
                fleet shrinks by one; ``0`` disables shrinking.
            split_ratio: Fraction of the donor's load one bucket must
                carry -- when no move can improve the spread -- to
                trigger a bucket-space split; ``0`` disables splits.
        """
        if threshold <= 1.0:
            raise ValueError(
                f"threshold must exceed 1.0, got {threshold}"
            )
        if max_moves < 1:
            raise ValueError(
                f"max_moves must be at least 1, got {max_moves}"
            )
        if interval < 0:
            raise ValueError(f"interval cannot be negative, got {interval}")
        if autoscale_interval < 0:
            raise ValueError(
                f"autoscale_interval cannot be negative, got "
                f"{autoscale_interval}"
            )
        if min_shards < 1:
            raise ValueError(
                f"min_shards must be at least 1, got {min_shards}"
            )
        if max_shards < 0:
            raise ValueError(
                f"max_shards cannot be negative, got {max_shards}"
            )
        if max_shards and max_shards < min_shards:
            raise ValueError(
                f"max_shards ({max_shards}) cannot undercut min_shards "
                f"({min_shards})"
            )
        if low_water < 0 or high_water < 0:
            raise ValueError("watermarks cannot be negative")
        if high_water and low_water and low_water >= high_water:
            raise ValueError(
                f"low_water ({low_water}) must stay below high_water "
                f"({high_water})"
            )
        if not 0.0 <= split_ratio <= 1.0:
            raise ValueError(
                f"split_ratio must be in [0, 1], got {split_ratio}"
            )
        self.coordinator = coordinator
        self.threshold = threshold
        self.max_moves = max_moves
        self.interval = interval
        self.autoscale_interval = autoscale_interval
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.high_water = high_water
        self.low_water = low_water
        self.split_ratio = split_ratio
        #: Drained (flushed) before any migration; assignable after
        #: construction because the scheduler is typically built on
        #: top of the coordinator later.
        self.scheduler = scheduler
        self._bucket_writes = np.zeros(
            coordinator.placement.num_buckets, dtype=np.int64
        )
        self.writes_seen = 0
        self._next_check = interval
        self._window_cursor = 0  # writes_seen at the last autoscale pass
        self.moves_applied: list[BucketMove] = []
        #: ``("grow" | "shrink", resulting shard count)`` per action.
        self.scale_actions: list[tuple[str, int]] = []
        self.splits_applied = 0
        # One lock serializes every control-loop pass, whether it runs
        # on the timer thread or synchronously via run_once()/quiesce();
        # reentrant so rebalance() nests inside run_once().
        self._run_lock = threading.RLock()
        self._kick = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        coordinator.table.add_listener(self._on_write)
        if interval > 0 or autoscale_interval > 0:
            self._thread = threading.Thread(
                target=self._loop, name="hyrec-autoscaler", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop the control-loop thread, detach the listener (idempotent)."""
        self.coordinator.table.remove_listener(self._on_write)
        self._stop.set()
        self._kick.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    # --- the control-loop thread --------------------------------------------

    def _loop(self) -> None:
        timeout = (
            self.autoscale_interval if self.autoscale_interval > 0 else None
        )
        while not self._stop.is_set():
            self._kick.wait(timeout=timeout)
            if self._stop.is_set():
                return
            self._kick.clear()
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - loop must survive
                # A failed pass (e.g. a handoff participant died mid
                # move) marks the culprit suspect for recovery; the
                # control loop itself carries on with the next tick.
                self.coordinator.obs.events.record(
                    "autoscale_error", error=repr(exc)
                )

    def run_once(self) -> list[BucketMove]:
        """One synchronous control-loop pass: autoscale, then rebalance.

        Safe to call from any thread (it takes the pass lock the
        timer thread uses); tests and the autoscale benchmark drive
        the loop deterministically through this.
        """
        with self._run_lock:
            self.autoscale()
            return self.rebalance()

    def quiesce(self) -> list[BucketMove]:
        """Run a full pass on the calling thread and wait for it.

        Because the pass lock serializes with the timer thread, the
        caller's own pass observes every write recorded before the
        call -- after this returns, the control loop is caught up.
        """
        return self.run_once()

    # --- the load signal ----------------------------------------------------

    def _on_write(
        self, user_id: int, item: int, value: float, previous: float | None
    ) -> None:
        """ProfileTable hook: account the write to its bucket.

        Never migrates (and never blocks on a migration): the
        write-count cadence only *signals* the control-loop thread.
        The bucket index uses the histogram's own length as the
        modulus, not the live map's -- after a concurrent split the
        old resolution stays exact (an old bucket is the union of the
        new buckets congruent to it), and the histogram is re-tiled
        lazily on the control thread (:meth:`_sync_histogram`).
        """
        del item, value, previous
        hist = self._bucket_writes
        hist[bucket_of_id(user_id, hist.shape[0])] += 1
        self.writes_seen += 1
        if self.interval > 0 and self.writes_seen >= self._next_check:
            self._next_check = self.writes_seen + self.interval
            self._kick.set()

    def _sync_histogram(self) -> None:
        """Re-tile the per-bucket histogram after a bucket-space split.

        ``new[b] = old[b % old_n] // factor`` (remainder to the low
        copy): a deterministic estimate that preserves the per-shard
        totals -- the split itself moved nothing, so the owner-table
        grouping must not jump.  Fresh writes then re-accumulate at
        the fine resolution, which is what the next split/move
        decisions should key on anyway.
        """
        placement = self.coordinator.placement
        old = self._bucket_writes
        old_n = old.shape[0]
        new_n = placement.num_buckets
        if new_n == old_n:
            return
        factor = new_n // old_n
        shares = old // factor
        new_hist = np.tile(shares, factor)
        new_hist[:old_n] += old - shares * factor
        self._bucket_writes = new_hist

    def shard_loads(self) -> np.ndarray:
        """Routed writes per shard under the *current* owner table."""
        placement = self.coordinator.placement
        self._sync_histogram()
        return np.bincount(
            placement.owners(),
            weights=self._bucket_writes,
            minlength=placement.num_shards,
        ).astype(np.int64)

    def imbalance(self) -> float:
        """Max/min per-shard write-load ratio (min floored at 1)."""
        loads = self.shard_loads()
        return float(loads.max()) / float(max(int(loads.min()), 1))

    # --- autoscaling ---------------------------------------------------------

    def autoscale(self) -> str | None:
        """One watermark step: grow, shrink, or hold the fleet.

        Compares the mean writes per shard accumulated since the last
        pass against the watermarks and applies at most one topology
        action -- single-stepping keeps each pass short (the next tick
        takes the next step), so serving interleaves with a scale-out.
        Returns ``"grow"``/``"shrink"`` or ``None``.
        """
        with self._run_lock:
            window = self.writes_seen - self._window_cursor
            self._window_cursor = self.writes_seen
            if (not self.high_water and not self.low_water) or window < 0:
                return None
            if not self._cluster_healthy():
                return None
            coordinator = self.coordinator
            shards = coordinator.num_shards
            mean = window / max(shards, 1)
            if (
                self.high_water > 0
                and self.max_shards > 0
                and mean > self.high_water
                and shards < self.max_shards
            ):
                coordinator.add_shard()
                self.scale_actions.append(("grow", coordinator.num_shards))
                return "grow"
            if (
                self.low_water > 0
                and mean < self.low_water
                and shards > self.min_shards
            ):
                coordinator.remove_shard()
                self.scale_actions.append(("shrink", coordinator.num_shards))
                return "shrink"
            return None

    def _maybe_split(self) -> bool:
        """Split the bucket space when one viral bucket blocks all moves.

        Called when the spread exceeds the threshold but no owned
        bucket can improve it -- which means the donor's load is
        concentrated in buckets at least as heavy as the whole gap.
        If the hottest such bucket carries ``split_ratio`` of the
        donor's load, doubling the bucket count makes its cohabitants
        separately movable (the split itself moves nothing).  At most
        one split per pass: fresh writes must confirm the hot spot at
        the finer resolution before the next one.
        """
        if self.split_ratio <= 0.0:
            return False
        placement = self.coordinator.placement
        if placement.num_buckets * 2 > MAX_BUCKETS:
            return False
        loads = self.shard_loads()
        donor = int(loads.argmax())
        donor_load = int(loads[donor])
        if donor_load <= 0:
            return False
        if self.imbalance() <= self.threshold:
            return False
        buckets = placement.buckets_owned_by(donor)
        weights = self._bucket_writes[buckets]
        hottest = int(weights.max()) if weights.size else 0
        if hottest < self.split_ratio * donor_load:
            return False
        self.coordinator.split_buckets(2)
        self._sync_histogram()
        self.splits_applied += 1
        return True

    # --- proposing and applying moves ---------------------------------------

    def propose(self) -> BucketMove | None:
        """The next bucket move, or ``None`` when balanced enough.

        Donor is the hottest shard, receiver the coldest.  Among the
        donor's loaded buckets, pick the one minimizing the resulting
        donor/receiver gap ``|gap - 2w|`` subject to ``w < gap`` --
        moving it strictly shrinks the pairwise spread, so a sequence
        of proposals always terminates.
        """
        placement = self.coordinator.placement
        if placement.num_shards < 2:
            return None
        loads = self.shard_loads()
        donor = int(loads.argmax())
        receiver = int(loads.argmin())
        if loads[donor] <= self.threshold * max(int(loads[receiver]), 1):
            return None
        gap = int(loads[donor]) - int(loads[receiver])
        buckets = placement.buckets_owned_by(donor)
        weights = self._bucket_writes[buckets]
        movable = weights > 0
        candidates = buckets[movable]
        candidate_weights = weights[movable]
        improving = candidate_weights < gap
        if not improving.any():
            return None
        candidates = candidates[improving]
        candidate_weights = candidate_weights[improving]
        best = int(np.argmin(np.abs(gap - 2 * candidate_weights)))
        return BucketMove(
            bucket=int(candidates[best]),
            source=donor,
            target=receiver,
            writes=int(candidate_weights[best]),
            version=0,
        )

    def _cluster_healthy(self) -> bool:
        """False while a worker is down, dead, or mid-recovery.

        Migrating a bucket through a shard whose worker needs a
        respawn would race the warm-start replay (and fail loudly
        anyway -- the handoff path refuses unhealthy participants), so
        the rebalancer simply pauses: skipped checks cost nothing, and
        the write histogram keeps accumulating for the next pass.
        In-process executors have no supervisor and are always healthy.
        """
        supervisor = getattr(self.coordinator.executor, "supervisor", None)
        return supervisor is None or supervisor.healthy

    def rebalance(self) -> list[BucketMove]:
        """Propose-and-apply moves until balanced or out of budget.

        Before the first move the scheduler window (if any) is
        drained, so every admitted job dispatches under the epoch it
        was scattered for.  The per-worker counters surfaced by
        ``ServerStats.shards`` remain the operator's live view; this
        method's return value records what actually moved.  When the
        spread is hot but unmovable (a single viral bucket), a
        bucket-space split (:meth:`_maybe_split`) unblocks the next
        proposal.

        Pauses (returns no moves) while any worker is down or a
        recovery is in flight; see :meth:`_cluster_healthy`.
        """
        with self._run_lock:
            if not self._cluster_healthy():
                return []
            applied: list[BucketMove] = []
            split_this_pass = False
            while len(applied) < self.max_moves:
                move = self.propose()
                if move is None:
                    if split_this_pass or not self._maybe_split():
                        break
                    split_this_pass = True
                    continue
                if self.scheduler is not None:
                    self.scheduler.flush()
                version = self.coordinator.migrate_bucket(
                    move.bucket, move.target
                )
                move = BucketMove(
                    bucket=move.bucket,
                    source=move.source,
                    target=move.target,
                    writes=move.writes,
                    version=version,
                )
                applied.append(move)
                self.moves_applied.append(move)
            return applied
