"""Scatter/gather orchestration over the sharded liked matrix.

:class:`ClusterCoordinator` executes :class:`~repro.engine.jobs.EngineJob`
requests across N shards:

1. **Scatter** -- each job's (token-sorted) candidate list is split by
   hash placement; every candidate keeps its *position* in the job's
   global order, so tokens never travel to the shards.  The
   requester's liked/rated sets map to columns *once* per job: the
   shards share one item vocabulary (the process executor replicates
   it via append-only deltas), so the same column array is valid
   everywhere.  The scatter output is per-shard
   :class:`~repro.cluster.scoring.ShardSlice` lists -- pure data, so
   the same slices can run on an in-process shard or ship to a worker
   process unchanged.
2. **Shard-local scoring** -- per shard,
   :func:`~repro.cluster.scoring.score_slices` covers all jobs of the
   batch with *one* CSR gather, one
   :func:`~repro.engine.kernels.segment_sums` pass, and (for the
   config-uniform metric of a real deployment) one
   :func:`~repro.engine.kernels.similarity_scores` call.  In-process
   executors return zero-copy
   :class:`~repro.cluster.scoring.ShardPartial` views; worker
   processes return :class:`~repro.cluster.scoring.WirePartial`\\ s --
   scores truncated to the shard-local top-K (an exactness-preserving
   cut: every global top-K member is inside its own shard's top-K)
   and popularity pre-histogrammed into sparse column counts.
3. **Merge** -- per job, one ``lexsort`` over the concatenated
   partials ranks by ``(-score, position)``; positions follow the
   job's ascending-token order, so this *is* the Python engine's
   ``(-score, token)`` total order.  Popularity merges as one
   ``bincount`` over concatenated liked-column segments (in-process)
   or as an integer sum of sparse histograms (wire partials) -- the
   two are the same exact integers, after which the recommendation
   step is literally the single-matrix one (zero the rated columns,
   ``(-count, str(item))`` selection).

Because the shards partition the candidate set, the merged outputs are
*bit-for-bit* the single-matrix engine's outputs: intersection counts
are exact integers, similarity scores are elementwise float64 (no
cross-candidate reductions, hence no float reassociation), and both
tie-breaks use the same total orders.  ``tests/test_cluster_parity.py``
enforces parity for 1/2/4/8 shards under all three executors.

Shard tasks touch only their own shard's state (the shared vocabulary
is read-mostly, with locked interning; process workers own their state
outright), so the coordinator can run them on any
:mod:`~repro.cluster.executors` back-end without changing a single
output bit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.executors import ShardExecutor, SerialExecutor
from repro.cluster.placement import ShardPlacement, rendezvous_owner
from repro.cluster.scoring import (
    ShardPartial,
    ShardSlice,
    merge_popularity_sparse,
    score_slices,
)
from repro.cluster.sharded_matrix import ShardedLikedMatrix, ShardStats
from repro.cluster.supervisor import ShardUnavailable
from repro.core.jobs import JobResult
from repro.core.tables import ProfileTable
from repro.engine.jobs import EngineJob
from repro.engine.kernels import select_top_items
from repro.obs import Observability
from repro.obs.registry import MetricSample

__all__ = [
    "ClusterCoordinator",
    "ShardPartial",
    "merge_popularity",
    "merge_popularity_sparse",
    "merge_topk",
]

_EMPTY = np.zeros(0, dtype=np.int64)
_EMPTY_F = np.zeros(0, dtype=np.float64)


@dataclass(frozen=True)
class _Query:
    """Per-job requester context, mapped to shared columns once."""

    cols: np.ndarray  # columns of the user's liked items
    liked_count: int  # |L_u| (drives the similarity denominators)
    rated_cols: np.ndarray  # columns of every rated item (exclusions)


def merge_topk(
    score_parts: Sequence[np.ndarray],
    position_parts: Sequence[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact global top-``k`` from per-shard partial scores.

    Shards hold disjoint candidates, so ranking the union under the
    engine's total order is exact; positions follow the job's
    ascending-token order, so ``(-score, position)`` *is* the Python
    engine's ``(-score, token)``.  (``-0.0 == 0.0`` in IEEE-754, so
    zero-score ties still fall through to the position.)  Works
    unchanged on shard-side-truncated partials: any global top-``k``
    member is inside its own shard's top-``k``.

    Returns ``(positions, scores)`` of the winners, best first.
    """
    if not score_parts:
        return _EMPTY, _EMPTY_F
    if len(score_parts) == 1:
        scores = score_parts[0]
        positions = position_parts[0]
    else:
        scores = np.concatenate(score_parts)
        positions = np.concatenate(position_parts)
    top = np.lexsort((positions, -scores))[:k]
    return positions[top], scores[top]


def merge_popularity(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Dense per-column like counts from per-shard column segments.

    Every part lists the liked-item columns this job's candidates hold
    on one shard (columns are shared cluster-wide).  Candidates are
    disjoint across shards, so one ``bincount`` over the concatenation
    is exactly the single-matrix popularity pass -- integer-exact, and
    cheaper than summing per-shard histograms.  (Wire partials arrive
    pre-histogrammed instead; those merge through
    :func:`~repro.cluster.scoring.merge_popularity_sparse`, which
    produces the same integers.)
    """
    parts = [part for part in parts if part.size]
    if not parts:
        return _EMPTY
    cols = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return np.bincount(cols)


class ClusterCoordinator:
    """Fans engine jobs out to shards and merges exact results."""

    def __init__(
        self,
        table: ProfileTable,
        num_shards: int = 4,
        executor: ShardExecutor | None = None,
        placement: ShardPlacement | None = None,
        obs: Observability | None = None,
        memory=None,
    ) -> None:
        self._table = table
        self.executor = executor if executor is not None else SerialExecutor()
        if obs is None:
            # Share the executor's instance (the server hands the same
            # one to both); a bare coordinator gets inert instruments.
            obs = getattr(self.executor, "obs", None)
        self.obs = obs if obs is not None else Observability.disabled()
        #: In-process shard matrices; ``None`` when the executor hosts
        #: shard state in worker processes (``hosts_shards = True``).
        self.matrix: ShardedLikedMatrix | None
        if getattr(self.executor, "hosts_shards", False):
            self.matrix = None
            # attach() spawns the workers, warm-start-replays the
            # table's pre-existing profiles, and subscribes to the
            # write stream; the executor then exposes the same
            # vocab/partition/stats surface the in-process matrix does.
            # The memory policy ships to each worker in its Hello, so
            # the executor carries it (set via make_executor) rather
            # than taking it here.
            self._shards = self.executor.attach(table, num_shards, placement)
        else:
            self.matrix = ShardedLikedMatrix(
                table, num_shards, placement, memory=memory
            )
            self._shards = self.matrix
        self.batches_processed = 0
        self.jobs_processed = 0
        self.migrations = 0
        self.shards_added = 0
        self.shards_removed = 0
        self.bucket_splits = 0
        #: Jobs not served exactly: degraded results plus jobs lost to
        #: a fail-fast :class:`ShardUnavailable` (surfaced in
        #: ``ServerStats.dropped_requests``).
        self.dropped_requests = 0
        #: Serializes batches, stats reads, and topology changes when
        #: any of them run off the serving thread (the autoscaler's
        #: timer).  The process executor exposes its own reentrant
        #: ops lock -- sharing it means the coordinator and executor
        #: agree on one serialization point; in-process executors get
        #: a coordinator-local one.
        self._ops_lock: threading.RLock = (
            getattr(self.executor, "ops_lock", None) or threading.RLock()
        )
        registry = self.obs.registry
        self._batch_seconds = registry.histogram("hyrec_batch_seconds")
        self._jobs_total = registry.counter("hyrec_jobs_total")
        self._migrations_total = registry.counter("hyrec_migrations_total")
        # Per-shard series for the *in-process* executors only: the
        # process executor's workers sample these inside their own
        # registries (polled via metrics_samples), so parent-side
        # handles there would double-count after the merge.  Lists, not
        # tuples: a live join appends a series for the new shard.
        if self.matrix is not None:
            self._shard_jobs: list = []
            self._shard_batches: list = []
            self._shard_score_seconds: list = []
            for shard in range(self.num_shards):
                self._add_shard_instruments(shard)

    def _add_shard_instruments(self, shard: int) -> None:
        """Create (or re-acquire) the in-process shard's metric series."""
        registry = self.obs.registry
        label = str(shard)
        self._shard_jobs.append(
            registry.counter("hyrec_shard_jobs_total", shard=label)
        )
        self._shard_batches.append(
            registry.counter("hyrec_shard_batches_total", shard=label)
        )
        self._shard_score_seconds.append(
            registry.histogram("hyrec_shard_score_seconds", shard=label)
        )

    @property
    def recoveries(self) -> int:
        """Successful automatic worker recoveries (0 for in-process)."""
        supervisor = getattr(self.executor, "supervisor", None)
        return supervisor.recoveries if supervisor is not None else 0

    def rolling_restart(self) -> int:
        """Cycle every worker under live traffic (process executor only).

        Delegates to ``ProcessExecutor.rolling_restart``; in-process
        executors have no workers to cycle, so this raises for them.
        """
        restart = getattr(self.executor, "rolling_restart", None)
        if restart is None:
            raise TypeError(
                "rolling_restart needs a worker-hosting executor "
                "(executor='process')"
            )
        return restart()

    @property
    def num_shards(self) -> int:
        return self._shards.num_shards

    @property
    def table(self) -> ProfileTable:
        """The shared profile table this cluster serves."""
        return self._table

    @property
    def placement(self):
        """The movable :class:`~repro.cluster.placement.PlacementMap`.

        Live routing state -- shared with whichever component hosts
        the shards (in-process matrix or process executor), so its
        ``version`` is the cluster's current routing epoch.
        """
        return self._shards.placement

    def migrate_bucket(self, bucket: int, new_owner: int) -> int:
        """Hand one placement bucket to ``new_owner``; returns the version.

        The coordinator is synchronous, so by construction no batch is
        in flight when this runs (callers holding jobs in a
        ``BatchScheduler`` window must flush it first -- the
        :class:`~repro.cluster.rebalance.ShardRebalancer` does).  The
        heavy lifting is delegated: the in-process matrix just moves
        ownership over the shared table; the process executor runs the
        drain / extract / replay / map-bump / broadcast handoff over
        the shard protocol.  Either way the engine's outputs are
        bit-for-bit unchanged across the move.
        """
        start = time.perf_counter()
        with self._ops_lock:
            if self.matrix is not None:
                version = self.matrix.migrate_bucket(bucket, new_owner)
            else:
                version = self.executor.migrate_bucket(bucket, new_owner)
            self.migrations += 1
        self._migrations_total.inc()
        self.obs.events.record(
            "bucket_migration",
            bucket=bucket,
            target=new_owner,
            epoch=version,
            duration_ms=round((time.perf_counter() - start) * 1e3, 3),
        )
        return version

    # --- elastic topology ---------------------------------------------------

    def add_shard(self, migrate: bool = True) -> int:
        """Grow the cluster by one shard under live traffic.

        The join itself is epoch-neutral (the new shard owns nothing);
        with ``migrate=True`` its rendezvous share then moves in
        *bucket by bucket*, each move its own epoch bump under its own
        lock acquisition -- so serving threads interleave with the
        drain instead of stalling behind it.  Returns the new shard's
        index.
        """
        start = time.perf_counter()
        with self._ops_lock:
            if self.matrix is not None:
                shard = self.matrix.add_shard(migrate=False)
                self._add_shard_instruments(shard)
            else:
                shard = self.executor.add_shard(migrate=False)
        moved = 0
        if migrate:
            placement = self.placement
            for bucket in placement.rendezvous_share(shard).tolist():
                if placement.owner_of(bucket) != shard:
                    self.migrate_bucket(int(bucket), shard)
                    moved += 1
        self.shards_added += 1
        self.obs.registry.counter("hyrec_shards_added_total").inc()
        self.obs.events.record(
            "shard_added",
            shard=shard,
            buckets=moved,
            epoch=self.placement.version,
            duration_ms=round((time.perf_counter() - start) * 1e3, 3),
        )
        return shard

    def remove_shard(self) -> int:
        """Drain and retire the last shard under live traffic.

        Its buckets migrate out to their rendezvous winners among the
        survivors (per-bucket epoch bumps, lock released between
        moves), then the empty shard retires -- epoch-neutral, like
        the join.  Returns the retired index.
        """
        start = time.perf_counter()
        placement = self.placement
        if placement.num_shards < 2:
            raise ValueError("cannot remove the only shard")
        shard = placement.num_shards - 1
        survivors = placement.num_shards - 1
        drained = 0
        for bucket in placement.buckets_owned_by(shard).tolist():
            self.migrate_bucket(
                int(bucket), rendezvous_owner(int(bucket), survivors)
            )
            drained += 1
        with self._ops_lock:
            if self.matrix is not None:
                self.matrix.remove_shard()
                self._shard_jobs.pop()
                self._shard_batches.pop()
                self._shard_score_seconds.pop()
            else:
                self.executor.remove_shard()
        self.shards_removed += 1
        self.obs.registry.counter("hyrec_shards_removed_total").inc()
        self.obs.events.record(
            "shard_retired",
            shard=shard,
            buckets=drained,
            epoch=self.placement.version,
            duration_ms=round((time.perf_counter() - start) * 1e3, 3),
        )
        return shard

    def split_buckets(self, factor: int = 2) -> int:
        """Refine the bucket space by ``factor`` (epoch-bumping, no data).

        The modular bucket hash is stable under multiplication of the
        bucket count, so every user keeps its owner -- the split only
        makes a hot bucket's cohabitants separately movable.  Returns
        the new routing version.
        """
        start = time.perf_counter()
        with self._ops_lock:
            if self.matrix is not None:
                version = self.matrix.split_buckets(factor)
            else:
                version = self.executor.split_buckets(factor)
        self.bucket_splits += 1
        self.obs.registry.counter("hyrec_bucket_splits_total").inc()
        self.obs.events.record(
            "bucket_split",
            factor=factor,
            num_buckets=self.placement.num_buckets,
            epoch=version,
            duration_ms=round((time.perf_counter() - start) * 1e3, 3),
        )
        return version

    def metrics_samples(self) -> list[MetricSample]:
        """The workers' wire-shipped metrics snapshots (if any).

        Empty on the in-process executors -- their shard series sample
        straight into the shared registry, so the server's snapshot
        already holds them.
        """
        sampler = getattr(self.executor, "metrics_samples", None)
        if sampler is None:
            return []
        with self._ops_lock:
            return sampler()

    def shard_stats(self) -> tuple[ShardStats, ...]:
        """Per-shard load/churn counters (surfaced via ``ServerStats``).

        Always ordered by shard index.  On the process executor this
        is a stats round trip to every worker (buffered writes flush
        first, so the counters never lag the table), and each entry
        carries the hosting worker's ``pid``.
        """
        with self._ops_lock:
            return self._shards.stats()

    def close(self) -> None:
        """Release executor resources (threads or worker processes).

        Idempotent.  On the process executor this performs the clean
        worker shutdown (a ``Shutdown`` frame per worker, then join);
        forgetting it cannot leak processes -- workers are daemonic --
        but sweeps constructing many coordinators should call it (or
        ``HyRecSystem.close``) promptly.
        """
        self.executor.close()

    # --- execution ----------------------------------------------------------

    def process_engine_job(self, job: EngineJob) -> JobResult:
        """Execute one job (a batch of one).

        Invariant: identical to ``process_batch([job])[0]`` -- batch
        composition never changes a job's result (per-job outputs are
        independent and scored against the same table state), so
        callers may batch freely for throughput.
        """
        return self.process_batch([job])[0]

    def process_batch(self, jobs: Sequence[EngineJob]) -> list[JobResult]:
        """Execute a batch of jobs: one kernel invocation per shard.

        Invariants (the merge contract, enforced by
        ``tests/test_cluster_parity.py``):

        * **Exactness** -- each returned
          :class:`~repro.core.jobs.JobResult` is bit-for-bit what the
          single-matrix vectorized engine (and the Python engine)
          produces for the same job and table state: same neighbors
          under the ``(-score, token)`` total order, bitwise-equal
          float64 scores, same recommendations under
          ``(-count, str(item))``.
        * **Ordering** -- results are returned in job-submission
          order, regardless of shard count, executor timing, or
          which shards a job's candidates landed on.
        * **Independence** -- job ``i``'s result does not depend on
          the other jobs in the batch (batching only amortizes fixed
          costs; it shares no state between jobs beyond the read-only
          table snapshot).
        """
        if not jobs:
            return []
        with self._ops_lock:
            return self._process_batch_locked(jobs)

    def _process_batch_locked(
        self, jobs: Sequence[EngineJob]
    ) -> list[JobResult]:
        # Scatter and score must see one placement epoch: a background
        # migration between them would leave slices partitioned under
        # a map the shards no longer serve.  The lock is reentrant and
        # shared with the process executor, so per-bucket moves simply
        # slot between batches.
        tracer = self.obs.tracer
        # A traced batch attaches to the first job's request trace; the
        # remaining jobs' roots reference the shared batch through
        # their schedule spans (see ``BatchScheduler``).
        parent_ctx = next(
            (job.trace_ctx for job in jobs if job.trace_ctx is not None), None
        )
        start_ns = time.perf_counter_ns()
        batch_span = tracer.span("batch", parent=parent_ctx, jobs=len(jobs))
        with batch_span:
            with tracer.span("scatter"):
                queries = [self._query_of(job.user_id) for job in jobs]
                # Scatter: per shard, this batch's transportable slices.
                shard_slices: list[list[ShardSlice]] = [
                    [] for _ in range(self.num_shards)
                ]
                for index, job in enumerate(jobs):
                    query = queries[index]
                    for shard, (ids, positions) in enumerate(
                        self._shards.partition(job.candidate_ids)
                    ):
                        if ids.size:
                            shard_slices[shard].append(
                                ShardSlice(
                                    job_index=index,
                                    candidate_ids=ids,
                                    positions=positions,
                                    query_cols=query.cols,
                                    liked_count=query.liked_count,
                                    metric=job.metric,
                                    k=job.k,
                                )
                            )

            degraded_jobs: set[int] = set()
            score_span = tracer.span("score")
            with score_span:
                if self.matrix is None:
                    # Out-of-process: serialized slices out, wire
                    # partials back (worker score spans ride along when
                    # the batch is traced).
                    try:
                        partials_by_shard = self.executor.run_slices(
                            shard_slices, trace=score_span.ctx
                        )
                    except ShardUnavailable:
                        # Fail-fast mode: the whole batch is lost (no
                        # partial answers leave the coordinator), which
                        # is the dropped requests the stats count.
                        self.dropped_requests += len(jobs)
                        raise
                    # Degraded mode: a down shard served nothing, so
                    # any job with candidates there is flagged (and
                    # counted) -- the survivors' partials still merge
                    # exactly as usual.
                    for shard in getattr(self.executor, "last_degraded", ()):
                        degraded_jobs.update(
                            piece.job_index for piece in shard_slices[shard]
                        )
                    self.dropped_requests += len(degraded_jobs)
                else:
                    score_ctx = score_span.ctx
                    tasks = [
                        (
                            lambda s=shard: self._score_shard(
                                s, shard_slices[s], score_ctx
                            )
                        )
                        for shard in range(self.num_shards)
                    ]
                    partials_by_shard = self.executor.run(tasks)

            with tracer.span("merge"):
                results = self._merge(
                    jobs, queries, partials_by_shard, degraded_jobs
                )
        self.batches_processed += 1
        self.jobs_processed += len(jobs)
        self._jobs_total.inc(len(jobs))
        self._batch_seconds.observe(
            (time.perf_counter_ns() - start_ns) / 1e9
        )
        return results

    def _score_shard(self, shard: int, slices, trace):
        """Score one in-process shard, sampling the shard-local series.

        Runs on whatever thread the executor provides, so the trace
        context is passed explicitly (pool threads do not share the
        coordinator's active-span stack) and the span is recorded
        pre-measured.  Empty slice lists stay unsampled, mirroring the
        process executor (which sends no frame for them).
        """
        matrix = self.matrix
        assert matrix is not None
        obs = self.obs
        if not obs.registry.enabled and not obs.tracer.enabled:
            return score_slices(matrix.shards[shard], slices)
        start_ns = time.perf_counter_ns()
        partials = score_slices(matrix.shards[shard], slices)
        dur_ns = time.perf_counter_ns() - start_ns
        if slices:
            self._shard_batches[shard].inc()
            self._shard_jobs[shard].inc(len(slices))
            self._shard_score_seconds[shard].observe(dur_ns / 1e9)
            if trace is not None:
                obs.tracer.add(
                    f"shard{shard}:score",
                    parent=trace,
                    start_us=start_ns // 1000,
                    dur_us=dur_ns // 1000,
                )
        return partials

    def _merge(
        self,
        jobs: Sequence[EngineJob],
        queries: Sequence[_Query],
        partials_by_shard,
        degraded_jobs: set[int],
    ) -> list[JobResult]:
        # Merge: per job, combine whatever each shard contributed.
        results: list[JobResult] = []
        item_array = self._shards.vocab.item_array()
        for index, job in enumerate(jobs):
            score_parts: list[np.ndarray] = []
            position_parts: list[np.ndarray] = []
            col_parts: list[np.ndarray] = []
            sparse_parts: list[tuple[np.ndarray, np.ndarray]] = []
            for shard_out in partials_by_shard:
                partial = shard_out.get(index)
                if partial is None:
                    continue
                score_parts.append(partial.scores)
                position_parts.append(partial.positions)
                if isinstance(partial, ShardPartial):
                    col_parts.append(partial.liked_cols)
                else:  # WirePartial: popularity arrives pre-histogrammed
                    sparse_parts.append((partial.pop_cols, partial.pop_counts))
            positions, scores = merge_topk(score_parts, position_parts, job.k)
            tokens = job.candidate_tokens
            if sparse_parts:
                popularity = merge_popularity_sparse(sparse_parts)
            else:
                popularity = merge_popularity(col_parts)
            rated = queries[index].rated_cols
            if popularity.size and rated.size:
                popularity[rated[rated < popularity.size]] = 0
            nonzero = np.nonzero(popularity)[0]
            results.append(
                JobResult(
                    user_token=job.user_token,
                    neighbor_tokens=[
                        tokens[position] for position in positions.tolist()
                    ],
                    recommended_items=select_top_items(
                        item_array[nonzero], popularity[nonzero], job.r
                    ),
                    neighbor_scores=scores.tolist(),
                    degraded=index in degraded_jobs,
                )
            )
        return results

    def _query_of(self, user_id: int) -> _Query:
        profile = self._table.get(user_id)
        liked = profile.liked_items()
        vocab = self._shards.vocab
        # Interning (not skipping) matters on pre-populated tables:
        # a query item must share the column a candidate row interns
        # for it later in this very batch.  It runs on the calling
        # thread, preserving the vocabulary's read-mostly discipline
        # for the shard tasks (on the process executor the new columns
        # replicate to every worker before its slices dispatch).
        return _Query(
            cols=vocab.intern_columns(list(liked)),
            liked_count=len(liked),
            rated_cols=vocab.intern_columns(list(profile.rated_items())),
        )
