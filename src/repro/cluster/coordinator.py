"""Scatter/gather orchestration over the sharded liked matrix.

:class:`ClusterCoordinator` executes :class:`~repro.engine.jobs.EngineJob`
requests across the shards of a :class:`~repro.cluster.ShardedLikedMatrix`:

1. **Scatter** -- each job's (token-sorted) candidate list is split by
   hash placement; every candidate keeps its *position* in the job's
   global order, so tokens never travel to the shards.  The
   requester's liked/rated sets map to columns *once* per job: the
   shards share one item vocabulary, so the same column array is valid
   everywhere.
2. **Shard-local scoring** -- per shard, *one* CSR gather covers all
   jobs of the batch, one :func:`~repro.engine.kernels.segment_sums`
   pass turns the per-job membership flags into intersection counts,
   and (for the config-uniform metric of a real deployment) one
   :func:`~repro.engine.kernels.similarity_scores` call scores every
   candidate row of every job in the window.  The shard's partial
   result per job is a pair of zero-copy views: scores and global
   positions.
3. **Merge** -- per job, one ``lexsort`` over the concatenated
   partials ranks by ``(-score, position)``; positions follow the
   job's ascending-token order, so this *is* the Python engine's
   ``(-score, token)`` total order.  Popularity counts merge as one
   ``bincount`` over the concatenated liked-column segments, after
   which the recommendation step is literally the single-matrix one
   (zero the rated columns, ``(-count, str(item))`` selection).

Because the shards partition the candidate set, the merged outputs are
*bit-for-bit* the single-matrix engine's outputs: intersection counts
are exact integers, similarity scores are elementwise float64 (no
cross-candidate reductions, hence no float reassociation), and both
tie-breaks use the same total orders.  A cross-process transport would
truncate each shard's partial to its local top-K before shipping --
an exactness-preserving cut, since every global top-K member is inside
its own shard's top-K.  ``tests/test_cluster_parity.py`` enforces
parity for 1/2/4/8 shards under both executors.

Shard tasks touch only their own shard's state (the shared vocabulary
is read-mostly, with locked interning), so the coordinator can run
them on any :mod:`~repro.cluster.executors` back-end without changing
a single output bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.executors import ShardExecutor, SerialExecutor
from repro.cluster.placement import ShardPlacement
from repro.cluster.sharded_matrix import ShardedLikedMatrix, ShardStats
from repro.core.jobs import JobResult
from repro.core.tables import ProfileTable
from repro.engine.jobs import EngineJob
from repro.engine.kernels import (
    segment_sums,
    select_top_items,
    similarity_scores,
)

_EMPTY = np.zeros(0, dtype=np.int64)
_EMPTY_F = np.zeros(0, dtype=np.float64)


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution to one job (zero-copy views)."""

    positions: np.ndarray  # candidate positions in the job's token order
    scores: np.ndarray  # matching similarity scores (float64)
    liked_cols: np.ndarray  # gathered liked-item columns (shared vocab)


@dataclass(frozen=True)
class _Query:
    """Per-job requester context, mapped to shared columns once."""

    cols: np.ndarray  # columns of the user's liked items
    liked_count: int  # |L_u| (drives the similarity denominators)
    rated_cols: np.ndarray  # columns of every rated item (exclusions)


def merge_topk(
    score_parts: Sequence[np.ndarray],
    position_parts: Sequence[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact global top-``k`` from per-shard partial scores.

    Shards hold disjoint candidates, so ranking the union under the
    engine's total order is exact; positions follow the job's
    ascending-token order, so ``(-score, position)`` *is* the Python
    engine's ``(-score, token)``.  (``-0.0 == 0.0`` in IEEE-754, so
    zero-score ties still fall through to the position.)  Works
    unchanged on shard-side-truncated partials: any global top-``k``
    member is inside its own shard's top-``k``.

    Returns ``(positions, scores)`` of the winners, best first.
    """
    if not score_parts:
        return _EMPTY, _EMPTY_F
    if len(score_parts) == 1:
        scores = score_parts[0]
        positions = position_parts[0]
    else:
        scores = np.concatenate(score_parts)
        positions = np.concatenate(position_parts)
    top = np.lexsort((positions, -scores))[:k]
    return positions[top], scores[top]


def merge_popularity(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Dense per-column like counts from per-shard column segments.

    Every part lists the liked-item columns this job's candidates hold
    on one shard (columns are shared cluster-wide).  Candidates are
    disjoint across shards, so one ``bincount`` over the concatenation
    is exactly the single-matrix popularity pass -- integer-exact, and
    cheaper than summing per-shard histograms.
    """
    parts = [part for part in parts if part.size]
    if not parts:
        return _EMPTY
    cols = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return np.bincount(cols)


class ClusterCoordinator:
    """Fans engine jobs out to shards and merges exact results."""

    def __init__(
        self,
        table: ProfileTable,
        num_shards: int = 4,
        executor: ShardExecutor | None = None,
        placement: ShardPlacement | None = None,
    ) -> None:
        self._table = table
        self.matrix = ShardedLikedMatrix(table, num_shards, placement)
        self.executor = executor if executor is not None else SerialExecutor()
        self.batches_processed = 0
        self.jobs_processed = 0

    @property
    def num_shards(self) -> int:
        return self.matrix.num_shards

    def shard_stats(self) -> tuple[ShardStats, ...]:
        """Per-shard load/churn counters (surfaced via ``ServerStats``)."""
        return self.matrix.stats()

    def close(self) -> None:
        """Release the executor's workers (if any)."""
        self.executor.close()

    # --- execution ----------------------------------------------------------

    def process_engine_job(self, job: EngineJob) -> JobResult:
        """Execute one job (a batch of one)."""
        return self.process_batch([job])[0]

    def process_batch(self, jobs: Sequence[EngineJob]) -> list[JobResult]:
        """Execute a batch of jobs: one kernel invocation per shard."""
        if not jobs:
            return []
        queries = [self._query_of(job.user_id) for job in jobs]

        # Scatter: shard -> [(job index, candidate ids, positions), ...].
        shard_work: list[list[tuple[int, np.ndarray, np.ndarray]]] = [
            [] for _ in range(self.num_shards)
        ]
        for index, job in enumerate(jobs):
            for shard, (ids, positions) in enumerate(
                self.matrix.partition(job.candidate_ids)
            ):
                if ids.size:
                    shard_work[shard].append((index, ids, positions))

        tasks = [
            (lambda s=shard: self._run_shard(s, shard_work[s], queries, jobs))
            for shard in range(self.num_shards)
        ]
        partials_by_shard = self.executor.run(tasks)

        # Merge: per job, combine whatever each shard contributed.
        results: list[JobResult] = []
        item_array = self.matrix.vocab.item_array()
        for index, job in enumerate(jobs):
            score_parts: list[np.ndarray] = []
            position_parts: list[np.ndarray] = []
            col_parts: list[np.ndarray] = []
            for shard_out in partials_by_shard:
                partial = shard_out.get(index)
                if partial is None:
                    continue
                score_parts.append(partial.scores)
                position_parts.append(partial.positions)
                col_parts.append(partial.liked_cols)
            positions, scores = merge_topk(score_parts, position_parts, job.k)
            tokens = job.candidate_tokens
            popularity = merge_popularity(col_parts)
            rated = queries[index].rated_cols
            if popularity.size and rated.size:
                popularity[rated[rated < popularity.size]] = 0
            nonzero = np.nonzero(popularity)[0]
            results.append(
                JobResult(
                    user_token=job.user_token,
                    neighbor_tokens=[
                        tokens[position] for position in positions.tolist()
                    ],
                    recommended_items=select_top_items(
                        item_array[nonzero], popularity[nonzero], job.r
                    ),
                    neighbor_scores=scores.tolist(),
                )
            )
        self.batches_processed += 1
        self.jobs_processed += len(jobs)
        return results

    def _query_of(self, user_id: int) -> _Query:
        profile = self._table.get(user_id)
        liked = profile.liked_items()
        vocab = self.matrix.vocab
        # Interning (not skipping) matters on pre-populated tables:
        # a query item must share the column a candidate row interns
        # for it later in this very batch.  It runs on the calling
        # thread, preserving the vocabulary's read-mostly discipline
        # for the shard tasks.
        return _Query(
            cols=vocab.intern_columns(list(liked)),
            liked_count=len(liked),
            rated_cols=vocab.intern_columns(list(profile.rated_items())),
        )

    # --- shard-local scoring -------------------------------------------------

    def _run_shard(
        self,
        shard: int,
        entries: list[tuple[int, np.ndarray, np.ndarray]],
        queries: list[_Query],
        jobs: Sequence[EngineJob],
    ) -> dict[int, ShardPartial]:
        """Score every job's slice of this shard in one batched pass.

        This is the "one batched kernel invocation per shard" shape:
        one CSR gather, one membership flag per liked entry (queries
        are marked per job, but flag gathering writes into one shared
        array), one :func:`segment_sums`, and -- when the batch shares
        a metric, which a config-driven deployment always does -- one
        :func:`similarity_scores` call for every candidate row of
        every job in the window.
        """
        if not entries:
            return {}
        matrix = self.matrix.shards[shard]
        all_ids = (
            np.concatenate([ids for _, ids, _ in entries])
            if len(entries) > 1
            else entries[0][1]
        )
        indices, indptr, sizes = matrix.gather_liked(all_ids.tolist())

        # Flag every gathered index's query membership, job by job
        # (each job has its own query set), into one shared array.
        hits = np.empty(indices.size, dtype=np.int64)
        spans: list[tuple[int, int, int, int, int, np.ndarray]] = []
        row = 0
        for index, ids, positions in entries:
            count = ids.size
            lo = int(indptr[row])
            hi = int(indptr[row + count])
            matrix.mark_hits(queries[index].cols, indices[lo:hi], hits[lo:hi])
            spans.append((index, row, row + count, lo, hi, positions))
            row += count

        inter = segment_sums(hits, indptr)
        liked_counts = np.repeat(
            np.asarray(
                [queries[index].liked_count for index, *_ in spans],
                dtype=np.float64,
            ),
            np.asarray([r1 - r0 for _, r0, r1, *_ in spans], dtype=np.int64),
        )
        metrics = {jobs[index].metric for index, *_ in spans}
        if len(metrics) == 1:
            scores_all = similarity_scores(
                next(iter(metrics)), inter, liked_counts, sizes
            )
        else:  # mixed-metric batch: score per job (same kernels, same bits)
            scores_all = np.empty(inter.size, dtype=np.float64)
            for index, r0, r1, _, _, _ in spans:
                scores_all[r0:r1] = similarity_scores(
                    jobs[index].metric,
                    inter[r0:r1],
                    liked_counts[r0:r1],
                    sizes[r0:r1],
                )

        return {
            index: ShardPartial(
                positions=positions,
                scores=scores_all[r0:r1],
                liked_cols=indices[lo:hi],
            )
            for index, r0, r1, lo, hi, positions in spans
        }
