"""The sharded cluster engine.

Runs the vectorized engine across N hash-partitioned shards: a
:class:`ShardedLikedMatrix` of per-shard arenas and posting lists fed
by placement-routed writes, a :class:`ClusterCoordinator` that fans a
request's :class:`~repro.engine.jobs.EngineJob` out to shards and
merges exact partial top-Ks, and a :class:`BatchScheduler` that
coalesces concurrent requests into one batched kernel invocation per
shard.  Shards run in-process (``executor="serial"``/``"thread"``) or
in long-lived worker processes (``executor="process"``) fed by the
serialized shard protocol in :mod:`repro.cluster.transport`.  Placement
is a movable :class:`PlacementMap` (rendezvous-hashed virtual-node
buckets behind a versioned owner table), so a
:class:`ShardRebalancer` can migrate whole buckets off a hot or
churning shard through the live handoff path without changing a
single output bit.  The topology itself is elastic: the coordinator's
``add_shard``/``remove_shard`` grow and shrink the fleet under live
traffic (a join handshakes at the current epoch and migrates its
rendezvous share in; a retire drains its buckets out), the
:class:`ShardRebalancer` doubles as a watermark-driven autoscaler on a
background control-loop thread, and pathologically hot buckets split
(``split_buckets`` -- an epoch-bumped metadata change that moves no
data).  The process executor is fault tolerant: a
:class:`WorkerSupervisor` detects worker death through socket
deadlines and v3 ping probes, re-forks the shard's worker, and
warm-starts it from the coordinator-side replay log -- recovery is
exact, and ``ProcessExecutor.rolling_restart`` cycles the whole
fleet under live traffic.  Selected per deployment with
``HyRecConfig(engine="sharded")``; results are bit-for-bit identical
to the ``"python"`` and ``"vectorized"`` engines for any shard count,
executor, and migration history.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    merge_popularity,
    merge_topk,
)
from repro.cluster.executors import (
    EXECUTOR_NAMES,
    SerialExecutor,
    ShardExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.cluster.placement import PlacementMap, ShardPlacement
from repro.cluster.process_executor import ProcessExecutor
from repro.cluster.rebalance import BucketMove, ShardRebalancer
from repro.cluster.scheduler import BatchScheduler, BatchTicket
from repro.cluster.scoring import (
    ShardPartial,
    ShardSlice,
    WirePartial,
    merge_popularity_sparse,
    score_slices,
)
from repro.cluster.sharded_matrix import ShardedLikedMatrix, ShardStats
from repro.cluster.supervisor import ShardUnavailable, WorkerSupervisor

__all__ = [
    "BatchScheduler",
    "BatchTicket",
    "BucketMove",
    "ClusterCoordinator",
    "EXECUTOR_NAMES",
    "PlacementMap",
    "ProcessExecutor",
    "ShardRebalancer",
    "ShardUnavailable",
    "SerialExecutor",
    "ShardExecutor",
    "ShardPartial",
    "ShardPlacement",
    "ShardSlice",
    "ShardStats",
    "ShardedLikedMatrix",
    "ThreadPoolExecutor",
    "WirePartial",
    "WorkerSupervisor",
    "make_executor",
    "merge_popularity",
    "merge_popularity_sparse",
    "merge_topk",
    "score_slices",
]
