"""The serialized shard protocol: versioned, length-prefixed frames.

This is the wire format between the cluster coordinator (parent
process) and its shard workers.  Every message is one frame::

    +-------+---------+------+----------------+---------------+
    | magic | version | type | payload length |    payload    |
    | 2 B   | 1 B     | 1 B  | 4 B big-endian | length bytes  |
    +-------+---------+------+----------------+---------------+

``magic`` is ``b"HY"``, ``version`` is :data:`PROTOCOL_VERSION`, and
``type`` selects one of the :class:`FrameType` messages.  Payloads are
flat ``struct``-packed scalars plus raw little-endian numpy array
dumps -- no pickling, so a frame means the same thing to any peer
speaking the same protocol version, and a malicious or corrupt peer
can at worst produce a :class:`TransportError`, never code execution.

Message flow (parent ``->`` worker unless noted):

* :class:`Hello` / :class:`Ready` (worker ``->`` parent) -- lifecycle
  handshake; pins the shard index and protocol version.
* :class:`VocabDelta` -- append-only replication of the shared
  :class:`~repro.engine.liked_matrix.ItemVocabulary`: the items
  assigned to columns ``[base, base + len(items))``, in column order.
  Deltas are cumulative and strictly ordered, so a replica that
  applies every delta holds the parent's exact ``item -> column``
  mapping.
* :class:`WriteBatch` -- placement-routed profile writes for the
  shard's owned users, in table-write order.  Workers rebuild the
  like/un-like transition locally (their replica saw every prior
  write of the user), so ``previous`` values never travel.
* :class:`JobSlices` -- a batch's :class:`~repro.cluster.scoring.ShardSlice`\\ s
  for this shard; :class:`Partials` (worker ``->`` parent) carries the
  per-job :class:`~repro.cluster.scoring.WirePartial` results back.
* :class:`StatsRequest` / :class:`StatsReply` (worker ``->`` parent)
  -- the per-worker load/churn counters ``ServerStats`` surfaces.
* :class:`MapUpdate` -- routing-epoch broadcast: the placement map's
  version after a migration.  Workers track the epoch and reject
  job frames stamped with a stale one, so a frame routed under an
  outdated map can never touch a moved bucket silently.
* :class:`HandoffRequest` / :class:`HandoffData` -- the shard-handoff
  path of a bucket migration: the parent asks a bucket's old owner to
  extract-and-evict it; the owner answers with the bucket's write
  replay (current value per rated item, the warm-start form), which
  the parent forwards verbatim to the new owner.  Both frames carry
  the epoch the move creates; workers insist it advances their local
  epoch by exactly one (a skipped epoch means a lost frame).
* :class:`SplitBuckets` -- v5 elastic topology: refine the bucket
  space to a multiple of its current size.  Splitting relies on the
  modulo stability of the bucket hash (``mix(uid) % kN`` is congruent
  to ``mix(uid) % N`` mod ``N``), so no user changes owner at split
  time and no data moves; the frame carries the new bucket count plus
  the epoch the split creates, validated handoff-style (advance by
  exactly one).  Shard joins and retires need no frame: a join is an
  ordinary :class:`Hello`, a retire an ordinary :class:`Shutdown`.
* :class:`Ping` / :class:`Pong` (worker ``->`` parent) -- liveness
  probe: the worker echoes the parent's nonce along with its shard
  index and pid.  The :class:`~repro.cluster.supervisor.WorkerSupervisor`
  uses the round-trip time as the per-worker health signal surfaced
  in ``ServerStats``.
* :class:`MetricsRequest` / :class:`MetricsSnapshot` (worker ``->``
  parent) -- v4 observability pull: the worker flattens its local
  :class:`~repro.obs.registry.MetricsRegistry` snapshot into
  :class:`WireSample` rows (counters, gauges, and histograms with
  their bucket bounds), which the parent merges into the
  deployment-wide ``/metrics`` exposition.  Telemetry rides its own
  frames -- and trace context its own :class:`JobSlices` /
  :class:`Partials` fields -- so request bytes and the Figure-10 wire
  meters are untouched by observability.
* :class:`Shutdown` -- clean worker exit.

Framing errors are typed: short reads raise
:class:`TruncatedFrameError`, a foreign ``version`` byte raises
:class:`VersionMismatchError`, and anything else malformed (bad magic,
unknown type, payload over- or under-runs) raises
:class:`TransportError`.  ``tests/test_transport.py`` round-trips
every message and fuzzes the rejection paths.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.cluster.scoring import ShardSlice, WirePartial

PROTOCOL_MAGIC = b"HY"
#: v2 added the movable-placement fields: Hello's bucket count and
#: routing epoch, JobSlices' epoch stamp, and the MapUpdate/Handoff
#: frame family.  v3 added the Ping/Pong liveness probes the worker
#: supervisor drives.  v4 added the observability layer: Hello's
#: ``flags`` (metrics enable), JobSlices' trace context, Partials'
#: measured worker spans, and the MetricsRequest/MetricsSnapshot pull.
#: v5 added the elastic-topology frame: SplitBuckets refines the
#: bucket space live (shard joins and retires need no frame of their
#: own -- a join is an ordinary Hello, a retire an ordinary Shutdown,
#: and every byte of data motion rides the existing handoff family).
#: v6 added the bounded-memory policy: Hello ships the eviction knobs
#: (row cap + TTL) and the int32-narrowing flag so every worker runs
#: the coordinator's exact :class:`~repro.engine.liked_matrix.MemoryPolicy`,
#: and StatsReply grew eviction/arena-capacity counters.
PROTOCOL_VERSION = 6

#: Hello ``flags`` bit: the worker should run a live metrics registry
#: and answer :class:`MetricsRequest` with non-empty snapshots.
HELLO_FLAG_METRICS = 1

#: Hello ``flags`` bit (v6): store the shard matrix's arena, postings
#: and rated rows as int32 (see ``MemoryPolicy.narrow_dtypes``).
HELLO_FLAG_NARROW = 2

#: Upper bound on one frame's payload (a sanity valve against corrupt
#: length fields, not a protocol feature): 1 GiB.
MAX_PAYLOAD = 1 << 30

_HEADER = struct.Struct(">2sBBI")


class TransportError(Exception):
    """A frame or payload violated the shard protocol."""


class TruncatedFrameError(TransportError):
    """The byte stream ended inside a frame header or payload."""


class VersionMismatchError(TransportError):
    """The peer speaks a different protocol version."""


class ConnectionClosedError(TransportError):
    """The peer closed the connection between frames (clean EOF)."""


class FrameType(enum.IntEnum):
    """Frame type byte -> message class (see :data:`_MESSAGE_TYPES`)."""

    HELLO = 1
    READY = 2
    VOCAB_DELTA = 3
    WRITE_BATCH = 4
    JOB_SLICES = 5
    PARTIALS = 6
    STATS_REQUEST = 7
    STATS_REPLY = 8
    SHUTDOWN = 9
    MAP_UPDATE = 10
    HANDOFF_REQUEST = 11
    HANDOFF_DATA = 12
    PING = 13
    PONG = 14
    METRICS_REQUEST = 15
    METRICS_SNAPSHOT = 16
    SPLIT_BUCKETS = 17


# --- payload primitives -----------------------------------------------------

_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")
_U32 = struct.Struct(">I")
_I64_SCALAR = struct.Struct(">q")


def _pack_scalar(value: int) -> bytes:
    return _I64_SCALAR.pack(int(value))


def _unpack_scalar(buf: bytes, offset: int) -> tuple[int, int]:
    if offset + 8 > len(buf):
        raise TruncatedFrameError("payload ended inside a scalar")
    return _I64_SCALAR.unpack_from(buf, offset)[0], offset + 8


def _pack_array(arr: np.ndarray) -> bytes:
    """``code + length + raw little-endian dump`` of an int64/float64 array."""
    if arr.dtype.kind == "f":
        code, dtype = b"d", _F64
    else:
        code, dtype = b"q", _I64
    data = np.ascontiguousarray(arr, dtype=dtype).tobytes()
    return code + _U32.pack(arr.size) + data


def _unpack_array(buf: bytes, offset: int) -> tuple[np.ndarray, int]:
    if offset + 5 > len(buf):
        raise TruncatedFrameError("payload ended inside an array header")
    code = buf[offset : offset + 1]
    if code == b"q":
        dtype = _I64
    elif code == b"d":
        dtype = _F64
    else:
        raise TransportError(f"unknown array dtype code {code!r}")
    size = _U32.unpack_from(buf, offset + 1)[0]
    start = offset + 5
    end = start + size * 8
    if end > len(buf):
        raise TruncatedFrameError("payload ended inside array data")
    # Copy out of the frame buffer so partial lifetimes never pin it.
    arr = np.frombuffer(buf[start:end], dtype=dtype).astype(
        np.int64 if dtype is _I64 else np.float64, copy=True
    )
    return arr, end


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise TransportError("string field over 64 KiB")
    return struct.pack(">H", len(data)) + data


def _unpack_str(buf: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(buf):
        raise TruncatedFrameError("payload ended inside a string header")
    size = struct.unpack_from(">H", buf, offset)[0]
    start = offset + 2
    end = start + size
    if end > len(buf):
        raise TruncatedFrameError("payload ended inside string data")
    return buf[start:end].decode("utf-8"), end


# --- messages ---------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Parent -> worker: pin the shard index and cluster shape.

    ``num_buckets`` and ``map_version`` seed the worker's view of the
    movable placement map: the bucket count lets it select a handed-off
    bucket's users locally, and the version is the routing epoch all
    subsequent stamped frames are validated against.  ``flags`` (v4)
    carries feature bits -- :data:`HELLO_FLAG_METRICS` turns the
    worker's metrics registry on, :data:`HELLO_FLAG_NARROW` (v6)
    narrows its matrix storage to int32.

    ``evict_max_rows`` / ``evict_ttl_ms`` (v6) ship the coordinator's
    row-eviction policy: the worker applies them to its shard matrix
    before acknowledging Ready, so a warm-started *or respawned*
    worker always serves under the configured memory bounds.  The TTL
    travels as integer milliseconds to keep the frame scalar-only.
    """

    shard: int
    num_shards: int
    num_buckets: int = 0
    map_version: int = 0
    flags: int = 0
    evict_max_rows: int = 0
    evict_ttl_ms: int = 0

    def _pack(self) -> bytes:
        return (
            _pack_scalar(self.shard)
            + _pack_scalar(self.num_shards)
            + _pack_scalar(self.num_buckets)
            + _pack_scalar(self.map_version)
            + _pack_scalar(self.flags)
            + _pack_scalar(self.evict_max_rows)
            + _pack_scalar(self.evict_ttl_ms)
        )

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Hello", int]:
        shard, offset = _unpack_scalar(buf, 0)
        num_shards, offset = _unpack_scalar(buf, offset)
        num_buckets, offset = _unpack_scalar(buf, offset)
        map_version, offset = _unpack_scalar(buf, offset)
        flags, offset = _unpack_scalar(buf, offset)
        evict_max_rows, offset = _unpack_scalar(buf, offset)
        evict_ttl_ms, offset = _unpack_scalar(buf, offset)
        return (
            cls(
                shard=shard,
                num_shards=num_shards,
                num_buckets=num_buckets,
                map_version=map_version,
                flags=flags,
                evict_max_rows=evict_max_rows,
                evict_ttl_ms=evict_ttl_ms,
            ),
            offset,
        )


@dataclass(frozen=True)
class Ready:
    """Worker -> parent: handshake acknowledgment."""

    shard: int
    pid: int

    def _pack(self) -> bytes:
        return _pack_scalar(self.shard) + _pack_scalar(self.pid)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Ready", int]:
        shard, offset = _unpack_scalar(buf, 0)
        pid, offset = _unpack_scalar(buf, offset)
        return cls(shard=shard, pid=pid), offset


@dataclass(frozen=True)
class VocabDelta:
    """Append-only vocabulary replication: items for columns ``base..``."""

    base: int
    items: np.ndarray  # int64 item ids, in column-assignment order

    def _pack(self) -> bytes:
        return _pack_scalar(self.base) + _pack_array(self.items)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["VocabDelta", int]:
        base, offset = _unpack_scalar(buf, 0)
        items, offset = _unpack_array(buf, offset)
        return cls(base=base, items=items), offset


@dataclass(frozen=True)
class WriteBatch:
    """Placement-routed profile writes, in table-write order."""

    user_ids: np.ndarray  # int64
    items: np.ndarray  # int64
    values: np.ndarray  # float64

    def _pack(self) -> bytes:
        return (
            _pack_array(self.user_ids)
            + _pack_array(self.items)
            + _pack_array(self.values)
        )

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["WriteBatch", int]:
        user_ids, offset = _unpack_array(buf, 0)
        items, offset = _unpack_array(buf, offset)
        values, offset = _unpack_array(buf, offset)
        if not (user_ids.size == items.size == values.size):
            raise TransportError("write batch arrays disagree on length")
        return cls(user_ids=user_ids, items=items, values=values), offset


@dataclass(frozen=True)
class JobSlices:
    """One batch's job slices for one shard.

    ``map_version`` stamps the routing epoch the batch was scattered
    under; a worker whose epoch disagrees rejects the frame loudly (a
    stale stamp means the frame crossed a migration it should not
    have).

    ``trace_id`` / ``trace_parent`` (v4) carry the coordinator's trace
    context when request tracing is on: the worker measures its score
    span under this parent and ships it back on the :class:`Partials`
    reply, so both sides of the process boundary stitch into one
    trace.  Both are 0 when tracing is off -- the frame then carries
    no trace content at all.
    """

    batch_id: int
    truncate: bool  # ship shard-local top-k only
    slices: tuple[ShardSlice, ...]
    map_version: int = 0
    trace_id: int = 0
    trace_parent: int = 0

    def _pack(self) -> bytes:
        parts = [
            _pack_scalar(self.batch_id),
            _pack_scalar(1 if self.truncate else 0),
            _pack_scalar(self.map_version),
            _pack_scalar(self.trace_id),
            _pack_scalar(self.trace_parent),
            _pack_scalar(len(self.slices)),
        ]
        for piece in self.slices:
            parts.append(_pack_scalar(piece.job_index))
            parts.append(_pack_scalar(piece.k))
            parts.append(_pack_scalar(piece.liked_count))
            parts.append(_pack_str(piece.metric))
            parts.append(_pack_array(piece.query_cols))
            parts.append(_pack_array(piece.candidate_ids))
            parts.append(_pack_array(piece.positions))
        return b"".join(parts)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["JobSlices", int]:
        batch_id, offset = _unpack_scalar(buf, 0)
        truncate, offset = _unpack_scalar(buf, offset)
        map_version, offset = _unpack_scalar(buf, offset)
        trace_id, offset = _unpack_scalar(buf, offset)
        trace_parent, offset = _unpack_scalar(buf, offset)
        count, offset = _unpack_scalar(buf, offset)
        if count < 0 or truncate not in (0, 1):
            raise TransportError("malformed job-slice header")
        slices = []
        for _ in range(count):
            job_index, offset = _unpack_scalar(buf, offset)
            k, offset = _unpack_scalar(buf, offset)
            liked_count, offset = _unpack_scalar(buf, offset)
            metric, offset = _unpack_str(buf, offset)
            query_cols, offset = _unpack_array(buf, offset)
            candidate_ids, offset = _unpack_array(buf, offset)
            positions, offset = _unpack_array(buf, offset)
            if candidate_ids.size != positions.size:
                raise TransportError("slice ids/positions disagree")
            slices.append(
                ShardSlice(
                    job_index=job_index,
                    candidate_ids=candidate_ids,
                    positions=positions,
                    query_cols=query_cols,
                    liked_count=liked_count,
                    metric=metric,
                    k=k,
                )
            )
        return (
            cls(
                batch_id=batch_id,
                truncate=bool(truncate),
                slices=tuple(slices),
                map_version=map_version,
                trace_id=trace_id,
                trace_parent=trace_parent,
            ),
            offset,
        )


@dataclass(frozen=True)
class WireSpan:
    """One span measured inside a worker process (v4).

    Attached to a :class:`Partials` reply when the triggering
    :class:`JobSlices` frame carried a trace context.  ``start_us`` /
    ``dur_us`` are ``perf_counter``-based microseconds --
    ``CLOCK_MONOTONIC`` on Linux is system-wide, so the parent adopts
    the span onto the shared timeline unchanged.
    """

    name: str
    span_id: int
    parent_id: int
    start_us: int
    dur_us: int
    pid: int

    def _pack(self) -> bytes:
        return _pack_str(self.name) + b"".join(
            _pack_scalar(value)
            for value in (
                self.span_id,
                self.parent_id,
                self.start_us,
                self.dur_us,
                self.pid,
            )
        )

    @classmethod
    def _unpack(cls, buf: bytes, offset: int) -> tuple["WireSpan", int]:
        name, offset = _unpack_str(buf, offset)
        span_id, offset = _unpack_scalar(buf, offset)
        parent_id, offset = _unpack_scalar(buf, offset)
        start_us, offset = _unpack_scalar(buf, offset)
        dur_us, offset = _unpack_scalar(buf, offset)
        pid, offset = _unpack_scalar(buf, offset)
        return (
            cls(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start_us=start_us,
                dur_us=dur_us,
                pid=pid,
            ),
            offset,
        )


@dataclass(frozen=True)
class Partials:
    """Worker -> parent: per-job wire partials for one batch.

    ``spans`` (v4) carries the worker's measured score spans when the
    batch was traced; it is always empty for untraced batches, so the
    frame's request payload is byte-identical with tracing off.
    """

    batch_id: int
    partials: tuple[WirePartial, ...]
    spans: tuple[WireSpan, ...] = ()

    def _pack(self) -> bytes:
        parts = [_pack_scalar(self.batch_id), _pack_scalar(len(self.partials))]
        for partial in self.partials:
            parts.append(_pack_scalar(partial.job_index))
            parts.append(_pack_array(partial.positions))
            parts.append(_pack_array(partial.scores))
            parts.append(_pack_array(partial.pop_cols))
            parts.append(_pack_array(partial.pop_counts))
        parts.append(_pack_scalar(len(self.spans)))
        for span in self.spans:
            parts.append(span._pack())
        return b"".join(parts)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Partials", int]:
        batch_id, offset = _unpack_scalar(buf, 0)
        count, offset = _unpack_scalar(buf, offset)
        if count < 0:
            raise TransportError("negative partial count")
        partials = []
        for _ in range(count):
            job_index, offset = _unpack_scalar(buf, offset)
            positions, offset = _unpack_array(buf, offset)
            scores, offset = _unpack_array(buf, offset)
            pop_cols, offset = _unpack_array(buf, offset)
            pop_counts, offset = _unpack_array(buf, offset)
            if positions.size != scores.size:
                raise TransportError("partial positions/scores disagree")
            if pop_cols.size != pop_counts.size:
                raise TransportError("partial histogram arrays disagree")
            partials.append(
                WirePartial(
                    job_index=job_index,
                    positions=positions,
                    scores=scores,
                    pop_cols=pop_cols,
                    pop_counts=pop_counts,
                )
            )
        span_count, offset = _unpack_scalar(buf, offset)
        if span_count < 0:
            raise TransportError("negative span count")
        spans = []
        for _ in range(span_count):
            span, offset = WireSpan._unpack(buf, offset)
            spans.append(span)
        return (
            cls(
                batch_id=batch_id,
                partials=tuple(partials),
                spans=tuple(spans),
            ),
            offset,
        )


@dataclass(frozen=True)
class StatsRequest:
    """Parent -> worker: ask for the shard's load/churn counters."""

    def _pack(self) -> bytes:
        return b""

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["StatsRequest", int]:
        return cls(), 0


@dataclass(frozen=True)
class StatsReply:
    """Worker -> parent: one shard's ``ShardStats`` fields.

    ``evictions`` / ``arena_capacity`` (v6) surface the worker-side
    memory picture: rows dropped by the shard's
    :class:`~repro.engine.liked_matrix.MemoryPolicy` and the allocated
    arena cells (capacity, not just live entries -- the number that
    actually bounds resident bytes).
    """

    users: int
    arena_live: int
    arena_garbage: int
    writes: int
    compactions: int
    pid: int
    evictions: int = 0
    arena_capacity: int = 0

    def _pack(self) -> bytes:
        return b"".join(
            _pack_scalar(value)
            for value in (
                self.users,
                self.arena_live,
                self.arena_garbage,
                self.writes,
                self.compactions,
                self.pid,
                self.evictions,
                self.arena_capacity,
            )
        )

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["StatsReply", int]:
        values = []
        offset = 0
        for _ in range(8):
            value, offset = _unpack_scalar(buf, offset)
            values.append(value)
        return cls(*values), offset


@dataclass(frozen=True)
class MapUpdate:
    """Parent -> worker: the placement map's routing epoch moved.

    Broadcast to every worker after a migration commits.  Epochs are
    monotone: a worker accepts any ``version >= `` its own (handoff
    participants already bumped while applying the move, so the
    broadcast is idempotent for them) and rejects a regression.
    """

    version: int

    def _pack(self) -> bytes:
        return _pack_scalar(self.version)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["MapUpdate", int]:
        version, offset = _unpack_scalar(buf, 0)
        return cls(version=version), offset


@dataclass(frozen=True)
class HandoffRequest:
    """Parent -> old owner: extract-and-evict one placement bucket.

    ``version`` is the routing epoch the migration creates; the worker
    validates it advances its local epoch by exactly one, extracts the
    bucket's users (write replay + local eviction), bumps its epoch,
    and answers with the matching :class:`HandoffData`.
    """

    bucket: int
    version: int

    def _pack(self) -> bytes:
        return _pack_scalar(self.bucket) + _pack_scalar(self.version)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["HandoffRequest", int]:
        bucket, offset = _unpack_scalar(buf, 0)
        version, offset = _unpack_scalar(buf, offset)
        return cls(bucket=bucket, version=version), offset


@dataclass(frozen=True)
class HandoffData:
    """One bucket's write replay (old owner -> parent -> new owner).

    The rows are the bucket's users' current value per rated item, in
    the old owner's table order -- the warm-start form, which is
    bit-equivalent to the users' full write history for every
    liked/rated-set read.  The new owner validates the epoch advance,
    replays the rows through its local table, and bumps its epoch.
    """

    bucket: int
    version: int
    user_ids: np.ndarray  # int64
    items: np.ndarray  # int64
    values: np.ndarray  # float64

    def _pack(self) -> bytes:
        return (
            _pack_scalar(self.bucket)
            + _pack_scalar(self.version)
            + _pack_array(self.user_ids)
            + _pack_array(self.items)
            + _pack_array(self.values)
        )

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["HandoffData", int]:
        bucket, offset = _unpack_scalar(buf, 0)
        version, offset = _unpack_scalar(buf, offset)
        user_ids, offset = _unpack_array(buf, offset)
        items, offset = _unpack_array(buf, offset)
        values, offset = _unpack_array(buf, offset)
        if not (user_ids.size == items.size == values.size):
            raise TransportError("handoff arrays disagree on length")
        return (
            cls(
                bucket=bucket,
                version=version,
                user_ids=user_ids,
                items=items,
                values=values,
            ),
            offset,
        )


@dataclass(frozen=True)
class SplitBuckets:
    """Parent -> worker: refine the bucket space in place (v5).

    ``num_buckets`` is the *new* bucket count -- an exact multiple of
    the worker's current one, because bucket refinement relies on
    modulo stability: ``mix(uid) % kN`` is congruent to
    ``mix(uid) % N`` mod ``N``, so old bucket ``b`` splits into the
    ``k`` new buckets ``{b, b + N, ..., b + (k-1)N}`` and no user
    changes owner at split time.  ``version`` is the routing epoch the
    split creates; like a handoff, the worker insists it advances its
    local epoch by exactly one, so a worker that misses the split can
    never silently select users under a stale bucket numbering -- the
    next epoch-stamped frame fails loudly instead.
    """

    num_buckets: int
    version: int

    def _pack(self) -> bytes:
        return _pack_scalar(self.num_buckets) + _pack_scalar(self.version)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["SplitBuckets", int]:
        num_buckets, offset = _unpack_scalar(buf, 0)
        version, offset = _unpack_scalar(buf, offset)
        return cls(num_buckets=num_buckets, version=version), offset


@dataclass(frozen=True)
class Ping:
    """Parent -> worker: liveness probe (v3).

    ``nonce`` is an arbitrary caller-chosen value the worker must echo
    back, so a reply can never be confused with a stale probe's.
    """

    nonce: int

    def _pack(self) -> bytes:
        return _pack_scalar(self.nonce)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Ping", int]:
        nonce, offset = _unpack_scalar(buf, 0)
        return cls(nonce=nonce), offset


@dataclass(frozen=True)
class Pong:
    """Worker -> parent: probe echo plus the worker's identity (v3).

    Echoing ``shard`` and ``pid`` lets the supervisor assert the reply
    came from the worker it probed, not a misrouted or stale peer.
    """

    nonce: int
    shard: int
    pid: int

    def _pack(self) -> bytes:
        return (
            _pack_scalar(self.nonce)
            + _pack_scalar(self.shard)
            + _pack_scalar(self.pid)
        )

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Pong", int]:
        nonce, offset = _unpack_scalar(buf, 0)
        shard, offset = _unpack_scalar(buf, offset)
        pid, offset = _unpack_scalar(buf, offset)
        return cls(nonce=nonce, shard=shard, pid=pid), offset


@dataclass(frozen=True)
class MetricsRequest:
    """Parent -> worker: ask for the shard's metrics snapshot (v4)."""

    def _pack(self) -> bytes:
        return b""

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["MetricsRequest", int]:
        return cls(), 0


@dataclass(frozen=True)
class WireSample:
    """One flattened metric sample inside a :class:`MetricsSnapshot`.

    ``kind`` is an index into ``("counter", "gauge", "histogram")``;
    ``labels`` is the ``k=v,k=v`` form; histogram ``values`` are
    ``[count, sum, *bucket_counts]`` with the bucket ``bounds``
    shipped alongside (see :mod:`repro.obs.exposition`, which owns
    both directions of this conversion).
    """

    kind: int
    name: str
    labels: str
    values: np.ndarray  # float64
    bounds: np.ndarray  # float64; empty except for histograms

    def __post_init__(self) -> None:
        if self.kind not in (0, 1, 2):
            raise TransportError(f"unknown metric kind {self.kind}")

    def _pack(self) -> bytes:
        return (
            _pack_scalar(self.kind)
            + _pack_str(self.name)
            + _pack_str(self.labels)
            + _pack_array(self.values)
            + _pack_array(self.bounds)
        )

    @classmethod
    def _unpack(cls, buf: bytes, offset: int) -> tuple["WireSample", int]:
        kind, offset = _unpack_scalar(buf, offset)
        name, offset = _unpack_str(buf, offset)
        labels, offset = _unpack_str(buf, offset)
        values, offset = _unpack_array(buf, offset)
        bounds, offset = _unpack_array(buf, offset)
        return (
            cls(
                kind=kind,
                name=name,
                labels=labels,
                values=values.astype(np.float64),
                bounds=bounds.astype(np.float64),
            ),
            offset,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Worker -> parent: the shard registry's full snapshot (v4)."""

    shard: int
    samples: tuple[WireSample, ...]

    def _pack(self) -> bytes:
        parts = [_pack_scalar(self.shard), _pack_scalar(len(self.samples))]
        for sample in self.samples:
            parts.append(sample._pack())
        return b"".join(parts)

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["MetricsSnapshot", int]:
        shard, offset = _unpack_scalar(buf, 0)
        count, offset = _unpack_scalar(buf, offset)
        if count < 0:
            raise TransportError("negative sample count")
        samples = []
        for _ in range(count):
            sample, offset = WireSample._unpack(buf, offset)
            samples.append(sample)
        return cls(shard=shard, samples=tuple(samples)), offset


@dataclass(frozen=True)
class Shutdown:
    """Parent -> worker: drain and exit cleanly."""

    def _pack(self) -> bytes:
        return b""

    @classmethod
    def _unpack(cls, buf: bytes) -> tuple["Shutdown", int]:
        return cls(), 0


Message = (
    Hello
    | Ready
    | VocabDelta
    | WriteBatch
    | JobSlices
    | Partials
    | StatsRequest
    | StatsReply
    | Shutdown
    | MapUpdate
    | HandoffRequest
    | HandoffData
    | Ping
    | Pong
    | MetricsRequest
    | MetricsSnapshot
    | SplitBuckets
)

_MESSAGE_TYPES: dict[FrameType, type] = {
    FrameType.HELLO: Hello,
    FrameType.READY: Ready,
    FrameType.VOCAB_DELTA: VocabDelta,
    FrameType.WRITE_BATCH: WriteBatch,
    FrameType.JOB_SLICES: JobSlices,
    FrameType.PARTIALS: Partials,
    FrameType.STATS_REQUEST: StatsRequest,
    FrameType.STATS_REPLY: StatsReply,
    FrameType.SHUTDOWN: Shutdown,
    FrameType.MAP_UPDATE: MapUpdate,
    FrameType.HANDOFF_REQUEST: HandoffRequest,
    FrameType.HANDOFF_DATA: HandoffData,
    FrameType.PING: Ping,
    FrameType.PONG: Pong,
    FrameType.METRICS_REQUEST: MetricsRequest,
    FrameType.METRICS_SNAPSHOT: MetricsSnapshot,
    FrameType.SPLIT_BUCKETS: SplitBuckets,
}
_FRAME_OF_TYPE = {cls: frame for frame, cls in _MESSAGE_TYPES.items()}


def encode_message(msg: Message) -> bytes:
    """One full frame (header + payload) for ``msg``."""
    frame_type = _FRAME_OF_TYPE.get(type(msg))
    if frame_type is None:
        raise TransportError(f"not a protocol message: {type(msg).__name__}")
    payload = msg._pack()
    return (
        _HEADER.pack(
            PROTOCOL_MAGIC, PROTOCOL_VERSION, int(frame_type), len(payload)
        )
        + payload
    )


def decode_message(buf: bytes, offset: int = 0) -> tuple[Message, int]:
    """Decode one frame at ``offset``; returns ``(message, next offset)``.

    Rejects truncated frames (:class:`TruncatedFrameError`), foreign
    protocol versions (:class:`VersionMismatchError`), bad magic,
    unknown frame types, and payloads whose content over- or
    under-runs the declared length (:class:`TransportError`).
    """
    if offset + _HEADER.size > len(buf):
        raise TruncatedFrameError("stream ended inside a frame header")
    magic, version, type_byte, length = _HEADER.unpack_from(buf, offset)
    if magic != PROTOCOL_MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol v{version}, this end v{PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise TransportError(f"frame payload of {length} bytes exceeds cap")
    try:
        frame_type = FrameType(type_byte)
    except ValueError:
        raise TransportError(f"unknown frame type {type_byte}") from None
    start = offset + _HEADER.size
    end = start + length
    if end > len(buf):
        raise TruncatedFrameError("stream ended inside a frame payload")
    payload = buf[start:end]
    msg, consumed = _MESSAGE_TYPES[frame_type]._unpack(payload)
    if consumed != length:
        raise TransportError(
            f"{frame_type.name} payload declared {length} bytes "
            f"but parsed {consumed}"
        )
    return msg, end


# --- stream channel ---------------------------------------------------------


class Channel:
    """Frame-at-a-time messaging over a connected stream socket."""

    def __init__(self, sock) -> None:
        self._sock = sock

    @property
    def sock(self):
        """The underlying socket (fork inheritance lists need the fd)."""
        return self._sock

    def send(self, msg: Message) -> None:
        """Serialize and write one frame (blocking until accepted)."""
        self._sock.sendall(encode_message(msg))

    def _recv_exact(self, count: int, *, header: bool) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if header and remaining == count:
                    raise ConnectionClosedError("peer closed the connection")
                raise TruncatedFrameError(
                    "connection closed mid-frame "
                    f"({count - remaining}/{count} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Message:
        """Read exactly one frame; :class:`ConnectionClosedError` on EOF.

        The header is fully validated (magic, version, frame type,
        length cap) *before* the payload read: a desynced peer fails
        fast with a :class:`TransportError` instead of this end
        blocking on a garbage length the peer will never fill.
        """
        header = self._recv_exact(_HEADER.size, header=True)
        magic, version, type_byte, length = _HEADER.unpack(header)
        if magic != PROTOCOL_MAGIC:
            raise TransportError(f"bad frame magic {magic!r}")
        if version != PROTOCOL_VERSION:
            raise VersionMismatchError(
                f"peer speaks protocol v{version}, this end v{PROTOCOL_VERSION}"
            )
        if type_byte not in FrameType._value2member_map_:
            raise TransportError(f"unknown frame type {type_byte}")
        if length > MAX_PAYLOAD:
            raise TransportError(f"frame payload of {length} bytes exceeds cap")
        payload = self._recv_exact(length, header=False) if length else b""
        msg, _ = decode_message(header + payload)
        return msg

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
