"""Hash-based user placement across shards.

Users are assigned to shards by a fixed avalanche hash of their id --
the stateless equivalent of a placement map.  A mixing hash (rather
than ``uid % num_shards``) keeps the assignment balanced even when
user ids arrive with arithmetic structure (dense ranges, strided
samples), which is exactly what replayed traces produce.

The hash is the finalizer of SplitMix64: every input bit affects every
output bit, it is exact in int64/uint64 arithmetic, and it is trivially
vectorizable -- :meth:`ShardPlacement.shards_of` places a whole
candidate array with five numpy ops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB
_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(value: int) -> int:
    """SplitMix64 finalizer over a non-negative integer."""
    value &= _MASK
    value ^= value >> 30
    value = (value * _MULT1) & _MASK
    value ^= value >> 27
    value = (value * _MULT2) & _MASK
    value ^= value >> 31
    return value


class ShardPlacement:
    """Deterministic ``user id -> shard`` assignment."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards

    def shard_of(self, user_id: int) -> int:
        """Owning shard of ``user_id``."""
        return _mix(user_id) % self.num_shards

    def shards_of(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an int array."""
        value = np.asarray(user_ids).astype(np.uint64, copy=True)
        value ^= value >> np.uint64(30)
        value *= np.uint64(_MULT1)
        value ^= value >> np.uint64(27)
        value *= np.uint64(_MULT2)
        value ^= value >> np.uint64(31)
        return (value % np.uint64(self.num_shards)).astype(np.int64)

    def partition(
        self, user_ids: "Sequence[int] | np.ndarray"
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a candidate list by owning shard.

        Returns one ``(ids, positions)`` pair per shard, where
        ``positions`` are the candidates' indices in the *input*
        sequence, ascending.  Positions carry the deterministic global
        order (jobs sort candidates by token), so cross-shard merges
        can reproduce the single-matrix tie-breaks exactly without
        shipping tokens to the shards.  Shared by the in-process
        :class:`~repro.cluster.sharded_matrix.ShardedLikedMatrix` and
        the parent side of the process executor.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        if ids.size == 0:
            empty: np.ndarray = ids
            return [(empty, empty) for _ in range(self.num_shards)]
        shard_of_id = self.shards_of(ids)
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        for shard in range(self.num_shards):
            positions = np.nonzero(shard_of_id == shard)[0]
            parts.append((ids[positions], positions))
        return parts
