"""Movable user placement: rendezvous-hashed virtual-node buckets.

Users hash to one of ``num_buckets`` *buckets* (virtual nodes) by a
fixed avalanche hash of their id; buckets map to shards through an
explicit, movable ``bucket -> owner`` array.  The indirection is what
makes placement *elastic*: a hot or churning shard sheds load by
handing whole buckets to another shard (see
:meth:`PlacementMap.move_bucket` and the handoff machinery in
:mod:`repro.cluster.rebalance` / :mod:`repro.cluster.transport`),
while the user-to-bucket hash never changes -- so a migration moves
exactly one bucket's users and nobody else.

The initial ``bucket -> owner`` assignment is rendezvous (highest
random weight) hashing: every bucket picks the shard with the maximal
``mix(bucket_key ^ shard_key)`` weight.  Rendezvous gives the map its
elasticity-friendly baseline: adding shard ``N`` moves only the
buckets shard ``N`` wins, and removing the last shard moves only the
buckets it owned -- no global reshuffle (enforced by the hypothesis
suite in ``tests/test_rebalance.py``).

Every mutation bumps :attr:`PlacementMap.version` -- the *routing
epoch*.  The epoch is the coherence token of the cluster: the process
executor stamps job frames with it and workers reject stale stamps,
so a frame routed under an outdated map can never read or write a
moved bucket silently (see ``docs/architecture.md``).

The user hash is the finalizer of SplitMix64: every input bit affects
every output bit, it is exact in int64/uint64 arithmetic, and it is
trivially vectorizable -- :meth:`PlacementMap.shards_of` places a
whole candidate array with five numpy ops plus one owner-table gather.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB
_MASK = 0xFFFFFFFFFFFFFFFF

#: Golden-ratio increments keying buckets and shards into the mixer's
#: domain; distinct constants keep the two key families uncorrelated.
_BUCKET_KEY = 0x9E3779B97F4A7C15
_SHARD_KEY = 0xD1B54A32D192ED03

#: Default virtual-node density.  More buckets = finer-grained
#: migrations and a smoother rendezvous assignment, at the cost of one
#: int64 per bucket in the owner table -- negligible at this density.
BUCKETS_PER_SHARD = 64


def _mix(value: int) -> int:
    """SplitMix64 finalizer over a non-negative integer."""
    value &= _MASK
    value ^= value >> 30
    value = (value * _MULT1) & _MASK
    value ^= value >> 27
    value = (value * _MULT2) & _MASK
    value ^= value >> 31
    return value


def bucket_of_id(user_id: int, num_buckets: int) -> int:
    """Bucket of ``user_id`` in a map with ``num_buckets`` buckets.

    A pure function of ``(user_id, num_buckets)`` -- shard workers use
    it to select a handed-off bucket's users from their local tables
    without ever holding the (parent-owned) owner map.
    """
    return _mix(user_id) % num_buckets


def rendezvous_owner(bucket: int, num_shards: int) -> int:
    """Rendezvous winner of ``bucket`` among ``num_shards`` shards.

    The highest-random-weight rule: the owning shard is the one whose
    ``mix(bucket_key ^ shard_key)`` weight is maximal.  Weights are
    independent per (bucket, shard) pair, so changing the shard count
    by one only reassigns buckets the added shard wins (or the removed
    shard owned) -- every other bucket keeps its owner.
    """
    bucket_key = _mix((bucket * _BUCKET_KEY) & _MASK)
    best_shard = 0
    best_weight = -1
    for shard in range(num_shards):
        weight = _mix(bucket_key ^ _mix((shard + 1) * _SHARD_KEY & _MASK))
        if weight > best_weight:
            best_weight = weight
            best_shard = shard
    return best_shard


class PlacementMap:
    """Versioned, movable ``user id -> bucket -> shard`` assignment."""

    def __init__(
        self,
        num_shards: int,
        num_buckets: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        if num_buckets is None:
            num_buckets = BUCKETS_PER_SHARD * num_shards
        if num_buckets < num_shards:
            raise ValueError(
                f"need at least one bucket per shard, got {num_buckets} "
                f"buckets for {num_shards} shards"
            )
        self.num_shards = num_shards
        self.num_buckets = num_buckets
        #: Routing epoch: bumped by every :meth:`move_bucket` and
        #: :meth:`split_buckets` -- every change to the routing
        #: *function* (owner table or bucket count), and nothing else:
        #: shard joins and retires move no bucket and keep the epoch.
        #: All routing peers (coordinator, scheduler, workers) must
        #: agree on it before exchanging placement-routed frames.
        self.version = 0
        self._owner = np.fromiter(
            (rendezvous_owner(bucket, num_shards) for bucket in range(num_buckets)),
            dtype=np.int64,
            count=num_buckets,
        )

    # --- lookup -------------------------------------------------------------

    def bucket_of(self, user_id: int) -> int:
        """Bucket of ``user_id`` (never changes for a given map size)."""
        return _mix(user_id) % self.num_buckets

    def buckets_of(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bucket_of` over an int array."""
        value = np.asarray(user_ids).astype(np.uint64, copy=True)
        value ^= value >> np.uint64(30)
        value *= np.uint64(_MULT1)
        value ^= value >> np.uint64(27)
        value *= np.uint64(_MULT2)
        value ^= value >> np.uint64(31)
        return (value % np.uint64(self.num_buckets)).astype(np.int64)

    def owner_of(self, bucket: int) -> int:
        """Shard currently owning ``bucket``."""
        if not 0 <= bucket < self.num_buckets:
            raise ValueError(
                f"bucket {bucket} out of range [0, {self.num_buckets})"
            )
        return int(self._owner[bucket])

    def owners(self) -> np.ndarray:
        """Copy of the full ``bucket -> shard`` owner table."""
        return self._owner.copy()

    def buckets_owned_by(self, shard: int) -> np.ndarray:
        """Buckets currently owned by ``shard``, ascending."""
        return np.nonzero(self._owner == shard)[0].astype(np.int64)

    def shard_of(self, user_id: int) -> int:
        """Owning shard of ``user_id`` under the current map."""
        return int(self._owner[_mix(user_id) % self.num_buckets])

    def shards_of(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an int array."""
        return self._owner[self.buckets_of(user_ids)]

    # --- mutation -----------------------------------------------------------

    def validate_move(self, bucket: int, new_owner: int) -> int:
        """Raise unless moving ``bucket`` to ``new_owner`` is legal.

        The single home of the migration preconditions -- callers that
        perform side effects *before* the map bump (the handoff paths)
        run this up front so an illegal move fails before anything
        mutates.  Returns the bucket's current owner.
        """
        old_owner = self.owner_of(bucket)
        if not 0 <= new_owner < self.num_shards:
            raise ValueError(
                f"shard {new_owner} out of range [0, {self.num_shards})"
            )
        if new_owner == old_owner:
            raise ValueError(
                f"bucket {bucket} already lives on shard {new_owner}"
            )
        return old_owner

    def move_bucket(self, bucket: int, new_owner: int) -> int:
        """Reassign ``bucket`` to ``new_owner``; returns the new version.

        This is the *map bump* of a shard handoff -- callers must move
        the bucket's rows first and apply the bump only once the data
        is safely at the destination, so a failed handoff leaves
        routing untouched.  The version advances by exactly one per
        move; routing peers validate that discipline (a skipped epoch
        means a lost frame).
        """
        self.validate_move(bucket, new_owner)
        self._owner[bucket] = new_owner
        self.version += 1
        return self.version

    # --- elastic topology ---------------------------------------------------

    def add_shard(self) -> int:
        """Grow the shard count by one; returns the new shard's index.

        The new shard joins owning *nothing*: the owner table is
        untouched, so routing -- and therefore the epoch -- does not
        change.  Callers then migrate the joiner's
        :meth:`rendezvous_share` in bucket by bucket, each move an
        ordinary epoch-bumped :meth:`move_bucket`.
        """
        shard = self.num_shards
        self.num_shards += 1
        return shard

    def remove_last_shard(self) -> int:
        """Shrink the shard count by one; returns the removed index.

        Only the *last* shard can retire (lower indices would force a
        global renumbering), and only once it owns no buckets -- the
        caller drains them out first, each drain an epoch-bumped move.
        Like :meth:`add_shard` this leaves the owner table, and hence
        the epoch, untouched.
        """
        if self.num_shards < 2:
            raise ValueError("cannot remove the only shard")
        shard = self.num_shards - 1
        owned = self.buckets_owned_by(shard)
        if owned.size:
            raise ValueError(
                f"shard {shard} still owns {owned.size} buckets; "
                "drain them before retiring it"
            )
        self.num_shards -= 1
        return shard

    def rendezvous_share(self, shard: int) -> np.ndarray:
        """Buckets ``shard`` wins under rendezvous at the current count.

        The minimal-movement migration plan for a joiner: rendezvous
        guarantees these are exactly the buckets that *would* have
        belonged to ``shard`` had it been present at boot, and every
        other bucket's winner is unchanged.  Ascending bucket indices.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return np.fromiter(
            (
                bucket
                for bucket in range(self.num_buckets)
                if rendezvous_owner(bucket, self.num_shards) == shard
            ),
            dtype=np.int64,
        )

    def split_buckets(self, factor: int = 2) -> int:
        """Refine the bucket space by ``factor``; returns the new version.

        Splitting multiplies ``num_buckets`` and replicates the owner
        table ``factor`` times: because ``mix(uid) % (factor * N)`` is
        congruent to ``mix(uid) % N`` mod ``N``, old bucket ``b``
        splits into new buckets ``{b, b + N, ...}`` and duplicating
        the owner row keeps every user's owner -- *no data moves at
        split time*.  What changes is granularity: a pathologically
        hot bucket's users now spread over ``factor`` independently
        movable buckets, so the rebalancer can peel load off it.  The
        epoch advances by exactly one, handoff-style; process workers
        learn the new count through the v5 ``SplitBuckets`` frame.
        """
        if factor < 2:
            raise ValueError(f"split factor must be >= 2, got {factor}")
        self._owner = np.tile(self._owner, factor)
        self.num_buckets *= factor
        self.version += 1
        return self.version

    # --- partitioning -------------------------------------------------------

    def partition(
        self, user_ids: "Sequence[int] | np.ndarray"
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a candidate list by owning shard.

        Returns one ``(ids, positions)`` pair per shard, where
        ``positions`` are the candidates' indices in the *input*
        sequence, ascending.  Positions carry the deterministic global
        order (jobs sort candidates by token), so cross-shard merges
        can reproduce the single-matrix tie-breaks exactly without
        shipping tokens to the shards.  Shared by the in-process
        :class:`~repro.cluster.sharded_matrix.ShardedLikedMatrix` and
        the parent side of the process executor.

        The output is always a true partition of the input: every
        candidate lands in exactly one part (each id has exactly one
        bucket and each bucket exactly one owner), which is what makes
        the cross-shard merge exact under *any* owner table.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        if ids.size == 0:
            empty: np.ndarray = ids
            return [(empty, empty) for _ in range(self.num_shards)]
        shard_of_id = self.shards_of(ids)
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        for shard in range(self.num_shards):
            positions = np.nonzero(shard_of_id == shard)[0]
            parts.append((ids[positions], positions))
        return parts


#: Backward-compatible name: earlier revisions pinned users to shards
#: with a fixed ``mix(uid) % num_shards`` hash under this class name;
#: the movable map subsumes it (same mixing hash, same partition
#: contract, plus buckets/versioning).
ShardPlacement = PlacementMap
