"""Algorithm 2 -- item recommendation ``alpha(Su, Pu)``.

    1: var popularity[];
    2: for all uid : user in Su do
    3:     for all iid : item in Su[uid].getProfile() do
    4:         if Pu does not contain iid then
    5:             popularity[iid]++;
    6:         end if
    7:     end for
    8: end for
    9: Ru = subList(r, sort(popularity));
    10: return Ru, the r most popular items

Section 3.2 clarifies that the recommendation exploits "the items
*liked* by the (one- and two-hop) neighbors", so popularity counts
liked items only; the exclusion test uses the full profile ``Pu``
(anything the user has any opinion on is never re-recommended).

Like Algorithm 1, this single implementation serves the HyRec widget,
the CRec front-end (which runs it server-side) and the P2P nodes.
The ``setRecommendedItems()`` customization hook of Table 1 maps to
passing a different callable to the widget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its popularity count."""

    item_id: int
    popularity: int


def recommend_most_popular(
    user_rated: AbstractSet[int],
    candidate_liked: Mapping[int, AbstractSet[int]] | Iterable[AbstractSet[int]],
    r: int,
) -> list[Recommendation]:
    """Return the ``r`` most popular unseen items among the candidates.

    Args:
        user_rated: Every item present in ``Pu`` (liked *or* disliked).
        candidate_liked: Liked-item sets of the candidate users, either
            as a mapping (ignored keys) or a plain iterable of sets.
        r: Number of recommendations requested.

    Ties are broken by ascending item id for determinism.
    """
    if r < 1:
        raise ValueError(f"r must be at least 1, got {r}")
    if isinstance(candidate_liked, Mapping):
        liked_sets: Iterable[AbstractSet[int]] = candidate_liked.values()
    else:
        liked_sets = candidate_liked

    popularity: dict[int, int] = {}
    for liked in liked_sets:
        for item in liked:
            if item not in user_rated:
                popularity[item] = popularity.get(item, 0) + 1

    ranked = sorted(popularity.items(), key=lambda kv: (-kv[1], kv[0]))
    return [Recommendation(item_id=item, popularity=count) for item, count in ranked[:r]]
