"""The HyRec client widget (Section 3.2).

    "The widget does not need to maintain any local data structure: it
    receives the necessary information from the server and forgets it
    after displaying recommendations and sending the new KNN to the
    server."

:class:`HyRecWidget` is therefore a pure function from
:class:`~repro.core.jobs.PersonalizationJob` to
:class:`~repro.core.jobs.JobResult`.  The two customization hooks of
Table 1 -- ``setSimilarity()`` and ``setRecommendedItems()`` -- map to
the ``similarity`` and ``recommender`` constructor arguments.

An optional :class:`~repro.sim.devices.Device` lets the widget report
how long the job *would have taken* on a given machine under a given
CPU load; Figures 12-13 are sweeps of that estimate driven by the real
operation counts of real jobs.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Mapping

from repro.core.jobs import JobResult, PersonalizationJob
from repro.core.knn import knn_select
from repro.core.recommend import Recommendation, recommend_most_popular
from repro.core.similarity import SetMetric, get_metric
from repro.sim.devices import Device, widget_op_count

RecommenderFn = Callable[
    [AbstractSet[str], Mapping[str, AbstractSet[str]], int],
    list[Recommendation],
]


class HyRecWidget:
    """Stateless executor of personalization jobs."""

    def __init__(
        self,
        similarity: SetMetric | None = None,
        recommender: RecommenderFn | None = None,
        device: Device | None = None,
        payload_similarity=None,
    ) -> None:
        """
        Args:
            similarity: Override the similarity metric; by default the
                widget applies the metric named inside each job.
            recommender: Override Algorithm 2 with a custom item
                selection (the paper's ``setRecommendedItems()``).
            device: Optional device model used by
                :meth:`estimated_time`.
            payload_similarity: Score candidates on their *full*
                wire-format profiles (``{item: value}``) instead of
                liked sets -- the hook for the paper's non-binary
                extension (see :mod:`repro.core.weighted`).  Takes
                precedence over ``similarity``.
        """
        self._similarity_override = similarity
        self._payload_similarity = payload_similarity
        self._recommender: RecommenderFn = (
            recommender if recommender is not None else recommend_most_popular
        )
        self.device = device

    # --- job execution --------------------------------------------------------

    def process_job(self, job: PersonalizationJob) -> JobResult:
        """Run KNN selection and item recommendation for one job."""
        user_liked = _liked_keys(job.user_profile)
        user_rated = frozenset(job.user_profile)
        candidate_liked = {
            token: _liked_keys(profile) for token, profile in job.candidates.items()
        }

        if self._payload_similarity is not None:
            # Non-binary mode: rank candidates on full score vectors.
            neighbors = knn_select(
                job.user_profile,
                job.candidates,
                k=job.k,
                metric=self._payload_similarity,
                exclude=job.user_token,
            )
        else:
            metric = self._similarity_override or get_metric(job.metric)
            neighbors = knn_select(
                user_liked,
                candidate_liked,
                k=job.k,
                metric=metric,
                exclude=job.user_token,
            )
        recommendations = self._recommender(user_rated, candidate_liked, job.r)

        return JobResult(
            user_token=job.user_token,
            neighbor_tokens=[n.user_id for n in neighbors],
            recommended_items=[rec.item_id for rec in recommendations],
            neighbor_scores=[n.score for n in neighbors],
        )

    # --- device-time estimation (Figures 12-13) ----------------------------------

    def op_count(self, job: PersonalizationJob) -> int:
        """Primitive operations this job costs (see ``widget_op_count``)."""
        return widget_op_count(
            len(job.user_profile),
            (len(profile) for profile in job.candidates.values()),
        )

    def estimated_time(self, job: PersonalizationJob) -> float:
        """Seconds the job would take on the configured device."""
        if self.device is None:
            raise RuntimeError("no device model configured on this widget")
        return self.device.task_time(self.op_count(job))


def _liked_keys(profile: Mapping[str, float]) -> frozenset[str]:
    """Item keys with a positive opinion in a wire-format profile."""
    return frozenset(key for key, value in profile.items() if value == 1.0)


def make_job(
    user_token: str,
    user_profile: Mapping[str, float],
    candidates: Mapping[str, Mapping[str, float]],
    k: int = 10,
    r: int = 10,
    metric: str = "cosine",
) -> PersonalizationJob:
    """Convenience constructor for standalone widget experiments.

    Lets client-side studies (Figures 11-13) synthesize jobs of exact
    profile/candidate sizes without standing up a server.
    """
    return PersonalizationJob(
        user_token=user_token,
        user_profile=dict(user_profile),
        candidates={t: dict(p) for t, p in candidates.items()},
        k=k,
        r=r,
        metric=metric,
    )
