"""Non-binary (score-weighted) similarity -- the paper's extension.

Section 2.1: "For the sake of simplicity, we only consider binary
ratings ...  This rating can be easily extended to the non-binary
case [47]."  Reference [47] is GroupLens, whose classic metric is the
Pearson correlation over co-rated items.

These metrics operate on *wire-format profiles* -- the ``{item key:
value}`` dicts that personalization jobs already carry -- so a widget
can switch to weighted scoring without any server or protocol change:
pass :func:`payload_cosine` or :func:`payload_pearson` as the
``payload_similarity`` hook of :class:`repro.core.client.HyRecWidget`.

Binary compatibility: on 0/1 profiles, :func:`payload_cosine` treats
the dislikes as zero-weight and reduces to the liked-set cosine of
:mod:`repro.core.similarity`, so flipping the hook on is safe even
before a deployment starts collecting star ratings.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

PayloadMetric = Callable[[Mapping[str, float], Mapping[str, float]], float]


def payload_cosine(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Weighted cosine over sparse score vectors, in [0, 1].

    Values act as vector components (a 5-star opinion weighs five
    times a 1-star one); items missing from a profile contribute 0.
    """
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = 0.0
    for item, value in small.items():
        other = large.get(item)
        if other is not None:
            dot += value * other
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def payload_pearson(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """GroupLens-style Pearson correlation over co-rated items.

    Computed on the intersection only (the [47] convention), mapped
    from [-1, 1] to [0, 1] so it can drive Algorithm 1's ranking
    directly (ties and bounds behave like the other metrics).  Fewer
    than two co-rated items, or zero variance on either side, score 0
    -- no evidence, no similarity.
    """
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    shared = [item for item in small if item in large]
    if len(shared) < 2:
        return 0.0
    mean_a = sum(a[item] for item in shared) / len(shared)
    mean_b = sum(b[item] for item in shared) / len(shared)
    cov = var_a = var_b = 0.0
    for item in shared:
        da = a[item] - mean_a
        db = b[item] - mean_b
        cov += da * db
        var_a += da * da
        var_b += db * db
    if var_a == 0.0 or var_b == 0.0:
        return 0.0
    correlation = cov / math.sqrt(var_a * var_b)
    # Rounding can push a perfect (anti-)correlation a few ulps past
    # +/-1 (e.g. -1.0000000000000002), which would leak outside the
    # documented [0, 1] range after the affine map.  Clamp first.
    correlation = max(-1.0, min(1.0, correlation))
    return (correlation + 1.0) / 2.0


_PAYLOAD_METRICS: dict[str, PayloadMetric] = {
    "payload-cosine": payload_cosine,
    "payload-pearson": payload_pearson,
}


def get_payload_metric(name: str) -> PayloadMetric:
    """Look up a weighted metric by name."""
    try:
        return _PAYLOAD_METRICS[name]
    except KeyError:
        raise KeyError(
            f"unknown payload metric {name!r}; "
            f"available: {', '.join(sorted(_PAYLOAD_METRICS))}"
        ) from None
