"""Privacy analysis of the anonymous mapping (Section 6).

The paper's concluding remarks are candid about the limits of
HyRec's anonymization:

    "De-anonymizing HyRec's anonymous mapping is difficult if the
    data in profiles cannot be inferred from external sources [44]
    or other datasets [43]." / "...this mechanism does not suffice in
    the case of sensitive information (e.g., medical data) if
    cross-checking items is possible."

This module makes that caveat measurable.  :class:`LinkageAttack`
plays a curious client who records the anonymized candidate profiles
it receives before and after a reshuffle, then re-links new tokens to
old ones purely by profile content (profiles are quasi-identifiers:
a 100-movie history is essentially a fingerprint [43]).

``repro.eval.privacy`` runs the attack against a live server and
reports linkage accuracy as a function of profile size -- large
distinctive profiles re-link almost perfectly, tiny Digg-like ones
much less, which is exactly the boundary the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping

from repro.core.similarity import SetMetric, cosine

Observation = Mapping[str, AbstractSet]


@dataclass(frozen=True)
class LinkageReport:
    """Outcome of one cross-epoch linkage attempt."""

    linked: dict[str, str]  # new token -> guessed old token
    attempted: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of re-identification guesses that were right."""
        if self.attempted == 0:
            return 0.0
        return self.correct / self.attempted


class LinkageAttack:
    """Greedy best-match linking of anonymized profiles across epochs."""

    def __init__(self, metric: SetMetric = cosine, threshold: float = 0.0) -> None:
        """
        Args:
            metric: Content-similarity function between two observed
                profiles (liked-item sets).
            threshold: Minimum similarity to claim a link; below it
                the attacker abstains for that token.
        """
        if threshold < 0:
            raise ValueError("threshold cannot be negative")
        self.metric = metric
        self.threshold = threshold

    def link(
        self, before: Observation, after: Observation
    ) -> dict[str, str]:
        """Guess, for each post-reshuffle token, its old identity.

        Greedy maximum-similarity matching without replacement: the
        most confident pairs are claimed first, each old token used at
        most once.
        """
        scored: list[tuple[float, str, str]] = []
        for new_token, new_profile in after.items():
            for old_token, old_profile in before.items():
                similarity = self.metric(new_profile, old_profile)
                if similarity > self.threshold:
                    scored.append((similarity, new_token, old_token))
        scored.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))

        linked: dict[str, str] = {}
        used_old: set[str] = set()
        for _, new_token, old_token in scored:
            if new_token in linked or old_token in used_old:
                continue
            linked[new_token] = old_token
            used_old.add(old_token)
        return linked

    def evaluate(
        self,
        before: Observation,
        after: Observation,
        ground_truth: Mapping[str, str],
    ) -> LinkageReport:
        """Run the attack and score it against the true mapping.

        ``ground_truth`` maps each post-reshuffle token to the
        pre-reshuffle token of the same user (the experiment harness
        reads it from the server's anonymizer -- the attacker, of
        course, never sees it).
        """
        linked = self.link(before, after)
        correct = sum(
            1
            for new_token, old_token in linked.items()
            if ground_truth.get(new_token) == old_token
        )
        return LinkageReport(
            linked=linked, attempted=len(linked), correct=correct
        )
