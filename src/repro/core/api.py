"""The public web API of Table 1, as payload-level operations.

    https://HyRec/online/?uid=uid                       Client request
    https://HyRec/neighbors/?uid=uid&id0=..&id1=..&...  Update KNN selection

:class:`WebApi` turns those calls into bytes-in/bytes-out operations
(JSON, gzipped when the config says so); :mod:`repro.web` mounts them
on a real HTTP server.  Content providers building their own widget
would program against exactly this surface.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.jobs import JobResult
from repro.core.server import HyRecServer
from repro.messages import decode_json, encode_json, gzip_compress, gzip_decompress


class WebApi:
    """Byte-level facade over a :class:`HyRecServer`."""

    def __init__(self, server: HyRecServer) -> None:
        self.server = server

    @property
    def compress(self) -> bool:
        """Whether responses are gzipped (mirrors the server config)."""
        return self.server.config.compress

    # --- endpoint: /online/?uid= ------------------------------------------------

    def online(self, uid: int, now: float = 0.0) -> bytes:
        """Serve a personalization job for ``uid`` as wire bytes.

        Uses the server's fragment-cached fast path, which also meters
        the response on the ``server->client`` channel.
        """
        job = self.server.handle_online_request(uid, now=now)
        return self.server.render_online_response(job)

    # --- endpoint: /neighbors/?uid=&id0=&id1=... -----------------------------------

    def neighbors(self, uid: int, params: Mapping[str, str]) -> bytes:
        """Apply a widget's KNN update delivered as query parameters.

        ``params`` holds the widget's ``id0..idN`` neighbor tokens and
        optional ``rec0..recN`` recommended item keys, exactly like the
        querystring of the paper's API.
        """
        result = parse_neighbors_params(uid_token(self.server, uid), params)
        recommendations = self.server.handle_knn_update(uid, result)
        return self._encode({"ok": True, "recommended": recommendations})

    def neighbors_from_body(self, uid: int, body: bytes) -> bytes:
        """Apply a KNN update delivered as a (possibly gzipped) JSON body."""
        if body[:2] == b"\x1f\x8b":  # gzip magic
            body = gzip_decompress(body)
        result = JobResult.from_payload(decode_json(body))
        recommendations = self.server.handle_knn_update(uid, result)
        return self._encode({"ok": True, "recommended": recommendations})

    # --- helpers --------------------------------------------------------------------

    def _encode(self, payload: Any) -> bytes:
        raw = encode_json(payload)
        return gzip_compress(raw) if self.compress else raw

    def decode(self, data: bytes) -> Any:
        """Decode a response produced by this API (for clients/tests)."""
        if data[:2] == b"\x1f\x8b":
            data = gzip_decompress(data)
        return decode_json(data)


def uid_token(server: HyRecServer, uid: int) -> str:
    """Current anonymous token of ``uid`` (the widget echoes it back)."""
    return server.anonymizer.token_for_user(uid)


def parse_neighbors_params(
    user_token: str, params: Mapping[str, str]
) -> JobResult:
    """Rebuild a :class:`JobResult` from ``id0..idN`` / ``rec0..recN``."""
    neighbors: list[str] = []
    index = 0
    while f"id{index}" in params:
        neighbors.append(params[f"id{index}"])
        index += 1
    recommended: list[str] = []
    index = 0
    while f"rec{index}" in params:
        recommended.append(params[f"rec{index}"])
        index += 1
    return JobResult(
        user_token=user_token,
        neighbor_tokens=neighbors,
        recommended_items=recommended,
    )
