"""The HyRec server (Section 3.1).

The server owns the two global tables, orchestrates personalization
jobs, and never computes a similarity itself -- that is the whole
point of the architecture.  Its per-request work is:

1. update the requesting user's profile (already done via
   :meth:`HyRecServer.record_rating` as ratings arrive),
2. ask the :class:`~repro.core.sampler.HyRecSampler` for a candidate
   set,
3. assemble a :class:`~repro.core.jobs.PersonalizationJob` with the
   candidate profiles under anonymous tokens, and
4. on the follow-up ``/neighbors/`` call, validate and store the new
   KNN row.

Traffic through the server is metered (raw and gzipped sizes) on two
channels, ``server->client`` and ``client->server``; Figures 9-10 and
the Section 5.6 bandwidth numbers read these meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.anonymizer import AnonymousMapping
from repro.core.config import HyRecConfig
from repro.core.jobs import JobResult, PersonalizationJob
from repro.core.profiles import Profile
from repro.core.sampler import HyRecSampler
from repro.core.tables import KnnTable, ProfileTable
from repro.engine.jobs import EngineJob
from repro.engine.liked_matrix import LikedMatrix, MemoryPolicy
from repro.messages import MessageMeter
from repro.obs import Observability
from repro.obs.registry import MetricSample
from repro.sim.randomness import derive_rng

if TYPE_CHECKING:  # imported lazily at runtime (cluster imports core back)
    from repro.cluster import ClusterCoordinator, ShardStats
    from repro.cluster.rebalance import ShardRebalancer


@dataclass(frozen=True)
class ServerStats:
    """Counters exposed for the evaluation harness.

    Reads are non-destructive: polling ``server.stats`` twice in a row
    returns identical counts (per-shard rows included -- their round
    trips ship point-in-time worker counters, never deltas), so a
    dashboard polling loop can never double-count.  The counters
    accumulate from the server's birth; :meth:`HyRecServer.reset_stats`
    rebases the deltas without touching the underlying counters (whose
    raw values drive behavior like the reshuffle cadence, and remain
    the source of truth for the ``/metrics`` exposition).
    """

    online_requests: int
    knn_updates: int
    reshuffles: int
    #: Per-shard load/churn counters; empty unless ``engine="sharded"``.
    #: With ``executor="process"`` each entry is read over the wire
    #: from the worker process hosting the shard and carries its
    #: ``pid``.  This is the operator-facing load view; the
    #: :class:`~repro.cluster.rebalance.ShardRebalancer` keeps its own
    #: per-bucket write histogram from the same write stream (worker
    #: ``writes`` counters double-count handoff replays).
    shards: tuple["ShardStats", ...] = field(default=())
    #: Routing epoch of the movable placement map (bumped by every
    #: bucket migration); ``0`` unless ``engine="sharded"``.
    placement_version: int = 0
    #: Bucket migrations applied so far; ``0`` unless ``engine="sharded"``.
    migrations: int = 0
    #: Requests not served exactly because a shard was down (degraded
    #: results plus fail-fast losses); ``0`` unless ``executor="process"``.
    dropped_requests: int = 0
    #: Successful automatic worker recoveries (supervisor respawns);
    #: ``0`` unless ``executor="process"``.
    recoveries: int = 0
    #: Live shard joins applied so far (autoscaler or operator);
    #: ``0`` unless ``engine="sharded"``.
    shards_added: int = 0
    #: Live shard retires applied so far; ``0`` unless ``engine="sharded"``.
    shards_removed: int = 0
    #: Bucket-space splits applied so far (each doubles-or-more the
    #: placement's bucket count); ``0`` unless ``engine="sharded"``.
    bucket_splits: int = 0


class HyRecServer:
    """Profile/KNN tables + sampler + personalization orchestrator."""

    def __init__(self, config: HyRecConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else HyRecConfig()
        self.profiles = ProfileTable()
        self.knn_table = KnnTable()
        self.sampler = HyRecSampler(
            self.knn_table,
            user_registry=None,
            k=self.config.k,
            rng=derive_rng(seed, "server:sampler"),
            include_two_hop=self.config.include_two_hop,
            num_random=self.config.num_random,
        )
        self.anonymizer = AnonymousMapping(seed=derive_seed_for_anonymizer(seed))
        #: Bounded-memory policy for the array engines, built from the
        #: eviction/narrowing config knobs; ``None`` when every knob is
        #: at its (bit-for-bit-parity) default.
        memory_policy = None
        if (
            self.config.evict_max_rows
            or self.config.evict_ttl_s
            or self.config.narrow_dtypes
        ):
            memory_policy = MemoryPolicy(
                max_resident_rows=self.config.evict_max_rows,
                ttl_seconds=self.config.evict_ttl_s,
                narrow_dtypes=self.config.narrow_dtypes,
            )
        self.memory_policy = memory_policy
        #: CSR-style integer mirror of the profile table, maintained
        #: incrementally from ProfileTable writes.  Only materialized
        #: for the vectorized engine; ``None`` on the other engines.
        self.liked_matrix: LikedMatrix | None = (
            LikedMatrix(self.profiles, memory=memory_policy)
            if self.config.engine == "vectorized"
            else None
        )
        #: Sharded twin of :attr:`liked_matrix`: partitioned shards
        #: behind a scatter/gather coordinator.  Only materialized for
        #: ``engine="sharded"``.
        self.cluster: "ClusterCoordinator | None" = None
        #: Churn-driven bucket migrator *and autoscaler* over the
        #: cluster's movable placement map; only materialized for
        #: ``engine="sharded"``.  Runs manually
        #: (``rebalancer.run_once()``) and, when ``rebalance_interval``
        #: or ``autoscale_interval`` is set, on a background
        #: control-loop thread -- write-count kicks and the timer both
        #: signal it, so handoffs overlap live serving.
        self.rebalancer: "ShardRebalancer | None" = None
        #: The deployment's shared observability: metrics registry,
        #: request tracer, and event log -- one instance threaded
        #: through the cluster layers, so worker-process samples and
        #: spans aggregate with the server's own.
        self.obs = Observability.from_config(self.config)
        if self.config.engine == "sharded":
            # Imported here, not at module top: the cluster package
            # imports core modules back, and a top-level circular
            # import would leave whichever package loads second
            # half-initialized.
            from repro.cluster import ClusterCoordinator, make_executor
            from repro.cluster.rebalance import ShardRebalancer

            # Worker lifecycle note: with executor="process" this
            # constructor is the spawn point -- the coordinator forks
            # one worker per shard, warm-start-replays any profiles
            # already in the table, and subscribes the write stream.
            # close() is the matching clean shutdown.
            self.cluster = ClusterCoordinator(
                self.profiles,
                num_shards=self.config.num_shards,
                executor=make_executor(
                    self.config.executor,
                    truncate_partials=self.config.truncate_partials,
                    ipc_write_batch=self.config.ipc_write_batch,
                    worker_timeout=self.config.worker_timeout,
                    max_respawns=self.config.max_respawns,
                    retry_backoff=self.config.retry_backoff,
                    degraded_reads=self.config.degraded_reads,
                    obs=self.obs,
                    memory=memory_policy,
                ),
                obs=self.obs,
                memory=memory_policy,
            )
            # Constructed after the coordinator so its write listener
            # fires after the engine's own router: by the time a
            # cadence check migrates, the triggering write has been
            # routed under the old map and the drain delivers it.
            self.rebalancer = ShardRebalancer(
                self.cluster,
                threshold=self.config.rebalance_threshold,
                max_moves=self.config.rebalance_max_moves,
                interval=self.config.rebalance_interval,
                autoscale_interval=self.config.autoscale_interval,
                min_shards=self.config.autoscale_min_shards,
                max_shards=self.config.autoscale_max_shards,
                high_water=self.config.autoscale_high_water,
                low_water=self.config.autoscale_low_water,
                split_ratio=self.config.split_hot_bucket_ratio,
            )
        self.meter = MessageMeter()
        #: Per-user write observers: called with the user id after any
        #: write that changes what that user's next personalization
        #: response may contain (a profile rating or a ``/neighbors/``
        #: KNN update).  The HTTP front door's response cache hooks in
        #: here for write-driven invalidation; see
        #: :meth:`add_user_write_listener`.
        self._user_write_listeners: list = []
        self._bootstrap_rng = derive_rng(seed, "server:bootstrap")
        self._online_requests = 0
        self._knn_updates = 0
        self._reshuffles = 0
        #: Snapshot the counters were rebased to by :meth:`reset_stats`
        #: (all zero at birth); ``stats`` reports deltas against it.
        self._stats_baseline = {
            "online_requests": 0,
            "knn_updates": 0,
            "reshuffles": 0,
            "migrations": 0,
            "dropped_requests": 0,
            "recoveries": 0,
            "shards_added": 0,
            "shards_removed": 0,
            "bucket_splits": 0,
        }
        if self.obs.registry.enabled:
            # Collector pattern: exposition reads the existing
            # source-of-truth counters at snapshot time instead of
            # duplicating increments on the hot path (which could
            # drift from the counters behavior depends on).
            self.obs.registry.add_collector(self._collect_metrics)

    def close(self) -> None:
        """Release engine resources (the cluster's executor workers).

        Idempotent and a no-op on the python/vectorized engines.  On
        ``executor="thread"`` this drains the pool; on
        ``executor="process"`` it performs the clean worker shutdown
        (a ``Shutdown`` frame per worker process, then join).  Sweeps
        constructing many sharded deployments should call this (or
        :meth:`HyRecSystem.close`) instead of reaching into
        ``server.cluster``.
        """
        if self.rebalancer is not None:
            self.rebalancer.close()
        if self.cluster is not None:
            self.cluster.close()

    # --- write observation ----------------------------------------------------

    def add_user_write_listener(self, listener) -> None:
        """Subscribe ``listener(user_id)`` to every write touching a user.

        Fires *after* the write is applied, on both write paths --
        :meth:`record_rating` (profile writes) and
        :meth:`handle_knn_update` (the ``/neighbors/`` endpoint) -- so
        a read issued by the listener observes the new state.  This is
        the invalidation feed of the HTTP response cache
        (:mod:`repro.web.cache`): because every state-changing
        operation of the deployment funnels through these two methods,
        a cache that evicts on this signal can never serve a response
        predating its own user's latest write.
        """
        self._user_write_listeners.append(listener)

    def remove_user_write_listener(self, listener) -> None:
        """Unsubscribe a user-write listener (no-op if absent)."""
        try:
            self._user_write_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_user_write(self, user_id: int) -> None:
        for listener in self._user_write_listeners:
            listener(user_id)

    # --- profile management ---------------------------------------------------

    def register_user(self, user_id: int) -> Profile:
        """Create the user's (empty) profile and make her sampleable.

        New users "start with random KNN" (Section 5.3): the server
        seeds their row of the KNN table with up to ``k`` random
        existing users so their very first candidate set is already a
        full sample rather than just the random component.
        """
        if user_id in self.profiles:
            return self.profiles.get(user_id)
        profile = self.profiles.get_or_create(user_id)
        # Read the sampler's registry in place: copying it here made
        # bulk-loading n users cost ~n^2/2 list-element copies.  A
        # brand-new user is never in the registry yet (we register her
        # below), so no self-exclusion filter is needed on this path.
        existing = self.sampler.registry_view()
        if self.sampler.is_registered(user_id):  # defensive, never via this path
            existing = [uid for uid in existing if uid != user_id]
        if existing:
            count = min(self.config.k, len(existing))
            bootstrap = self._bootstrap_rng.sample(existing, count)
            self.knn_table.update(user_id, bootstrap)
        self.sampler.register_user(user_id)
        return profile

    def record_rating(
        self, user_id: int, item: int, value: float, timestamp: float = 0.0
    ) -> None:
        """Update the Profile Table with one fresh opinion."""
        self.register_user(user_id)
        self.profiles.record(user_id, item, value, timestamp)
        if self._user_write_listeners:
            self._notify_user_write(user_id)

    # --- orchestration -----------------------------------------------------------

    def _begin_request(self, user_id: int, now: float) -> set[int]:
        """Shared request preamble; returns the sampled candidate set.

        Both online entry points (wire and engine) must mutate the
        request counter, the anonymizer epoch, and the sampler RNG in
        exactly this order -- the engines' bit-for-bit contract
        (including byte-identical wire metering) rides on the two
        paths staying in lockstep, which is why this lives in one
        place.
        """
        self.register_user(user_id)
        self._online_requests += 1
        if (
            self.config.reshuffle_every
            and self._online_requests % self.config.reshuffle_every == 0
        ):
            self.anonymizer.reshuffle()
            self._reshuffles += 1
        return self.sampler.sample(user_id, now=now)

    def handle_online_request(
        self, user_id: int, now: float = 0.0
    ) -> PersonalizationJob:
        """Build the personalization job answering ``/online/?uid=``.

        A periodic anonymizer reshuffle (if configured) happens at the
        *start* of a request so that the job and its result live in the
        same epoch.  Wire metering happens in
        :meth:`render_online_response`, which turns the job into bytes
        exactly once.
        """
        candidate_ids = self._begin_request(user_id, now)
        candidates = {
            self.anonymizer.token_for_user(uid): self._profile_payload(uid)
            for uid in candidate_ids
            if uid in self.profiles
        }
        return PersonalizationJob(
            user_token=self.anonymizer.token_for_user(user_id),
            user_profile=self._profile_payload(user_id),
            candidates=candidates,
            k=self.config.k,
            r=self.config.r,
            metric=self.config.metric,
        )

    def handle_engine_request(self, user_id: int, now: float = 0.0) -> EngineJob:
        """Integer-id twin of :meth:`handle_online_request`.

        Performs the exact same orchestration (registration, request
        counting, reshuffle epochs, sampling, token minting -- in the
        same order, so RNG and anonymizer state stay in lockstep with
        the wire path) but skips the ``{str(item): value}`` payload
        materialization: the widget reads liked sets straight from
        :attr:`liked_matrix` (or the shard arenas of :attr:`cluster`).
        Requires an array engine -- ``"vectorized"`` or ``"sharded"``
        -- and no item anonymization (item tokens only exist on wire
        payloads).
        """
        if self.liked_matrix is None and self.cluster is None:
            raise RuntimeError(
                "engine requests need HyRecConfig(engine='vectorized') "
                "or engine='sharded'"
            )
        if self.config.anonymize_items:
            raise RuntimeError(
                "the in-process fast path cannot anonymize items; "
                "use handle_online_request"
            )
        candidate_ids = self._begin_request(user_id, now)
        # Mint candidate tokens in sampling-iteration order (matching
        # the wire path's dict comprehension), *then* sort by token --
        # the deterministic order tie-breaks and rendering share.
        pairs = sorted(
            (self.anonymizer.token_for_user(uid), uid)
            for uid in candidate_ids
            if uid in self.profiles
        )
        user_token = self.anonymizer.token_for_user(user_id)
        return EngineJob(
            user_id=user_id,
            user_token=user_token,
            candidate_ids=tuple(uid for _, uid in pairs),
            candidate_tokens=tuple(token for token, _ in pairs),
            k=self.config.k,
            r=self.config.r,
            metric=self.config.metric,
            user_profile_size=len(self.profiles.get(user_id)),
            candidate_profile_sizes=tuple(
                len(self.profiles.get(uid)) for _, uid in pairs
            ),
            # None unless an active "request" span exists -- the job
            # then carries its context through the scheduler and the
            # JobSlices frames, so scatter/score/merge spans (worker
            # processes included) stitch into that request's trace.
            trace_ctx=self.obs.tracer.current,
        )

    def render_online_response(self, job: PersonalizationJob) -> bytes:
        """Serialize (and compress) a job; meters the wire bytes.

        Fast path: the job JSON is assembled by joining each candidate
        profile's cached fragment, and the gzip body by splicing each
        profile's cached *deflate segment* -- per-request compression
        work is just the envelope (tokens, braces) plus the CRC.  The
        decompressed output is byte-identical to
        ``encode_json(job.to_payload())`` (keys are emitted in sorted
        order; fragments are themselves sorted-key encodings).

        Item-anonymized jobs fall back to the generic encoder because
        their item keys are per-epoch tokens that cannot be cached on
        the profile.
        """
        from repro.messages import encode_json, gzip_compress

        if self.config.anonymize_items:
            raw = encode_json(job.to_payload())
            wire = gzip_compress(raw) if self.config.compress else raw
            self.meter.record_bytes("server->client", len(raw), len(wire))
            return wire

        user = self.anonymizer.resolve_user(job.user_token)
        pairs = [
            (token, self.anonymizer.resolve_user(token))
            for token in sorted(job.candidates)
        ]
        return self._render_tokenized(user, job.user_token, pairs, job.metric)

    def render_engine_response(self, job: EngineJob) -> bytes:
        """Render an :class:`EngineJob` to the wire; meters the bytes.

        Byte-identical to :meth:`render_online_response` on the
        equivalent :class:`PersonalizationJob` -- both feed the same
        token-sorted candidate list to the same fragment renderer, so
        Figure 9/10 metering does not depend on the engine.
        """
        return self._render_tokenized(
            job.user_id,
            job.user_token,
            list(zip(job.candidate_tokens, job.candidate_ids)),
            job.metric,
        )

    def _render_tokenized(
        self,
        user: int,
        user_token: str,
        pairs: list[tuple[str, int]],
        metric: str,
    ) -> bytes:
        """Shared fragment-splicing renderer over (token, user-id) pairs.

        ``pairs`` must be sorted by ascending token (both callers
        guarantee it); profiles are embedded via their cached JSON /
        deflate fragments exactly as before.
        """
        from repro.messages import FragmentGzipWriter, encode_json

        tail = b',"k":%d,"m":%s,"p":' % (self.config.k, encode_json(metric))
        end = b',"r":%d,"u":%s}' % (self.config.r, encode_json(user_token))

        if self.config.compress:
            # Fragments below this size are cheaper to re-compress
            # inline than to splice (each splice costs a full flush).
            splice_threshold = 256
            writer = FragmentGzipWriter()
            writer.write(b'{"c":{')
            first = True
            for token, candidate in pairs:
                profile = self.profiles.get(candidate)
                writer.write(
                    (b"" if first else b",") + b'"%s":' % token.encode("ascii")
                )
                first = False
                fragment = profile.json_fragment()
                if len(fragment) >= splice_threshold:
                    writer.write_deflated(profile.deflated_fragment(), fragment)
                else:
                    writer.write(fragment)
            writer.write(b"}" + tail)
            own = self.profiles.get(user)
            own_fragment = own.json_fragment()
            if len(own_fragment) >= splice_threshold:
                writer.write_deflated(own.deflated_fragment(), own_fragment)
            else:
                writer.write(own_fragment)
            writer.write(end)
            raw_size = writer.raw_size
            wire = writer.finish()
            self.meter.record_bytes("server->client", raw_size, len(wire))
            return wire

        parts: list[bytes] = [b'{"c":{']
        first = True
        for token, candidate in pairs:
            if not first:
                parts.append(b",")
            first = False
            parts.append(b'"%s":' % token.encode("ascii"))
            parts.append(self.profiles.get(candidate).json_fragment())
        parts.append(b"}" + tail)
        parts.append(self.profiles.get(user).json_fragment())
        parts.append(end)
        raw = b"".join(parts)
        self.meter.record_bytes("server->client", len(raw), len(raw))
        return raw

    def handle_knn_update(self, user_id: int, result: JobResult) -> list[int]:
        """Apply the widget's KNN selection; return recommended item ids.

        The server re-validates everything a client reports: tokens
        must resolve, neighbors must be known users, and the user can
        never be her own neighbor (malicious widgets are contained to
        their own recommendations, Section 6).
        """
        self.meter.record_payload(
            "client->server", result.to_payload(), compress=self.config.compress
        )
        neighbor_ids: list[int] = []
        for token in result.neighbor_tokens:
            neighbor = self.anonymizer.resolve_user(token)
            if neighbor != user_id and neighbor in self.profiles:
                neighbor_ids.append(neighbor)
        self.knn_table.update(user_id, neighbor_ids[: self.config.k])
        self._knn_updates += 1
        if self._user_write_listeners:
            self._notify_user_write(user_id)
        return [self._resolve_item_key(key) for key in result.recommended_items]

    # --- helpers -------------------------------------------------------------------

    def _profile_payload(self, user_id: int) -> dict[str, float]:
        payload = self.profiles.get(user_id).to_payload()
        if not self.config.anonymize_items:
            return payload
        return {
            self.anonymizer.token_for_item(int(item)): value
            for item, value in payload.items()
        }

    def _resolve_item_key(self, key: str) -> int:
        if self.config.anonymize_items:
            return self.anonymizer.resolve_item(key)
        return int(key)

    @property
    def stats(self) -> ServerStats:
        """Request counters for the evaluation harness.

        Reported values are deltas since the last :meth:`reset_stats`
        (since birth by default).  The read itself never mutates
        anything, so polling twice returns identical counts.
        """
        base = self._stats_baseline
        return ServerStats(
            online_requests=self._online_requests - base["online_requests"],
            knn_updates=self._knn_updates - base["knn_updates"],
            reshuffles=self._reshuffles - base["reshuffles"],
            shards=(
                self.cluster.shard_stats() if self.cluster is not None else ()
            ),
            placement_version=(
                self.cluster.placement.version
                if self.cluster is not None
                else 0
            ),
            migrations=(
                self.cluster.migrations - base["migrations"]
                if self.cluster is not None
                else 0
            ),
            dropped_requests=(
                self.cluster.dropped_requests - base["dropped_requests"]
                if self.cluster is not None
                else 0
            ),
            recoveries=(
                self.cluster.recoveries - base["recoveries"]
                if self.cluster is not None
                else 0
            ),
            shards_added=(
                self.cluster.shards_added - base["shards_added"]
                if self.cluster is not None
                else 0
            ),
            shards_removed=(
                self.cluster.shards_removed - base["shards_removed"]
                if self.cluster is not None
                else 0
            ),
            bucket_splits=(
                self.cluster.bucket_splits - base["bucket_splits"]
                if self.cluster is not None
                else 0
            ),
        )

    def reset_stats(self) -> None:
        """Rebase :attr:`stats` so subsequent reads count from zero.

        Only the *reported deltas* reset: the underlying counters keep
        accumulating, because raw values drive behavior (the
        anonymizer's reshuffle cadence is ``online_requests %
        reshuffle_every``) and feed the monotone ``/metrics``
        exposition, both of which a destructive reset would corrupt.
        Per-shard rows are point-in-time worker counters and are not
        rebased.
        """
        self._stats_baseline = {
            "online_requests": self._online_requests,
            "knn_updates": self._knn_updates,
            "reshuffles": self._reshuffles,
            "migrations": (
                self.cluster.migrations if self.cluster is not None else 0
            ),
            "dropped_requests": (
                self.cluster.dropped_requests
                if self.cluster is not None
                else 0
            ),
            "recoveries": (
                self.cluster.recoveries if self.cluster is not None else 0
            ),
            "shards_added": (
                self.cluster.shards_added if self.cluster is not None else 0
            ),
            "shards_removed": (
                self.cluster.shards_removed if self.cluster is not None else 0
            ),
            "bucket_splits": (
                self.cluster.bucket_splits if self.cluster is not None else 0
            ),
        }

    def _collect_metrics(self) -> list[MetricSample]:
        """Snapshot-time samples pulled from the source-of-truth counters.

        Raw (never baseline-subtracted) values: ``/metrics`` consumers
        expect monotone counters and compute their own deltas, and the
        raw counters are exactly what behavior like the reshuffle
        cadence runs on.  Deliberately avoids ``shard_stats()`` -- that
        would add one IPC round trip per shard to every scrape; the
        per-shard view comes from the worker registries instead
        (merged in :func:`repro.obs.exposition.server_samples`).
        """

        def counter(name: str, value: float, **labels: object) -> MetricSample:
            label_set = tuple(
                sorted((key, str(val)) for key, val in labels.items())
            )
            return MetricSample(
                name=name, kind="counter", labels=label_set, value=float(value)
            )

        samples = [
            counter("hyrec_online_requests_total", self._online_requests),
            counter("hyrec_knn_updates_total", self._knn_updates),
            counter("hyrec_reshuffles_total", self._reshuffles),
            MetricSample(
                name="hyrec_users", kind="gauge", value=float(len(self.profiles))
            ),
        ]
        for channel, reading in sorted(self.meter.channels.items()):
            samples.append(
                counter(
                    "hyrec_wire_bytes_total",
                    reading.wire_bytes,
                    channel=channel,
                )
            )
            samples.append(
                counter(
                    "hyrec_wire_messages_total",
                    reading.messages,
                    channel=channel,
                )
            )
        if self.cluster is not None:
            samples.append(
                MetricSample(
                    name="hyrec_placement_epoch",
                    kind="gauge",
                    value=float(self.cluster.placement.version),
                )
            )
            samples.append(
                counter(
                    "hyrec_dropped_requests_total",
                    self.cluster.dropped_requests,
                )
            )
        return samples

    @property
    def num_users(self) -> int:
        """Registered users."""
        return len(self.profiles)


def derive_seed_for_anonymizer(seed: int) -> int:
    """Keep the anonymizer's stream independent of the sampler's."""
    from repro.sim.randomness import derive_seed

    return derive_seed(seed, "server:anonymizer")
