"""Algorithm 1 -- KNN selection ``gamma(Pu, Su)``.

    1: var similarity[];
    2: for all uid : user in Su do
    3:     similarity[uid] = score(Pu, Su[uid].getProfile());
    4: end for
    5: Nu = subList(k, sort(similarity));
    6: return Nu, the k users with the highest similarity

This is the piece of work HyRec offloads to the browser.  The function
below is used verbatim by the client widget, by the P2P baseline's
nodes, and by the offline CRec back-end -- one implementation, three
deployments, exactly as in the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import AbstractSet, Mapping

from repro.core.similarity import SetMetric, cosine


@dataclass(frozen=True)
class Neighbor:
    """One selected neighbor with its similarity score."""

    user_id: int
    score: float


def knn_select(
    user_liked: AbstractSet[int],
    candidates: Mapping[int, AbstractSet[int]],
    k: int,
    metric: SetMetric = cosine,
    exclude: int | None = None,
) -> list[Neighbor]:
    """Return the ``k`` candidates most similar to the user.

    Args:
        user_liked: The user's liked-item set (``Pu`` restricted to
            positive opinions, which is what cosine consumes).
        candidates: Candidate user id -> liked-item set (``Su``).
        k: Neighborhood size (10 to a few tens in the paper).
        metric: Similarity function; cosine by default.
        exclude: The user's own id, removed defensively -- a user must
            never be her own neighbor.

    Ties are broken by ascending user id so that results are
    deterministic; fewer than ``k`` candidates yield a shorter list.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    scored = (
        Neighbor(user_id=uid, score=metric(user_liked, liked))
        for uid, liked in candidates.items()
        if uid != exclude
    )
    # O(n log k) partial selection; the (-score, user_id) key is unique
    # per candidate, so the result matches a full sort exactly.
    return heapq.nsmallest(k, scored, key=lambda n: (-n.score, n.user_id))
