"""HyRec core: the paper's primary contribution.

The hybrid recommender of Section 3 -- server-side orchestration
(profile/KNN tables, sampler, anonymizer) plus browser-side execution
of KNN selection (Algorithm 1) and item recommendation (Algorithm 2).
"""

from repro.core.anonymizer import AnonymousMapping, StaleTokenError
from repro.core.api import WebApi, parse_neighbors_params
from repro.core.client import HyRecWidget, make_job
from repro.core.config import HyRecConfig
from repro.core.jobs import JobResult, PersonalizationJob
from repro.core.knn import Neighbor, knn_select
from repro.core.privacy import LinkageAttack, LinkageReport
from repro.core.profiles import Profile
from repro.core.recommend import Recommendation, recommend_most_popular
from repro.core.sampler import CandidateSampler, HyRecSampler
from repro.core.server import HyRecServer, ServerStats
from repro.core.similarity import (
    cosine,
    get_metric,
    jaccard,
    metric_names,
    overlap,
    register_metric,
)
from repro.core.system import HyRecSystem, RequestOutcome
from repro.core.tables import KnnTable, ProfileTable
from repro.core.weighted import (
    get_payload_metric,
    payload_cosine,
    payload_pearson,
)

__all__ = [
    "AnonymousMapping",
    "StaleTokenError",
    "WebApi",
    "parse_neighbors_params",
    "HyRecWidget",
    "make_job",
    "HyRecConfig",
    "JobResult",
    "PersonalizationJob",
    "Neighbor",
    "knn_select",
    "LinkageAttack",
    "LinkageReport",
    "Profile",
    "Recommendation",
    "recommend_most_popular",
    "CandidateSampler",
    "HyRecSampler",
    "HyRecServer",
    "ServerStats",
    "cosine",
    "get_metric",
    "jaccard",
    "metric_names",
    "overlap",
    "register_metric",
    "HyRecSystem",
    "RequestOutcome",
    "KnnTable",
    "ProfileTable",
    "get_payload_metric",
    "payload_cosine",
    "payload_pearson",
]
