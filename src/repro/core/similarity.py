"""Similarity metrics over binary profiles.

The paper uses cosine similarity (Section 2.1) "but any other metric
could be used" -- the widget exposes a ``setSimilarity()`` hook
(Table 1).  We provide the same extension point through a metric
registry; cosine, Jaccard and overlap are built in.

For binary (liked-set) vectors the cosine similarity reduces to

    cos(u, v) = |L_u intersect L_v| / sqrt(|L_u| * |L_v|)

which is what the JavaScript widget computes.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Callable

SetMetric = Callable[[AbstractSet[int], AbstractSet[int]], float]


def cosine(a: AbstractSet[int], b: AbstractSet[int]) -> float:
    """Cosine similarity of two binary item sets, in [0, 1]."""
    if not a or not b:
        return 0.0
    # Iterate over the smaller set: intersection cost is O(min(|a|,|b|)).
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    overlap_count = sum(1 for item in small if item in large)
    if overlap_count == 0:
        return 0.0
    return overlap_count / math.sqrt(len(a) * len(b))


def jaccard(a: AbstractSet[int], b: AbstractSet[int]) -> float:
    """Jaccard index |A n B| / |A u B|, in [0, 1]."""
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    overlap_count = sum(1 for item in small if item in large)
    if overlap_count == 0:
        return 0.0
    union = len(a) + len(b) - overlap_count
    return overlap_count / union


def overlap(a: AbstractSet[int], b: AbstractSet[int]) -> float:
    """Overlap coefficient |A n B| / min(|A|, |B|), in [0, 1]."""
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    overlap_count = sum(1 for item in small if item in large)
    if overlap_count == 0:
        return 0.0
    return overlap_count / len(small)


_METRICS: dict[str, SetMetric] = {
    "cosine": cosine,
    "jaccard": jaccard,
    "overlap": overlap,
}


def get_metric(name: str) -> SetMetric:
    """Look up a registered similarity metric by name."""
    try:
        return _METRICS[name]
    except KeyError:
        raise KeyError(
            f"unknown similarity metric {name!r}; "
            f"available: {', '.join(sorted(_METRICS))}"
        ) from None


def register_metric(name: str, metric: SetMetric) -> None:
    """Register a custom metric (the paper's ``setSimilarity()``).

    Re-registering an existing name raises ``ValueError`` to catch
    accidental shadowing of the built-ins.
    """
    if name in _METRICS:
        raise ValueError(f"metric {name!r} is already registered")
    _METRICS[name] = metric


def metric_names() -> list[str]:
    """All registered metric names, sorted."""
    return sorted(_METRICS)
