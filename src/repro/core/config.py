"""HyRec system configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.similarity import get_metric


@dataclass(frozen=True)
class HyRecConfig:
    """Tunables of a HyRec deployment.

    Attributes:
        k: Neighborhood size ("ranging from ten to a few tens").
        r: Number of items per recommendation response.
        metric: Name of the similarity metric the widget should apply
            (must be registered in :mod:`repro.core.similarity`).
        anonymize_items: Also replace item ids with anonymous tokens in
            candidate profiles (the paper shuffles both user and item
            identifiers; item anonymization is optional here because it
            makes recommendations opaque to the client).
        reshuffle_every: Number of online requests between anonymizer
            epochs; ``0`` disables periodic reshuffling.
        compress: gzip server responses (Section 4.2); disable to
            measure raw JSON sizes (the "json" curve of Figure 10).
        include_two_hop: Keep the ``KNN(Nu)`` sampler component
            (ablation A2 turns it off).
        num_random: Random users injected per sample (default ``k``;
            ablation A1 sets it to 0).
        engine: Request-path execution engine.  ``"python"`` is the
            paper-faithful set-arithmetic path; ``"vectorized"`` (the
            default) keeps an incrementally-maintained integer matrix
            of liked sets next to the Profile Table and scores whole
            candidate sets with numpy batch kernels; ``"sharded"``
            partitions that matrix into ``num_shards`` hash-placed
            shards behind a batching coordinator
            (:mod:`repro.cluster`).  All engines produce identical
            neighbors, scores, recommendations and wire metering; the
            array engines automatically fall back to the Python path
            for custom metrics and item-anonymized deployments.
        num_shards: Shard count of the ``"sharded"`` engine (ignored
            by the other engines).
        executor: How the sharded engine runs its per-shard tasks:
            ``"serial"`` (deterministic, on the calling thread),
            ``"thread"`` (a persistent pool; shard tasks overlap where
            the kernels release the GIL), or ``"process"`` (one
            long-lived worker process per shard hosting that shard's
            matrix, fed by the serialized shard protocol of
            :mod:`repro.cluster.transport`; whole interpreters run in
            parallel, so scoring scales with cores).  Results are
            identical under all three.
        batch_window: Requests the sharded engine's scheduler coalesces
            into one batched kernel invocation per shard
            (:class:`repro.cluster.BatchScheduler`).
        truncate_partials: Process executor only: ship each shard's
            local top-``k`` scored candidates instead of the full
            partial.  Exactness-preserving (every global top-k member
            is inside its own shard's top-k), so this is purely an
            IPC-bandwidth knob; ``False`` ships full partials for
            comparison runs.
        ipc_write_batch: Process executor only: buffered
            placement-routed writes per worker that force an eager
            flush.  Writes always flush before any read, so this
            trades syscall count against write-delivery latency
            without ever changing results.
        rebalance_threshold: Sharded engine only: max/min per-shard
            write-load ratio above which the
            :class:`~repro.cluster.rebalance.ShardRebalancer` migrates
            placement buckets off the hottest shard (must exceed
            ``1.0``).  Rebalancing moves load, never results -- parity
            holds before, during, and after any migration.
        rebalance_interval: Sharded engine only: routed writes between
            automatic rebalance checks; ``0`` (the default) disables
            the cadence, leaving the rebalancer manual-only.
        rebalance_max_moves: Sharded engine only: bucket-migration
            budget per rebalance pass (a control-loop safety valve).
        autoscale_interval: Sharded engine only: seconds between
            timer-driven passes of the rebalancer's control loop
            (autoscale check + rebalance), run on a background thread
            so handoffs overlap live serving; ``0`` (the default)
            disables the timer.  Write-count kicks
            (``rebalance_interval``) signal the same thread.
        autoscale_min_shards: Sharded engine only: floor the
            autoscaler will never shrink the fleet below.
        autoscale_max_shards: Sharded engine only: ceiling for
            autoscaler growth; ``0`` (the default) disables growing.
        autoscale_high_water: Sharded engine only: mean writes per
            shard accumulated between control-loop passes above which
            the fleet grows by one shard (live join + rendezvous-share
            migration); ``0`` (the default) disables growing.
        autoscale_low_water: Sharded engine only: mean writes per
            shard per pass below which the fleet shrinks by one shard
            (drain + retire); ``0`` (the default) disables shrinking.
            Must stay below ``autoscale_high_water`` when both are
            set.
        split_hot_bucket_ratio: Sharded engine only: fraction of the
            hottest shard's write load a single placement bucket must
            carry -- while the spread exceeds
            ``rebalance_threshold`` yet no bucket move can improve it
            -- for the rebalancer to split the bucket space in two
            (an epoch-bumped metadata change that moves no data but
            makes the viral bucket's cohabitants separately movable).
            ``0`` (the default) disables splitting.
        worker_timeout: Process executor only: deadline in seconds on
            every parent<->worker socket operation (and the per-stage
            join timeout of shutdown escalation).  A worker that stays
            silent past the deadline is treated as dead and respawned;
            set it above the worst-case time a worker legitimately
            spends scoring one batch.
        max_respawns: Process executor only: automatic re-fork attempts
            per worker-failure incident before the shard is declared
            down; ``0`` disables automatic respawn entirely.
        retry_backoff: Process executor only: base in seconds of the
            exponential backoff between respawn attempts within one
            incident.
        degraded_reads: Process executor only: with a shard down (its
            respawn budget exhausted), serve reads from the surviving
            shards -- results carry ``degraded=True`` -- instead of
            failing fast with ``ShardUnavailable``.  Writes are never
            dropped either way: the profile table is the replay log,
            and the next successful respawn replays them.
        metrics_enabled: Run the deployment's
            :class:`~repro.obs.registry.MetricsRegistry` live: request
            latency/batch histograms, per-shard job counters (sampled
            inside worker processes and merged over the wire), and the
            ``/metrics`` exposition.  Disabling swaps every instrument
            for a shared no-op, leaving the hot path bare.
        tracing: Collect request-lifecycle spans
            (schedule/scatter/score/merge/respond) into the
            :class:`~repro.obs.tracing.Tracer` ring, stitching worker
            process score spans into each request's trace; exportable
            as Chrome trace-event JSON.  Off by default -- tracing is
            a debugging/profiling tool, not a steady-state monitor.
        slow_request_ms: Threshold in milliseconds above which a
            request is logged as slow (a structured ``slow_request``
            event plus a ``repro.obs`` warning); ``0`` disables the
            slow-request log.  Independent of ``tracing``.
        cache_ttl: HTTP front door only: seconds a cached ``/online/``
            response may keep being served after it was rendered --
            the deployment's staleness bound.  ``0`` (the default)
            disables the response cache entirely, which keeps every
            HTTP response byte-identical to the in-process path.  A
            ``/neighbors/`` write for a user always evicts that user's
            cached response immediately, whatever the TTL, so a cached
            response is never stale with respect to its own user's
            writes -- the TTL only bounds staleness against *other*
            users' activity (see ``docs/http.md``).
        cache_capacity: HTTP front door only: maximum entries in the
            in-process L1 response cache; least-recently-used entries
            are evicted beyond it.
        http_max_concurrency: HTTP front door only: personalization
            requests executing on the engine simultaneously (the size
            of the front door's worker pool).  Cache hits and the
            health endpoints (``/stats/``, ``/metrics``) do not
            consume a slot.
        http_max_pending: HTTP front door only: admitted requests that
            may wait for an execution slot before the front door sheds
            new work with ``503`` + ``Retry-After`` (``0`` sheds as
            soon as every slot is busy).
        http_retry_after: HTTP front door only: whole seconds clients
            are told to back off in the ``Retry-After`` header of a
            shed response.
        evict_max_rows: Array engines only: maximum user rows kept
            resident per :class:`~repro.engine.liked_matrix.LikedMatrix`
            (the sharded engine applies it *per shard*).  Beyond the
            cap, least-recently-active rows are evicted back to arena
            garbage and warm-rebuild lazily from the
            :class:`~repro.core.tables.ProfileTable` -- the source of
            truth -- on their next read, so results never change.
            ``0`` (the default) disables eviction and preserves the
            classic keep-everything behaviour bit-for-bit.
        evict_ttl_s: Array engines only: seconds a resident row may
            stay idle (no write, direct read, or rematerialization)
            before eviction reclaims it.  Combines with
            ``evict_max_rows``; ``0`` (the default) disables the TTL.
            Like the cap, this is a memory knob, never a results knob.
        narrow_dtypes: Array engines only: store liked-matrix arenas,
            postings and rated rows as int32 instead of int64, halving
            their footprint.  Exact -- and therefore bit-for-bit
            parity-preserving, wire bytes included -- while user ids
            and item-column counts fit in 31 bits, which the write
            path enforces.  Off by default.
    """

    k: int = 10
    r: int = 10
    metric: str = "cosine"
    anonymize_items: bool = False
    reshuffle_every: int = 0
    compress: bool = True
    include_two_hop: bool = True
    num_random: int | None = None
    engine: str = "vectorized"
    num_shards: int = 4
    executor: str = "serial"
    batch_window: int = 16
    truncate_partials: bool = True
    ipc_write_batch: int = 1024
    rebalance_threshold: float = 2.0
    rebalance_interval: int = 0
    rebalance_max_moves: int = 4
    autoscale_interval: float = 0.0
    autoscale_min_shards: int = 1
    autoscale_max_shards: int = 0
    autoscale_high_water: float = 0.0
    autoscale_low_water: float = 0.0
    split_hot_bucket_ratio: float = 0.0
    worker_timeout: float = 5.0
    max_respawns: int = 3
    retry_backoff: float = 0.05
    degraded_reads: bool = False
    metrics_enabled: bool = True
    tracing: bool = False
    slow_request_ms: float = 0.0
    cache_ttl: float = 0.0
    cache_capacity: int = 1024
    http_max_concurrency: int = 8
    http_max_pending: int = 64
    http_retry_after: int = 1
    evict_max_rows: int = 0
    evict_ttl_s: float = 0.0
    narrow_dtypes: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if self.r < 1:
            raise ValueError(f"r must be at least 1, got {self.r}")
        if self.reshuffle_every < 0:
            raise ValueError("reshuffle_every cannot be negative")
        if self.engine not in ("python", "vectorized", "sharded"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "expected 'python', 'vectorized' or 'sharded'"
            )
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be at least 1, got {self.num_shards}"
            )
        # Mirrors repro.cluster.executors.EXECUTOR_NAMES; kept literal
        # here so constructing a config never imports the cluster
        # package (which imports core modules back).
        if self.executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                "expected 'serial', 'thread' or 'process'"
            )
        if self.batch_window < 1:
            raise ValueError(
                f"batch_window must be at least 1, got {self.batch_window}"
            )
        if self.ipc_write_batch < 1:
            raise ValueError(
                f"ipc_write_batch must be at least 1, got {self.ipc_write_batch}"
            )
        if self.rebalance_threshold <= 1.0:
            raise ValueError(
                "rebalance_threshold must exceed 1.0, got "
                f"{self.rebalance_threshold}"
            )
        if self.rebalance_interval < 0:
            raise ValueError(
                "rebalance_interval cannot be negative, got "
                f"{self.rebalance_interval}"
            )
        if self.rebalance_max_moves < 1:
            raise ValueError(
                "rebalance_max_moves must be at least 1, got "
                f"{self.rebalance_max_moves}"
            )
        if self.autoscale_interval < 0:
            raise ValueError(
                "autoscale_interval cannot be negative, got "
                f"{self.autoscale_interval}"
            )
        if self.autoscale_min_shards < 1:
            raise ValueError(
                "autoscale_min_shards must be at least 1, got "
                f"{self.autoscale_min_shards}"
            )
        if self.autoscale_max_shards < 0:
            raise ValueError(
                "autoscale_max_shards cannot be negative, got "
                f"{self.autoscale_max_shards}"
            )
        if (
            self.autoscale_max_shards
            and self.autoscale_max_shards < self.autoscale_min_shards
        ):
            raise ValueError(
                f"autoscale_max_shards ({self.autoscale_max_shards}) cannot "
                f"undercut autoscale_min_shards ({self.autoscale_min_shards})"
            )
        if self.autoscale_high_water < 0:
            raise ValueError(
                "autoscale_high_water cannot be negative, got "
                f"{self.autoscale_high_water}"
            )
        if self.autoscale_low_water < 0:
            raise ValueError(
                "autoscale_low_water cannot be negative, got "
                f"{self.autoscale_low_water}"
            )
        if (
            self.autoscale_high_water
            and self.autoscale_low_water
            and self.autoscale_low_water >= self.autoscale_high_water
        ):
            raise ValueError(
                f"autoscale_low_water ({self.autoscale_low_water}) must stay "
                f"below autoscale_high_water ({self.autoscale_high_water})"
            )
        if not 0.0 <= self.split_hot_bucket_ratio <= 1.0:
            raise ValueError(
                "split_hot_bucket_ratio must be in [0, 1], got "
                f"{self.split_hot_bucket_ratio}"
            )
        if self.worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns cannot be negative, got {self.max_respawns}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff cannot be negative, got {self.retry_backoff}"
            )
        if self.slow_request_ms < 0:
            raise ValueError(
                f"slow_request_ms cannot be negative, got {self.slow_request_ms}"
            )
        if self.cache_ttl < 0:
            raise ValueError(
                f"cache_ttl cannot be negative, got {self.cache_ttl}"
            )
        if self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be at least 1, got {self.cache_capacity}"
            )
        if self.http_max_concurrency < 1:
            raise ValueError(
                "http_max_concurrency must be at least 1, got "
                f"{self.http_max_concurrency}"
            )
        if self.http_max_pending < 0:
            raise ValueError(
                "http_max_pending cannot be negative, got "
                f"{self.http_max_pending}"
            )
        if self.http_retry_after < 0:
            raise ValueError(
                "http_retry_after cannot be negative, got "
                f"{self.http_retry_after}"
            )
        if self.evict_max_rows < 0:
            raise ValueError(
                f"evict_max_rows cannot be negative, got {self.evict_max_rows}"
            )
        if self.evict_ttl_s < 0:
            raise ValueError(
                f"evict_ttl_s cannot be negative, got {self.evict_ttl_s}"
            )
        get_metric(self.metric)  # fail fast on unknown metrics
