"""HyRec system configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.similarity import get_metric


@dataclass(frozen=True)
class HyRecConfig:
    """Tunables of a HyRec deployment.

    Attributes:
        k: Neighborhood size ("ranging from ten to a few tens").
        r: Number of items per recommendation response.
        metric: Name of the similarity metric the widget should apply
            (must be registered in :mod:`repro.core.similarity`).
        anonymize_items: Also replace item ids with anonymous tokens in
            candidate profiles (the paper shuffles both user and item
            identifiers; item anonymization is optional here because it
            makes recommendations opaque to the client).
        reshuffle_every: Number of online requests between anonymizer
            epochs; ``0`` disables periodic reshuffling.
        compress: gzip server responses (Section 4.2); disable to
            measure raw JSON sizes (the "json" curve of Figure 10).
        include_two_hop: Keep the ``KNN(Nu)`` sampler component
            (ablation A2 turns it off).
        num_random: Random users injected per sample (default ``k``;
            ablation A1 sets it to 0).
        engine: Request-path execution engine.  ``"python"`` is the
            paper-faithful set-arithmetic path; ``"vectorized"`` keeps
            an incrementally-maintained integer matrix of liked sets
            next to the Profile Table and scores whole candidate sets
            with numpy batch kernels.  The two engines produce
            identical neighbors, scores, recommendations and wire
            metering; the vectorized engine automatically falls back
            to the Python path for custom metrics and item-anonymized
            deployments (see :mod:`repro.engine`).
    """

    k: int = 10
    r: int = 10
    metric: str = "cosine"
    anonymize_items: bool = False
    reshuffle_every: int = 0
    compress: bool = True
    include_two_hop: bool = True
    num_random: int | None = None
    engine: str = "python"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if self.r < 1:
            raise ValueError(f"r must be at least 1, got {self.r}")
        if self.reshuffle_every < 0:
            raise ValueError("reshuffle_every cannot be negative")
        if self.engine not in ("python", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "expected 'python' or 'vectorized'"
            )
        get_metric(self.metric)  # fail fast on unknown metrics
